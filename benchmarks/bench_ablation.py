"""Ablations over the design choices DESIGN.md calls out.

X1 — containment: homomorphism (PTIME, fragment-complete) vs the canonical
     model test (exact everywhere, exponential).
X2 — linear one-type implication: Theorem 4.8's claim engine vs the record
     fixpoint engine (they must agree; relative speed is the ablation).
X3 — instance-based ↓ on XP{/,[],*}: certain-facts (Theorem 5.3) vs the
     per-witness escape engine.
X4 — Example 3.3: the diverging chase vs a terminating decision.
"""

import random

import pytest

from bench_helpers import LABELS, implication_workload, instance_workload, run_all
from repro.constraints import constraint_set, no_remove
from repro.implication import implies_linear, implies_linear_one_type
from repro.instance import implies_by_certain_facts, implies_no_insert
from repro.workloads import FragmentSpec, random_pattern
from repro.xic import chase_implication
from repro.xpath import canonical_contained, hom_contained


def _pattern_pairs(seed: int, spec: FragmentSpec, batch: int = 30):
    rng = random.Random(seed)
    return [
        (random_pattern(rng, LABELS, spec, spine=rng.randint(1, 3)),
         random_pattern(rng, LABELS, spec, spine=rng.randint(1, 3)))
        for _ in range(batch)
    ]


@pytest.mark.parametrize("engine", ["homomorphism", "canonical"])
def test_x1_containment_engines(benchmark, engine):
    pairs = _pattern_pairs(42, FragmentSpec(wildcard=False))
    checker = hom_contained if engine == "homomorphism" else canonical_contained

    def run():
        return sum(1 for p, q in pairs if checker(p, q))

    count = benchmark(run)
    # on the wildcard-free fragment the two are equivalent deciders
    other = canonical_contained if engine == "homomorphism" else hom_contained
    assert count == sum(1 for p, q in pairs if other(p, q))


@pytest.mark.parametrize("engine", ["thm48-claim", "record-fixpoint"])
def test_x2_linear_one_type_engines(benchmark, engine):
    problems = implication_workload("x2", FragmentSpec(predicates=False), 3,
                                    types="up", spine=3)
    runner = (implies_linear_one_type if engine == "thm48-claim"
              else implies_linear)
    benchmark(run_all, problems, runner)


@pytest.mark.parametrize("engine", ["certain-facts", "escape"])
def test_x3_instance_down_engines(benchmark, engine):
    problems = instance_workload("x3", FragmentSpec(descendant=False), 3,
                                 "down", tree_size=15)
    runner = (implies_by_certain_facts if engine == "certain-facts"
              else implies_no_insert)
    benchmark(run_all, problems, runner)


@pytest.mark.parametrize("budget", [10, 20, 40])
def test_x4_chase_budget_growth(benchmark, budget):
    """Example 3.3: work grows linearly with the budget, never converging."""
    premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
    conclusion = no_remove("/a/b/c/d")
    outcome = benchmark(chase_implication, premises, conclusion, budget)
    assert outcome.diverged

"""Table 1 — general constraint implication, one benchmark group per cell.

The paper reports complexity bounds, not wall-clock numbers; what must
reproduce is the *shape*: the PTIME cells scale smoothly with the number of
constraints, the coNP/NEXPTIME cells blow up on the hardness families.
Benchmark names carry the cell coordinates (fragment x types); sizes grow
within each cell so growth trends are visible in one report.
"""

import pytest

from bench_helpers import implication_workload, run_all
from repro.implication import (
    implies,
    implies_by_intersection,
    implies_linear,
    implies_linear_one_type,
    implies_one_type,
)
from repro.reductions import build_problem, random_3cnf
from repro.workloads import FragmentSpec
import random


# ----------------------------------------------------------------------
# Row 1: one update type.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_child_only_one_type_ptime(benchmark, count):
    """XP{/,[],*}, one type: PTIME (Theorems 4.4/4.5)."""
    problems = implication_workload("t1-child-one", FragmentSpec(descendant=False),
                                    count, types="down")
    benchmark(run_all, problems, implies_by_intersection)


@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_pred_desc_one_type_conp(benchmark, count):
    """XP{/,[],//}, one type: coNP-complete (Theorems 4.4 + 4.9)."""
    problems = implication_workload("t1-preddesc-one", FragmentSpec(wildcard=False),
                                    count, types="up")
    benchmark(run_all, problems, implies_by_intersection)


@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_linear_one_type_ptime(benchmark, count):
    """XP{/,//,*}, one type: PTIME under bounds (Theorem 4.8)."""
    problems = implication_workload("t1-linear-one", FragmentSpec(predicates=False),
                                    count, types="up", spine=3)
    benchmark(run_all, problems, implies_linear_one_type)


@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_full_one_type_conp(benchmark, count):
    """XP{/,[],//,*}, one type: coNP (Theorem 4.7), canonical engine."""
    problems = implication_workload("t1-full-one", FragmentSpec(), count,
                                    types="down")
    benchmark(run_all, problems, implies_one_type)


# ----------------------------------------------------------------------
# Row 2: arbitrary update types.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_child_only_mixed_ptime(benchmark, count):
    """XP{/,[],*}, mixed types: PTIME via the same-type property (Thm 4.1)."""
    problems = implication_workload("t1-child-mixed", FragmentSpec(descendant=False),
                                    count, types="mixed")
    benchmark(run_all, problems, implies)


@pytest.mark.parametrize("count", [2, 4, 8])
def test_cell_linear_mixed_record_fixpoint(benchmark, count):
    """XP{/,//,*}, mixed types: the Theorem 4.3 cell (record fixpoint)."""
    problems = implication_workload("t1-linear-mixed", FragmentSpec(predicates=False),
                                    count, types="mixed", spine=3)
    benchmark(run_all, problems, implies_linear)


@pytest.mark.parametrize("n_vars", [1, 2])
def test_cell_full_mixed_hardness_family(benchmark, n_vars):
    """XP{/,[],//,*}, mixed types: the NEXPTIME cell on Theorem 4.6 inputs.

    The hybrid engine runs its sound tests; the reduction instances make
    the exponential canonical spaces explicit.
    """
    rng = random.Random(1000 + n_vars)
    problem = build_problem(random_3cnf(rng, n_vars, 1))

    def attempt():
        return implies(problem.premises, problem.conclusion).answer

    benchmark(attempt)


def test_example_41_decided_exactly(benchmark):
    """The flagship mixed-type linear instance (Example 4.1)."""
    from repro.constraints import constraint_set, no_remove

    premises = constraint_set(
        ("//a//c", "up"), ("//b//c", "up"), ("//a//b//c", "down"),
        ("//a//b//a//c", "up"), ("//b//a//b//c", "up"),
    )
    conclusion = no_remove("//b//a//c")
    result = benchmark(implies_linear, premises, conclusion)
    assert result.is_implied

"""Shared workload builders for the benchmark harness.

Workloads are seeded per (cell, size) so every run regenerates identical
inputs; sizes are chosen so the full suite completes in minutes while still
exposing each cell's growth trend (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import random

from repro.constraints import ConstraintSet, UpdateConstraint, ConstraintType
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
)

LABELS = ["a", "b", "c"]


def implication_workload(cell: str, spec: FragmentSpec, count: int,
                         types: str, spine: int = 2, batch: int = 5
                         ) -> list[tuple[ConstraintSet, UpdateConstraint]]:
    """A deterministic batch of implication problems for one table cell."""
    rng = random.Random(hash((cell, count, types)) & 0xFFFFFFFF)
    problems = []
    for _ in range(batch):
        premises = random_constraints(rng, LABELS, spec, count=count,
                                      types=types, spine=spine)
        kind = (ConstraintType.NO_REMOVE if types in ("up", "mixed")
                else ConstraintType.NO_INSERT)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=spine), kind)
        problems.append((premises, conclusion))
    return problems


def instance_workload(cell: str, spec: FragmentSpec, count: int, types: str,
                      tree_size: int, spine: int = 2, batch: int = 5):
    """A deterministic batch of instance-based problems for one cell."""
    rng = random.Random(hash((cell, count, types, tree_size)) & 0xFFFFFFFF)
    problems = []
    for _ in range(batch):
        current = random_tree(rng, LABELS, size=tree_size)
        premises = random_constraints(rng, LABELS, spec, count=count,
                                      types=types, spine=spine)
        kind = (ConstraintType.NO_REMOVE if types == "up"
                else ConstraintType.NO_INSERT)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=spine), kind)
        problems.append((premises, current, conclusion))
    return problems


def run_all(problems, engine) -> int:
    """Drive an engine over a batch; returns a checksum of the verdicts."""
    checksum = 0
    for args in problems:
        result = engine(*args)
        checksum = checksum * 3 + {"implied": 1, "not-implied": 2,
                                   "unknown": 0}[result.answer.value]
    return checksum

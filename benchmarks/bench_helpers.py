"""Shared workload builders for the benchmark harness.

Workloads are seeded per (cell, size) so every run regenerates identical
inputs; sizes are chosen so the full suite completes in minutes while still
exposing each cell's growth trend (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import random

from repro.constraints import ConstraintSet, UpdateConstraint, ConstraintType
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
)

LABELS = ["a", "b", "c"]


def implication_workload(cell: str, spec: FragmentSpec, count: int,
                         types: str, spine: int = 2, batch: int = 5
                         ) -> list[tuple[ConstraintSet, UpdateConstraint]]:
    """A deterministic batch of implication problems for one table cell."""
    rng = random.Random(hash((cell, count, types)) & 0xFFFFFFFF)
    problems = []
    for _ in range(batch):
        premises = random_constraints(rng, LABELS, spec, count=count,
                                      types=types, spine=spine)
        kind = (ConstraintType.NO_REMOVE if types in ("up", "mixed")
                else ConstraintType.NO_INSERT)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=spine), kind)
        problems.append((premises, conclusion))
    return problems


def instance_workload(cell: str, spec: FragmentSpec, count: int, types: str,
                      tree_size: int, spine: int = 2, batch: int = 5):
    """A deterministic batch of instance-based problems for one cell."""
    rng = random.Random(hash((cell, count, types, tree_size)) & 0xFFFFFFFF)
    problems = []
    for _ in range(batch):
        current = random_tree(rng, LABELS, size=tree_size)
        premises = random_constraints(rng, LABELS, spec, count=count,
                                      types=types, spine=spine)
        kind = (ConstraintType.NO_REMOVE if types == "up"
                else ConstraintType.NO_INSERT)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=spine), kind)
        problems.append((premises, current, conclusion))
    return problems


def run_all(problems, engine) -> int:
    """Drive an engine over a batch; returns a checksum of the verdicts."""
    checksum = 0
    for args in problems:
        result = engine(*args)
        checksum = checksum * 3 + {"implied": 1, "not-implied": 2,
                                   "unknown": 0}[result.answer.value]
    return checksum


# ----------------------------------------------------------------------
# Benchmark-regression gate (--compare mode of the bench scripts)
# ----------------------------------------------------------------------
def tracked_ratios(report: dict, prefix: str = "") -> dict[str, float]:
    """All ``speedup`` entries of a benchmark report, keyed by JSON path.

    These are the machine-relative numbers a regression gate can compare
    across runners: absolute q/s moves with the hardware, but a tracked
    ratio collapsing means the optimisation it measures regressed.
    """
    out: dict[str, float] = {}
    for key, value in report.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(tracked_ratios(value, path))
        elif key == "speedup" and isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def tracked_checksums(report: dict, prefix: str = "") -> dict[str, int]:
    """All ``*checksum`` entries, keyed by JSON path.

    Workloads are seeded, so checksums are machine-independent: any drift
    against the committed baseline means the answers themselves changed.
    """
    out: dict[str, int] = {}
    for key, value in report.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(tracked_checksums(value, path))
        elif key.endswith("checksum") and isinstance(value, int):
            out[path] = value
    return out


def compare_reports(fresh: dict, baseline: dict,
                    tolerance: float = 0.20) -> list[str]:
    """Regression check of a fresh report against a committed baseline.

    Returns human-readable failure lines (empty = gate passes):

    * a tracked ratio more than ``tolerance`` below the baseline fails;
    * a checksum differing from the baseline fails (answers changed —
      refresh the committed ``BENCH_*.json`` if the change is intended);
    * ratios/checksums present only on one side are reported, not failed
      (new sections appear as benchmarks grow).
    """
    failures: list[str] = []
    fresh_ratios = tracked_ratios(fresh)
    base_ratios = tracked_ratios(baseline)
    for path, base in sorted(base_ratios.items()):
        now = fresh_ratios.get(path)
        if now is None:
            print(f"compare: baseline ratio {path} absent from fresh run")
            continue
        floor = base * (1.0 - tolerance)
        status = "ok" if now >= floor else "REGRESSED"
        print(f"compare: {path}: baseline x{base:.2f} -> fresh x{now:.2f} "
              f"(floor x{floor:.2f}) {status}")
        if now < floor:
            failures.append(
                f"{path} regressed: x{now:.2f} < x{floor:.2f} "
                f"(baseline x{base:.2f}, tolerance {tolerance:.0%})")
    fresh_sums = tracked_checksums(fresh)
    for path, base in sorted(tracked_checksums(baseline).items()):
        now = fresh_sums.get(path)
        if now is not None and now != base:
            failures.append(
                f"{path} diverged from baseline ({now} != {base}): answers "
                f"changed — refresh the committed baseline if intended")
    return failures

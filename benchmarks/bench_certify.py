"""Certified-template throughput: guard-only hot path vs per-op enforcement.

One certified-template-dominated stream, three ways — checksummed so the
compared paths provably make the same decisions:

* **certified** — the shipped hot path: each bracket runs through
  :meth:`~repro.stream.engine.StreamEnforcer.apply_certified`, which
  validates only the template guard (binding domains, node existence,
  subtree-label bounds) and applies the ops with **zero** mask work.
* **per_op** — the honest baseline the issue gates against: the same
  concrete brackets replayed as ``Begin/ops/Commit`` through the
  uncertified enforcer, delta-maintained masks re-checked per commit.
* **analyzed** — the same replay with the PR 6 independence analysis on
  (``analysis=True``): the strongest uncertified configuration, since
  constraint-irrelevant ops can take its zero-work fast path.  Reported
  for honesty; the ≥5x gate is against ``per_op`` (the certified path
  must also beat ``analyzed``, asserted as ≥1x, but its margin is the
  analyzer's own benchmark story — see ``bench_analysis.py``).

The workload mirrors the oracle suite: a ~2k-node document labelled from
a HOT alphabet the constraints range over, with COLD subtrees grafted
on; the two templates (a 4-leaf annotate, a subtree rotate) confine
themselves to COLD labels, so both certify statically (attempts=0 — the
bench asserts it).  Fresh-leaf ids are pinned in the schedule, exactly
as the durable service pins them at its journal boundary, so all three
engines see identical concrete ops and
:func:`~repro.stream.shard.decision_checksum` must agree bit for bit.

Run:  PYTHONPATH=src python benchmarks/bench_certify.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_certify.json`` at the repo root by default; ``--compare``
gates tracked ratios and checksums against the committed baseline like
the other bench scripts (see ``bench_helpers``).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.certify import (
    LabelHole,
    NodeHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    UpdateTemplate,
    certify,
)
from repro.stream import StreamEnforcer
from repro.stream.ops import AddLeaf, Begin, Commit
from repro.stream.shard import decision_checksum
from repro.workloads import FragmentSpec, random_constraints, random_tree

SEED = 20070611  # PODS 2007
HOT = [f"l{i}" for i in range(8)]   # the constraint alphabet
COLD = ["note", "memo", "tag"]      # what certified templates touch

ANNOTATE = UpdateTemplate("annotate", tuple(
    TemplateAdd(NodeHole("p"), LabelHole(f"l{i}", frozenset(COLD)))
    for i in range(4)))

ROTATE = UpdateTemplate("rotate", (
    TemplateMove(SubtreeHole("s", frozenset(COLD)), NodeHole("d")),
    TemplateMove(SubtreeHole("s", frozenset(COLD)), NodeHole("e")),
))


def timed(fn, units: int, rounds: int) -> float:
    """Best-of-``rounds`` units/sec for ``fn`` (runs the whole workload)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return units / best


def build_workload(tree_size: int, brackets: int):
    """(base tree, constraints, schedule) — fully pinned and replayable.

    The schedule is a list of ``(template, bindings, concrete_ops)``
    rows.  Ids are pinned from a private counter (never the global
    allocator) so every round — and every engine — replays the identical
    sequence; bindings only reference base-tree nodes, which no bracket
    ever removes, so the guard passes on the evolving document too.
    """
    rng = random.Random(SEED)
    base = random_tree(rng, HOT, size=tree_size)
    anchors = list(base.node_ids())
    cold_leaves = [base.add_child(rng.choice(anchors), rng.choice(COLD))
                   for _ in range(10)]
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, HOT, spec, count=6,
                                     types="mixed", spine=2)
    next_id = max(base.node_ids()) + 1
    schedule = []
    for _ in range(brackets):
        if rng.random() < 0.7:
            bindings = {"p": rng.choice(anchors)}
            bindings.update((f"l{i}", rng.choice(COLD)) for i in range(4))
            ops = []
            for op in ANNOTATE.instantiate(bindings):
                ops.append(AddLeaf(op.parent, op.label, nid=next_id))
                next_id += 1
            schedule.append((ANNOTATE, bindings, tuple(ops)))
        else:
            leaf = rng.choice(cold_leaves)
            d, e = rng.sample([n for n in anchors if n != leaf], 2)
            bindings = {"s": leaf, "d": d, "e": e}
            schedule.append((ROTATE, bindings,
                             ROTATE.instantiate(bindings)))
    return base, constraints, schedule


def bench_certified(tree_size: int, brackets: int, rounds: int) -> dict:
    base, constraints, schedule = build_workload(tree_size, brackets)
    for template in (ANNOTATE, ROTATE):
        outcome = certify(template, constraints)
        assert outcome.certified and outcome.attempts == 0, \
            f"{template.name} must certify statically against the workload"

    certified_out, per_op_out, analyzed_out = [], [], []

    def certified():
        certified_out.clear()
        stream = StreamEnforcer(constraints, base.copy(), analysis=False)
        for template, bindings, ops in schedule:
            certified_out.extend(
                stream.apply_certified(template, bindings, ops=ops))

    def replay(analysis: bool, out: list):
        out.clear()
        stream = StreamEnforcer(constraints, base.copy(),
                                analysis=analysis)
        for template, _, ops in schedule:
            for op in (Begin(template.name), *ops, Commit()):
                out.append(stream.apply(op))

    template_ops = sum(len(ops) for _, _, ops in schedule)
    certified_qps = timed(certified, template_ops, rounds)
    per_op_qps = timed(lambda: replay(False, per_op_out), template_ops,
                       max(1, rounds - 1))
    analyzed_qps = timed(lambda: replay(True, analyzed_out), template_ops,
                         max(1, rounds - 1))
    checksum = decision_checksum(certified_out)
    return {
        "tree_size": base.size,
        "constraints": len(constraints),
        "brackets": brackets,
        "template_ops": template_ops,
        "per_op_qps": round(per_op_qps, 1),
        "analyzed_qps": round(analyzed_qps, 1),
        "certified_qps": round(certified_qps, 1),
        "speedup": round(certified_qps / per_op_qps, 2),
        # Reported, not ratio-gated: the analyzer fast path's margin has
        # its own benchmark; here it only must not *beat* certified.
        "speedup_vs_analyzed": round(certified_qps / analyzed_qps, 2),
        "decisions_match": (checksum == decision_checksum(per_op_out)
                            == decision_checksum(analyzed_out)),
        "decision_checksum": checksum,
    }


def bench_certifier(rounds: int) -> dict:
    """One-time certification cost: the price paid *once* per template.

    Reported for scale (it is off the hot path): the static discharge of
    a COLD-confined template against the random workload policy, and —
    on a fixed two-constraint policy where the violation is known to be
    reachable — the bounded refutation search that rejects a violating
    template with a replaying witness.
    """
    from repro.constraints import constraint_set
    _, constraints, _ = build_workload(tree_size=300, brackets=1)
    policy = constraint_set(("/patient/visit", "down"),
                            ("/patient[/clinicalTrial]", "up"))
    intrude = UpdateTemplate("intrude", (
        TemplateAdd(NodeHole("p"), "visit"),))

    def static():
        assert certify(ANNOTATE, constraints).certified

    def search():
        assert not certify(intrude, policy).certified

    static_cps = timed(static, 1, rounds)
    search_cps = timed(search, 1, rounds)
    outcome = certify(intrude, policy)
    return {
        "static_certifications_per_sec": round(static_cps, 1),
        "refutation_searches_per_sec": round(search_cps, 1),
        "search_attempts": outcome.attempts,
        "search_rejected": outcome.counterexample is not None,
        "attempts_checksum": outcome.attempts,
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent
                / "BENCH_certify.json")

    if smoke:
        certified = bench_certified(tree_size=300, brackets=40, rounds=2)
        certifier = bench_certifier(rounds=2)
        floor = 3.0
    else:
        certified = bench_certified(tree_size=2_000, brackets=250,
                                    rounds=3)
        certifier = bench_certifier(rounds=3)
        floor = 5.0

    report = {
        "benchmark": "certified templates: guard-only vs per-op enforcement",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "certified": certified,
        "certifier": certifier,
        "floors": {"certified": floor},
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False)
                        + "\n")
    print(f"certified: per-op {certified['per_op_qps']:>9} op/s | "
          f"analyzed {certified['analyzed_qps']:>9} op/s | "
          f"certified {certified['certified_qps']:>9} op/s | "
          f"x{certified['speedup']}")
    print(f"certifier: static {certifier['static_certifications_per_sec']}"
          f"/s | search {certifier['refutation_searches_per_sec']}/s "
          f"({certifier['search_attempts']} attempts)")
    print(f"wrote {out_path}")

    failures = []
    if not certified["decisions_match"]:
        failures.append("certified decisions diverged from uncertified "
                        "replay (with and/or without analysis)")
    if certified["speedup"] < floor:
        failures.append(f"certified speedup {certified['speedup']} "
                        f"< floor {floor}")
    if certified["speedup_vs_analyzed"] < 1.0:
        failures.append("certified path lost to the analyzer fast path "
                        f"(x{certified['speedup_vs_analyzed']})")
    if not certifier["search_rejected"]:
        failures.append("refutation search failed to reject the "
                        "conflicting template")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

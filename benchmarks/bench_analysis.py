"""Static independence analysis: the zero-work fast path, measured.

Two sections, checksummed so the compared paths provably decide alike:

* **fastpath** — one seeded, mostly-irrelevant update log
  (:func:`repro.workloads.mostly_irrelevant_stream`: ~95% of the ops
  edit noise subtrees outside every constraint's label alphabet)
  replayed against a ~2k-node document under six concrete-label mixed
  constraints.  The analyzed path is the shipped
  :class:`~repro.stream.engine.StreamEnforcer` (``analysis=True``): ops
  no impact signature intersects are accepted with zero mask work.  The
  baseline is the same engine with the analyzer off — every op pays the
  delta-maintained mask check.  Decisions are bit-identical
  (``decision_checksum`` ignores the ``independent`` witness); the
  acceptance floor is a ≥5x per-op speedup at ≥90% irrelevant traffic.
* **partition** — the same log planned by
  :func:`repro.stream.shard.partition_document` and replayed through
  :func:`~repro.stream.shard.run_partitioned` in every shard order.
  The section pins the planner's correctness contract — all orders
  produce the sequential decisions and final document — and reports how
  much of the log the planner proved reorderable (plan coverage), plus
  planning throughput.  No speed ratio is gated: the partitioned run
  drives one enforcer, so its value is the schedule, not the wall clock.

Run:  PYTHONPATH=src python benchmarks/bench_analysis.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_analysis.json`` at the repo root by default; ``--compare``
gates every tracked ratio and checksum against a committed baseline
exactly like the other bench scripts (see ``bench_helpers``).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.stream import StreamEnforcer, run_partitioned
from repro.stream.shard import SHARD_ORDERS, decision_checksum, partition_document
from repro.trees.serialize import to_literal
from repro.workloads import (
    FragmentSpec,
    mostly_irrelevant_stream,
    random_constraints,
    random_tree,
)

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]


def timed(fn, units: int, rounds: int) -> float:
    """Best-of-``rounds`` units/sec for ``fn`` (runs the whole workload)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return units / best


def workload(tree_size: int, ops: int, irrelevant_rate: float):
    rng = random.Random(SEED)
    base = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=6,
                                     types="mixed", spine=2)
    log = mostly_irrelevant_stream(rng, base, LABELS, constraints=constraints,
                                   ops=ops, irrelevant_rate=irrelevant_rate)
    return base, constraints, log


def bench_fastpath(tree_size: int, ops: int, irrelevant_rate: float,
                   rounds: int) -> dict:
    base, constraints, log = workload(tree_size, ops, irrelevant_rate)
    fast_out, full_out = [], []

    def fastpath():
        fast_out.clear()
        stream = StreamEnforcer(constraints, base.copy())
        fast_out.extend(stream.submit(log))

    def full():
        full_out.clear()
        stream = StreamEnforcer(constraints, base.copy(), analysis=False)
        full_out.extend(stream.submit(log))

    fast_qps = timed(fastpath, len(log), rounds)
    full_qps = timed(full, len(log), max(1, rounds - 1))
    fast_sum = decision_checksum(fast_out)
    full_sum = decision_checksum(full_out)
    independent = sum(1 for d in fast_out if d.independent)
    rejected = sum(1 for d in fast_out if d.rejected and not d.pending)
    return {
        "tree_size": base.size,
        "log_entries": len(log),
        "constraints": len(constraints),
        "independent_ops": independent,
        "independent_rate": round(independent / len(log), 3),
        "rejections": rejected,
        "full_qps": round(full_qps, 1),
        "fastpath_qps": round(fast_qps, 1),
        "speedup": round(fast_qps / full_qps, 2),
        "decisions_match": fast_sum == full_sum,
        "decision_checksum": fast_sum,
    }


def bench_partition(tree_size: int, ops: int, irrelevant_rate: float,
                    rounds: int) -> dict:
    base, constraints, log = workload(tree_size, ops, irrelevant_rate)

    sequential_tree = base.copy()
    sequential = StreamEnforcer(constraints, sequential_tree).submit(log)
    seq_sum = decision_checksum(sequential)
    seq_doc = to_literal(sequential_tree, with_ids=True)

    def plan():
        return partition_document(constraints, base, log)

    plans_per_sec = timed(plan, len(log), rounds)
    partition = plan()
    orders_match = True
    for order in SHARD_ORDERS:
        tree = base.copy()
        decisions = run_partitioned(constraints, tree, log,
                                    partition=partition, shard_order=order)
        if (decisions != sequential
                or to_literal(tree, with_ids=True) != seq_doc):
            orders_match = False
    return {
        "tree_size": base.size,
        "log_entries": len(log),
        "shards": len(partition.regions),
        "batches": len(partition.batches),
        "boundaries": len(partition.boundaries),
        "shard_local_ops": partition.shard_local,
        "plan_coverage": round(partition.shard_local / partition.ops, 3),
        "plan_ops_per_sec": round(plans_per_sec, 1),
        "orders_tested": len(SHARD_ORDERS),
        "orders_match": orders_match,
        "decision_checksum": seq_sum,
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent
                / "BENCH_analysis.json")

    if smoke:
        fastpath = bench_fastpath(tree_size=300, ops=80,
                                  irrelevant_rate=0.95, rounds=2)
        partition = bench_partition(tree_size=120, ops=40,
                                    irrelevant_rate=0.9, rounds=1)
        floors = {"fastpath": 1.5}
    else:
        fastpath = bench_fastpath(tree_size=2_000, ops=400,
                                  irrelevant_rate=0.95, rounds=3)
        partition = bench_partition(tree_size=400, ops=120,
                                    irrelevant_rate=0.9, rounds=2)
        floors = {"fastpath": 5.0}

    report = {
        "benchmark": "static independence: zero-work fast path + partition",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "fastpath": fastpath,
        "partition": partition,
        "floors": floors,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"fastpath : full {fastpath['full_qps']:>9} op/s | "
          f"analyzed {fastpath['fastpath_qps']:>9} op/s | "
          f"x{fastpath['speedup']} "
          f"({fastpath['independent_rate']:.0%} independent)")
    print(f"partition: {partition['shard_local_ops']}/"
          f"{partition['log_entries']} ops shard-local across "
          f"{partition['shards']} shards | "
          f"{partition['orders_tested']} orders "
          f"{'match' if partition['orders_match'] else 'DIVERGED'}")
    print(f"wrote {out_path}")

    failures = []
    if not fastpath["decisions_match"]:
        failures.append("fast-path decisions diverged from full checking")
    if fastpath["independent_rate"] < 0.9:
        failures.append(f"workload irrelevance {fastpath['independent_rate']} "
                        "< 0.9 — the fast path was not exercised as claimed")
    if not partition["orders_match"]:
        failures.append("a partitioned shard order diverged from the "
                        "sequential stream")
    if fastpath["speedup"] < floors["fastpath"]:
        failures.append(f"fastpath speedup {fastpath['speedup']} "
                        f"< floor {floors['fastpath']}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Figures and worked examples, timed as reproducible artifacts."""

from repro.constraints import constraint_set, no_insert, no_remove
from repro.constraints.validity import explain_violations
from repro.implication import (
    build_interchange_counterexample,
    implies,
    implies_linear,
)
from repro.instance import implies_on
from repro.trees import branch, build
from repro.xpath import parse


def _figure2():
    before = build(
        branch("patient", branch("visit", nid=907), branch("clinicalTrial")),
        branch("patient", branch("visit")),
    )
    after = before.copy()
    after.remove_subtree(907)
    return before, after


def test_figure2_validity_audit(benchmark):
    """Figure 2 / Example 2.1: the three-constraint audit."""
    before, after = _figure2()
    constraints = constraint_set(
        ("/patient[/visit]", "down"),
        ("/patient[/clinicalTrial]", "up"),
        ("/patient[/clinicalTrial]", "down"),
        ("/patient/visit", "up"),
    )
    violations = benchmark(explain_violations, before, after, constraints)
    assert len(violations) == 1


def test_figure3_interchange_construction(benchmark):
    """Figure 3: the Theorem 3.1 counterexample builder."""
    certificate = benchmark(build_interchange_counterexample,
                            parse("//b"), parse("/a/b"))
    assert certificate is not None


def test_example21_general_implication(benchmark):
    premises = constraint_set(("/patient[/visit]", "down"),
                              ("/patient[/clinicalTrial]", "down"))
    result = benchmark(implies, premises,
                       no_insert("/patient[/visit][/clinicalTrial]"))
    assert result.is_implied


def test_example22_instance_implication(benchmark):
    current = build(
        branch("patient", branch("clinicalTrial"), branch("visit")),
        branch("patient", branch("clinicalTrial"), branch("visit")),
    )
    premises = constraint_set(("/patient/visit", "up"))
    result = benchmark(implies_on, premises, current,
                       no_remove("/patient[/clinicalTrial]/visit"))
    assert result.is_implied


def test_example41_interaction(benchmark):
    premises = constraint_set(
        ("//a//c", "up"), ("//b//c", "up"), ("//a//b//c", "down"),
        ("//a//b//a//c", "up"), ("//b//a//b//c", "up"),
    )
    result = benchmark(implies_linear, premises, no_remove("//b//a//c"))
    assert result.is_implied


def test_figure6_reduction_generation(benchmark):
    """Figure 6: generating the Theorem 5.2 instance for a 3-var formula."""
    from repro.reductions import EXAMPLE_SAT, theorem_52_problem

    problem = benchmark(theorem_52_problem, EXAMPLE_SAT)
    assert problem.current.size > 10

"""Durable-server costs: journaling, recovery replay, snapshot leverage.

Three sections over one seeded multi-document workload:

* **journal** — per-submission enforcement throughput with no journal,
  with a write-behind journal (``fsync=False``), and with the full
  per-record ``fsync`` discipline.  Absolute op/s track the disk, not
  the code, so only the fold of the response checksums is gated: all
  three configurations must produce *bit-identical* decision streams
  (durability may cost time, never answers).
* **recovery** — cold-start replay rate of the same history, once
  through pure journal replay and once from snapshot checkpoints taken
  every 32 submissions.  The ``speedup`` (checkpointed recovery vs full
  replay, measured in wall time) is the one machine-relative ratio the
  ``--compare`` gate tracks: snapshots exist precisely so recovery work
  is bounded by the checkpoint interval instead of history length, and
  that leverage collapsing means compaction broke.  Both recoveries must
  agree with the live fleet — ``recovered_checksum`` pins the fold of
  per-document status responses.
* **socket** — end-to-end request round-trips through the asyncio
  front end (:class:`~repro.server.server.ReproServer`) from a single
  pipelining client, in-memory vs durable.  Reported, not gated: the
  numbers mix loopback latency with disk flushes.

Run:  PYTHONPATH=src python benchmarks/bench_server.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_server.json`` at the repo root by default; ``--compare``
gates tracked ratios and checksums against the committed baseline like
every other bench script (see ``bench_helpers``).
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.server import ReproClient, ReproServer, ServerJournal
from repro.service.protocol import (
    RegisterConstraints,
    RegisterDocument,
    StreamStatus,
    StreamSubmit,
    response_checksum,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore
from repro.constraints import constraint_set
from repro.stream.ops import AddLeaf, Begin, Commit, Move, RemoveSubtree, Rollback
from repro.trees.tree import DataTree

SEED = 20070611  # PODS 2007
DOCS = ("ward", "clinic")
_FOLD = 1_000_003
_MOD = 2 ** 61

POLICY = constraint_set(
    ("/patient[/clinicalTrial]", "up"),
    ("/patient[/clinicalTrial]", "down"),
    ("/patient[/visit]", "down"),
)


def fresh_doc() -> DataTree:
    tree = DataTree(root_id=1)
    tree.add_child(1, "patient", nid=5)
    tree.add_child(5, "visit", nid=7)
    tree.add_child(5, "clinicalTrial", nid=8)
    return tree


def workload(length: int) -> list[StreamSubmit]:
    """Seeded submissions with *pinned* leaf ids, so the no-journal
    configuration allocates exactly the same nodes as the journaled ones
    (the journal pins unpinned ids itself; direct enforcement has no
    journal to do it) and checksums compare across configurations."""
    rng = random.Random(SEED)
    nid = 100
    requests = []
    for _ in range(length):
        doc = rng.choice(DOCS)
        roll = rng.random()
        if roll < 0.5:
            ops = (AddLeaf(5, rng.choice(["note", "visit", "chart"]),
                           nid=(nid := nid + 1)),)
        elif roll < 0.62:
            ops = (RemoveSubtree(rng.choice([7, 8])),)
        elif roll < 0.7:
            ops = (Move(7, 5),)
        elif roll < 0.85:
            ops = (Begin(), AddLeaf(5, "note", nid=(nid := nid + 1)),
                   AddLeaf(5, "chart", nid=(nid := nid + 1)), Commit())
        else:
            ops = (Begin(), AddLeaf(5, "note", nid=(nid := nid + 1)),
                   Rollback())
        requests.append(StreamSubmit(doc, "policy", ops))
    return requests


def build_service(root=None, **journal_opts):
    store = DocumentStore()
    journal = None
    if root is not None:
        journal = ServerJournal(root, **journal_opts)
        journal.recover(store)
        store.attach_journal(journal)
    svc = ConstraintService(store=store)
    svc.handle(RegisterConstraints("policy", tuple(POLICY)))
    for doc in DOCS:
        svc.handle(RegisterDocument(doc, fresh_doc()))
    return svc, journal


def fold(values) -> int:
    total = 0
    for value in values:
        total = (total * _FOLD + value) % _MOD
    return total


def status_checksum(svc) -> int:
    return fold(response_checksum(svc.handle(StreamStatus(doc)))
                for doc in DOCS)


# ----------------------------------------------------------------------
# Section 1: journaling cost
# ----------------------------------------------------------------------
def bench_journal(submits: int, rounds: int) -> dict:
    requests = workload(submits)
    configs = [("direct", dict(root=None)),
               ("nofsync", dict(fsync=False)),
               ("fsync", dict(fsync=True))]
    rates: dict[str, float] = {}
    sums: dict[str, int] = {}
    for name, opts in configs:
        best = float("inf")
        for _ in range(rounds):
            with tempfile.TemporaryDirectory() as tmp:
                root = None if opts.get("root", tmp) is None else Path(tmp)
                journal_opts = {k: v for k, v in opts.items() if k != "root"}
                svc, journal = build_service(
                    root, checkpoint_every=10 ** 9, **journal_opts)
                start = time.perf_counter()
                checksum = fold(response_checksum(svc.handle(r))
                                for r in requests)
                best = min(best, time.perf_counter() - start)
                sums[name] = checksum
                if journal is not None:
                    journal.close()
        rates[name] = submits / best
    agree = len(set(sums.values())) == 1
    return {
        "submits": submits,
        "documents": len(DOCS),
        "direct_ops_per_sec": round(rates["direct"], 1),
        "nofsync_ops_per_sec": round(rates["nofsync"], 1),
        "fsync_ops_per_sec": round(rates["fsync"], 1),
        # disk-bound, so reported rather than gated (not named "speedup")
        "nofsync_ratio": round(rates["nofsync"] / rates["direct"], 2),
        "fsync_ratio": round(rates["fsync"] / rates["direct"], 2),
        "decisions_match": agree,
        "decision_checksum": sums["fsync"],
    }


# ----------------------------------------------------------------------
# Section 2: recovery replay and snapshot leverage
# ----------------------------------------------------------------------
def bench_recovery(submits: int, checkpoint_every: int, rounds: int) -> dict:
    requests = workload(submits)
    result: dict = {"submits": submits, "checkpoint_every": checkpoint_every}
    with tempfile.TemporaryDirectory() as full_root, \
            tempfile.TemporaryDirectory() as snap_root:
        live_sum = None
        for name, root, every in (("full", full_root, 10 ** 9),
                                  ("snap", snap_root, checkpoint_every)):
            svc, journal = build_service(Path(root), fsync=False,
                                         checkpoint_every=every)
            for request in requests:
                svc.handle(request)
            journal.sync()
            journal.close()
            live_sum = status_checksum(svc)

        recovered_sums = set()
        times: dict[str, float] = {}
        replayed: dict[str, int] = {}
        for name, root, every in (("full", full_root, 10 ** 9),
                                  ("snap", snap_root, checkpoint_every)):
            best = float("inf")
            for _ in range(rounds):
                store = DocumentStore()
                journal = ServerJournal(Path(root), fsync=False,
                                       checkpoint_every=every)
                start = time.perf_counter()
                report = journal.recover(store)
                best = min(best, time.perf_counter() - start)
                store.attach_journal(journal)
                svc = ConstraintService(store=store)
                recovered_sums.add(status_checksum(svc))
                replayed[name] = report.records_replayed
                journal.close()
            times[name] = best
        result.update({
            "full_replay_records": replayed["full"],
            "snap_replay_records": replayed["snap"],
            "full_replay_ms": round(times["full"] * 1000, 2),
            "snap_replay_ms": round(times["snap"] * 1000, 2),
            "replay_submits_per_sec": round(submits / times["full"], 1),
            # the one tracked ratio: snapshot leverage over full replay
            "speedup": round(times["full"] / times["snap"], 2),
            "recovered_matches_live": recovered_sums == {live_sum},
            "recovered_checksum": live_sum,
        })
    return result


# ----------------------------------------------------------------------
# Section 3: socket round trips
# ----------------------------------------------------------------------
def bench_socket(submits: int, rounds: int) -> dict:
    requests = workload(submits)

    async def drive(server) -> tuple[float, int]:
        await server.start()
        host, port = server.address
        client = await ReproClient.connect(host, port)
        await client.request(RegisterConstraints("policy", tuple(POLICY)))
        for doc in DOCS:
            await client.request(RegisterDocument(doc, fresh_doc()))
        start = time.perf_counter()
        futures = [await client.submit(r) for r in requests]
        responses = await asyncio.gather(*futures)
        elapsed = time.perf_counter() - start
        checksum = fold(response_checksum(r) for r in responses)
        await client.close()
        await server.close()
        return elapsed, checksum

    best_memory = best_durable = float("inf")
    sums = set()
    for _ in range(rounds):
        elapsed, checksum = asyncio.run(drive(ReproServer()))
        best_memory = min(best_memory, elapsed)
        sums.add(checksum)
        with tempfile.TemporaryDirectory() as tmp:
            elapsed, checksum = asyncio.run(drive(
                ReproServer.durable(tmp, fsync=False,
                                    checkpoint_every=10 ** 9)))
            best_durable = min(best_durable, elapsed)
            sums.add(checksum)
    return {
        "submits": submits,
        "memory_rps": round(submits / best_memory, 1),
        "durable_rps": round(submits / best_durable, 1),
        # loopback + disk bound: reported, not gated
        "durable_ratio": round(best_memory / best_durable, 2),
        "decisions_match": len(sums) == 1,
        "socket_checksum": sums.pop() if len(sums) == 1 else 0,
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_server.json")

    if smoke:
        journal = bench_journal(submits=120, rounds=2)
        recovery = bench_recovery(submits=240, checkpoint_every=32, rounds=2)
        socket = bench_socket(submits=60, rounds=2)
    else:
        journal = bench_journal(submits=400, rounds=3)
        recovery = bench_recovery(submits=1200, checkpoint_every=32, rounds=3)
        socket = bench_socket(submits=200, rounds=3)

    report = {
        "benchmark": "durable server: journaling, recovery replay, "
                     "snapshot leverage, socket round trips",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "journal": journal,
        "recovery": recovery,
        "socket": socket,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"journal : direct {journal['direct_ops_per_sec']:>9} op/s | "
          f"nofsync x{journal['nofsync_ratio']} | "
          f"fsync x{journal['fsync_ratio']} (disk-bound; not gated)")
    print(f"recover : replay {recovery['replay_submits_per_sec']:>9} sub/s | "
          f"snap {recovery['snap_replay_ms']}ms vs "
          f"full {recovery['full_replay_ms']}ms | x{recovery['speedup']}")
    print(f"socket  : memory {socket['memory_rps']:>9} rps | "
          f"durable {socket['durable_rps']:>9} rps | "
          f"x{socket['durable_ratio']} (loopback; not gated)")
    print(f"wrote {out_path}")

    failures = []
    if not journal["decisions_match"]:
        failures.append("journal: durable configs diverged from direct "
                        "enforcement — durability changed answers")
    if not recovery["recovered_matches_live"]:
        failures.append("recovery: recovered fleet diverged from live")
    if not socket["decisions_match"]:
        failures.append("socket: response stream diverged between "
                        "in-memory and durable servers")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r} — compare like for like")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Service-layer throughput: executors, async front end, parallel search.

Three sections, checksummed so the compared paths provably behave
identically:

* **refutation** — one budget-exhausting mixed-type refutation search
  (the coNP cell's worst case: every cascade candidate validated, no
  counterexample found) run sequentially and with the candidate families
  fanned across 2 and 4 worker processes
  (:func:`repro.instance.search.bounded_refutation` ``workers=``).  The
  verdicts must agree exactly; the parallel ratios are **reported, not
  gated** — like the shard section of ``bench_stream.py``, they track the
  runner's core count, not the code (the baseline below was produced on a
  single-core container, where replaying the enumeration in N processes
  on one core cannot beat one process; the design shards the dominant
  validation cost, so multi-core runners are expected to scale, but that
  remains unmeasured until one is available).
* **async** — a single client pipelining an update log through
  :class:`~repro.service.async_service.AsyncService` (one awaitable
  decision per op) vs direct :meth:`StreamEnforcer.apply` calls on the
  same log.  The façade adds one queue hop and one future per op; the
  tracked ``speedup`` (async/direct) is gated — the ROADMAP target is
  single-client throughput within ~10% of direct calls.
* **service** — wire-level dispatch overhead: repeated implication
  batches through :meth:`ConstraintService.handle` (request objects in,
  wire verdicts out) vs the same queries on the compiled session
  directly.  Gated like ``async``.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_service.json`` at the repo root by default; ``--compare``
gates every tracked ratio and checksum against a committed baseline
exactly like the other bench scripts (see ``bench_helpers``).
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro import AsyncService, ConstraintService, Reasoner, StreamEnforcer
from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.instance.search import bounded_refutation
from repro.service import ImplicationQuery, StreamSubmit, response_checksum
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
    random_update_stream,
)

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(6)]

_FOLD = 1_000_003
_MOD = 2 ** 61


def timed(fn, units: int, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return units / best


def fold_checksums(responses) -> int:
    total = 0
    for response in responses:
        total = (total * _FOLD + response_checksum(response)) % _MOD
    return total


# ----------------------------------------------------------------------
# Section 1: parallel refutation search
# ----------------------------------------------------------------------
def refutation_problem(tree_size: int, budget: int):
    """A seeded mixed-type problem whose search exhausts its budget.

    Drawn until the sequential search returns no counterexample (the
    UNKNOWN-side worst case): then every one of ``budget`` cascade
    candidates is validated, and throughput is well-defined as
    candidates/second.
    """
    rng = random.Random(SEED)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    while True:
        tree = random_tree(rng, LABELS, size=tree_size)
        premises = random_constraints(rng, LABELS, spec, count=5,
                                      types="mixed", spine=2)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=2),
            rng.choice(list(ConstraintType)))
        if premises.of_type(conclusion.type) and \
                premises.of_type(conclusion.type.opposite) and \
                bounded_refutation(premises, tree, conclusion,
                                   max_moves=2, budget=budget) is None:
            return premises, tree, conclusion


def bench_refutation(tree_size: int, budget: int, rounds: int) -> dict:
    premises, tree, conclusion = refutation_problem(tree_size, budget)
    outcomes = {}

    def run(workers: int):
        def go():
            outcomes[workers] = bounded_refutation(
                premises, tree, conclusion, max_moves=2, budget=budget,
                workers=workers)
        return go

    seq_cps = timed(run(1), budget, rounds)
    two_cps = timed(run(2), budget, max(1, rounds - 1))
    four_cps = timed(run(4), budget, max(1, rounds - 1))
    agree = all(outcome is None for outcome in outcomes.values())
    return {
        "tree_size": tree.size,
        "budget": budget,
        "premises": len(premises),
        "sequential_candidates_per_sec": round(seq_cps, 1),
        "workers2_candidates_per_sec": round(two_cps, 1),
        "workers4_candidates_per_sec": round(four_cps, 1),
        # Core-count-bound: reported for observability, deliberately not
        # named "speedup" so the --compare gate does not track them.
        "parallel_ratio_2w": round(two_cps / seq_cps, 2),
        "parallel_ratio_4w": round(four_cps / seq_cps, 2),
        "verdicts_agree": agree,
        "verdict_checksum": 1 if agree else 0,
    }


# ----------------------------------------------------------------------
# Section 2: async front end vs direct StreamEnforcer
# ----------------------------------------------------------------------
def bench_async(tree_size: int, ops: int, rounds: int) -> dict:
    """Steady-state per-op throughput: stream setup (document copy,
    baseline evaluation, loop startup, registration) is excluded on both
    sides — the measured region is exactly the per-op path a long-lived
    single client exercises."""
    rng = random.Random(SEED)
    base = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=5,
                                     types="mixed", spine=2)
    log = random_update_stream(rng, base, LABELS, constraints=constraints,
                               ops=ops, violation_rate=0.3, txn_prob=0.0)
    direct_out, async_out = [], []

    def direct_once() -> float:
        direct_out.clear()
        stream = StreamEnforcer(constraints, base.copy())
        start = time.perf_counter()
        direct_out.extend(stream.apply(op) for op in log)
        return time.perf_counter() - start

    async def pipeline() -> float:
        best = float("inf")
        async with AsyncService() as svc:
            await svc.register_constraints("policy", constraints)
            for round_no in range(rounds):
                doc = f"doc{round_no}"
                await svc.register_document(doc, base.copy())
                # Prime the stream (opens the enforcer, evaluates the
                # baseline) and pre-build the request objects — a wire
                # client hands the service ready-made requests — before
                # the clock starts.
                await svc.submit(StreamSubmit(doc, "policy", ()))
                requests = [StreamSubmit(doc, "policy", (op,)) for op in log]
                start = time.perf_counter()
                futures = [svc.submit(request) for request in requests]
                replies = list(await asyncio.gather(*futures))
                best = min(best, time.perf_counter() - start)
                async_out.clear()
                async_out.extend(replies)
        return best

    direct_qps = len(log) / min(direct_once() for _ in range(rounds))
    async_qps = len(log) / asyncio.run(pipeline())
    # Same per-op verdicts: fold the async wire decisions and the direct
    # decisions through one shape.
    from repro.service import StreamDecisions, WireDecision
    direct_wire = fold_checksums(
        StreamDecisions((WireDecision.of(d),)) for d in direct_out)
    async_wire = fold_checksums(async_out)
    rejected = sum(1 for r in async_out for d in r.decisions if not d.accepted)
    return {
        "tree_size": base.size,
        "log_entries": len(log),
        "constraints": len(constraints),
        "rejections": rejected,
        "direct_qps": round(direct_qps, 1),
        "async_qps": round(async_qps, 1),
        "speedup": round(async_qps / direct_qps, 2),
        "decisions_match": direct_wire == async_wire,
        "decision_checksum": async_wire,
    }


# ----------------------------------------------------------------------
# Section 3: wire-level dispatch overhead on implication traffic
# ----------------------------------------------------------------------
def bench_service_dispatch(batches: int, per_batch: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    spec = FragmentSpec(predicates=True, descendant=False, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=5,
                                     types="mixed", spine=2)
    distinct = [UpdateConstraint(random_pattern(rng, LABELS, spec, spine=2),
                                 rng.choice(list(ConstraintType)))
                for _ in range(10)]
    requests = [ImplicationQuery("policy", tuple(
        rng.choice(distinct) for _ in range(per_batch)))
        for _ in range(batches)]

    svc = ConstraintService()
    svc.register_constraints("policy", constraints)
    session = Reasoner(constraints)
    service_out = []

    def through_service():
        service_out.clear()
        service_out.extend(svc.handle(request) for request in requests)

    def through_session():
        for request in requests:
            session.implies_all(request.conclusions)

    queries = batches * per_batch
    service_qps = timed(through_service, queries, rounds)
    session_qps = timed(through_session, queries, rounds)
    return {
        "batches": batches,
        "queries": queries,
        "session_qps": round(session_qps, 1),
        "service_qps": round(service_qps, 1),
        "speedup": round(service_qps / session_qps, 2),
        "answer_checksum": fold_checksums(service_out),
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_service.json")

    if smoke:
        refutation = bench_refutation(tree_size=24, budget=300, rounds=2)
        asynchronous = bench_async(tree_size=200, ops=40, rounds=2)
        dispatch = bench_service_dispatch(batches=20, per_batch=4, rounds=2)
        floors = {"async": 0.45, "service": 0.25}
    else:
        refutation = bench_refutation(tree_size=48, budget=1500, rounds=2)
        asynchronous = bench_async(tree_size=1200, ops=120, rounds=3)
        dispatch = bench_service_dispatch(batches=60, per_batch=5, rounds=3)
        floors = {"async": 0.6, "service": 0.35}

    report = {
        "benchmark": "constraint service: executors, async front end, "
                     "parallel refutation search",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "refutation": refutation,
        "async": asynchronous,
        "service": dispatch,
        "floors": floors,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"refute  : seq {refutation['sequential_candidates_per_sec']:>9} c/s | "
          f"2w x{refutation['parallel_ratio_2w']} | "
          f"4w x{refutation['parallel_ratio_4w']} (not gated; core-bound)")
    print(f"async   : direct {asynchronous['direct_qps']:>8} op/s | "
          f"async  {asynchronous['async_qps']:>9} op/s | "
          f"x{asynchronous['speedup']}")
    print(f"service : session {dispatch['session_qps']:>7} q/s | "
          f"service {dispatch['service_qps']:>8} q/s | "
          f"x{dispatch['speedup']}")
    print(f"wrote {out_path}")

    failures = []
    if not refutation["verdicts_agree"]:
        failures.append("refutation verdicts diverged across worker counts")
    if not asynchronous["decisions_match"]:
        failures.append("async decisions diverged from direct StreamEnforcer")
    if asynchronous["speedup"] < floors["async"]:
        failures.append(f"async throughput ratio {asynchronous['speedup']} "
                        f"< floor {floors['async']}")
    if dispatch["speedup"] < floors["service"]:
        failures.append(f"service dispatch ratio {dispatch['speedup']} "
                        f"< floor {floors['service']}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

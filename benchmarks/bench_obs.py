"""Observability overhead: instrumented vs disabled enforcement.

The ``repro.obs`` contract is that instrumentation is cheap enough for
the hot path.  This gate holds it to a number: the bench_stream
enforcement workload (seeded update log, mixed constraint set, ~2k-node
document) run through a :class:`~repro.stream.engine.StreamEnforcer`
twice — once metering into a live :class:`~repro.obs.MetricsRegistry`,
once with the shared no-op :data:`~repro.obs.NULL` registry — must stay
within ``OVERHEAD_LIMIT`` (5%) of the disabled run, with bit-identical
decision checksums (instrumentation must never change behaviour).

A registry micro-section reports raw instrument update rates
(counter.inc / histogram.observe per second) for context; those are
informational, not gated (absolute rates move with the hardware).

Run:  PYTHONPATH=src python benchmarks/bench_obs.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_obs.json`` at the repo root by default; the ≤5% overhead
floor is self-gated (hard SystemExit, independent of ``--tolerance``),
and ``--compare`` additionally pins the decision checksum against the
committed baseline like every other bench script.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.obs import MetricsRegistry, NULL
from repro.stream import StreamEnforcer
from repro.stream.shard import decision_checksum
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_tree,
    random_update_stream,
)

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]

#: The gate: instrumented enforcement must keep ≥95% of disabled-registry
#: throughput on the bench_stream workload.
OVERHEAD_LIMIT = 0.05


def timed(fn, units: int, rounds: int) -> float:
    """Best-of-``rounds`` units/sec for ``fn`` (runs the whole workload)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return units / best


def timed_pair(fn_a, fn_b, units: int, rounds: int) -> tuple[float, float]:
    """Best-of units/sec for two workloads, interleaved round-by-round.

    Alternating A and B inside one loop means clock drift, cache state
    and CPU frequency shifts hit both variants alike — a separate
    best-of per variant can attribute a machine hiccup entirely to one
    side, which matters when the gate is a 5% delta.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return units / best_a, units / best_b


def bench_overhead(tree_size: int, ops: int, rounds: int) -> dict:
    """The bench_stream enforcement workload, metered vs disabled."""
    rng = random.Random(SEED)
    base = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=6,
                                     types="mixed", spine=2)
    log = random_update_stream(rng, base, LABELS, constraints=constraints,
                               ops=ops, violation_rate=0.3, txn_prob=0.15)

    disabled_out, metered_out = [], []
    metered_registry = MetricsRegistry()
    stream_ops = {"stats": 0}

    def disabled():
        disabled_out.clear()
        stream = StreamEnforcer(constraints, base.copy(), metrics=NULL)
        disabled_out.extend(stream.submit(log))

    def metered():
        metered_out.clear()
        metered_registry.reset()  # count one round, not the best-of loop
        stream = StreamEnforcer(constraints, base.copy(),
                                metrics=metered_registry)
        metered_out.extend(stream.submit(log))
        stream_ops["stats"] = stream.stats.ops

    disabled_qps, metered_qps = timed_pair(disabled, metered, len(log), rounds)
    disabled_sum = decision_checksum(disabled_out)
    metered_sum = decision_checksum(metered_out)
    overhead = 1.0 - metered_qps / disabled_qps
    return {
        "tree_size": base.size,
        "log_entries": len(log),
        "constraints": len(constraints),
        "disabled_qps": round(disabled_qps, 1),
        "metered_qps": round(metered_qps, 1),
        "overhead_fraction": round(overhead, 4),
        "qps_ratio": round(metered_qps / disabled_qps, 3),
        "metered_ops_total": metered_registry.counter(
            "stream.ops_total").value,
        "stats_ops": stream_ops["stats"],
        "decisions_match": disabled_sum == metered_sum,
        "decision_checksum": metered_sum,
    }


def bench_registry_micro(updates: int, rounds: int) -> dict:
    """Raw instrument update rates (informational, not gated)."""
    reg = MetricsRegistry()
    counter = reg.counter("micro.hits_total")
    hist = reg.histogram("micro.lat_seconds")

    def inc_loop():
        for _ in range(updates):
            counter.inc()

    def observe_loop():
        for _ in range(updates):
            hist.observe(0.001)

    def resolve_loop():
        for _ in range(updates):
            reg.counter("micro.hits_total")

    return {
        "updates": updates,
        "counter_inc_per_sec": round(timed(inc_loop, updates, rounds), 0),
        "histogram_observe_per_sec": round(
            timed(observe_loop, updates, rounds), 0),
        "registry_resolve_per_sec": round(
            timed(resolve_loop, updates, rounds), 0),
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_obs.json")

    if smoke:
        overhead = bench_overhead(tree_size=300, ops=40, rounds=9)
        micro = bench_registry_micro(updates=20_000, rounds=2)
    else:
        overhead = bench_overhead(tree_size=2_000, ops=150, rounds=9)
        micro = bench_registry_micro(updates=200_000, rounds=3)

    report = {
        "benchmark": "observability overhead: metered vs disabled registry",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "overhead_limit": OVERHEAD_LIMIT,
        "enforcement": overhead,
        "registry_micro": micro,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"enforce : disabled {overhead['disabled_qps']:>9} op/s | "
          f"metered {overhead['metered_qps']:>9} op/s | "
          f"overhead {overhead['overhead_fraction'] * 100:.1f}% "
          f"(limit {OVERHEAD_LIMIT * 100:.0f}%)")
    print(f"registry: inc {micro['counter_inc_per_sec']:>11} /s | "
          f"observe {micro['histogram_observe_per_sec']:>11} /s | "
          f"resolve {micro['registry_resolve_per_sec']:>11} /s")
    print(f"wrote {out_path}")

    failures = []
    if not overhead["decisions_match"]:
        failures.append("instrumentation changed enforcement decisions "
                        "(metered and disabled checksums diverged)")
    if overhead["metered_qps"] < (1.0 - OVERHEAD_LIMIT) * overhead[
            "disabled_qps"]:
        failures.append(
            f"instrumentation overhead {overhead['overhead_fraction'] * 100:.1f}% "
            f"exceeds the {OVERHEAD_LIMIT * 100:.0f}% limit")
    if overhead["metered_ops_total"] != overhead["stats_ops"]:
        failures.append(
            f"metered stream.ops_total {overhead['metered_ops_total']} != "
            f"the enforcer's own stats.ops {overhead['stats_ops']}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

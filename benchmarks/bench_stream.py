"""Online enforcement throughput: delta-maintained masks vs re-validation.

Three sections, checksummed so the compared paths provably behave
identically:

* **enforcement** — one seeded update log (ops, transaction brackets and a
  tunable adversarial fraction) replayed against a ~2k-node document under
  a mixed constraint set.  The incremental path is the shipped
  :class:`~repro.stream.engine.StreamEnforcer`: one live
  :class:`~repro.trees.index.TreeIndex` across the whole stream,
  predicate masks delta-patched per edit.  The baseline is the same
  engine with its validation strategy swapped for honest per-op
  recompute-from-scratch: a *fresh* snapshot and cold masks for every
  check (what a caller would do with the session API alone, rebinding
  after each mutation).  Same decisions, same witnesses — the acceptance
  floor is a ≥3x per-op speedup at 2k nodes.
* **decoder** — the ``int.to_bytes`` batch slot decoder
  (:func:`repro.xpath.bitset.slots_of` / ``iter_slots``) vs the old
  big-int bit-kernel loop, extracting every mask of a >10k-node document
  (ROADMAP follow-up: the bitset ceiling on large documents).
* **sharded** — a fleet of independent streams through
  :func:`repro.stream.shard.run_sharded`, sequential vs a 2-worker pool.
  The checksum pins cross-process determinism; the ``parallel_ratio`` is
  reported for observability but deliberately not gated (CI runners have
  wildly varying core counts).

Run:  PYTHONPATH=src python benchmarks/bench_stream.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_stream.json`` at the repo root by default; ``--compare``
gates every tracked ratio and checksum against a committed baseline
exactly like the other bench scripts (see ``bench_helpers``).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.constraints.validity import Violation
from repro.errors import TreeError
from repro.stream import AddLeaf, Move, StreamEnforcer, StreamJob, run_sharded
from repro.stream.shard import decision_checksum
from repro.trees.index import TreeIndex
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_tree,
    random_update_stream,
)
from repro.xpath.bitset import BitsetEvaluator, slots_of

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]


def timed(fn, units: int, rounds: int) -> float:
    """Best-of-``rounds`` units/sec for ``fn`` (runs the whole workload)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return units / best


class ScratchEnforcer(StreamEnforcer):
    """The same enforcement semantics, validated from scratch per op.

    Edits go straight to the raw tree (no live snapshot to maintain) and
    every re-check builds a fresh :class:`BitsetEvaluator` — cold masks,
    full bottom-up recompute.  Decisions must be bit-identical to the
    incremental engine's; only the work per operation differs.
    """

    def _check_fresh(self) -> None:  # the initial snapshot is left behind
        pass

    def _current_violations(self) -> tuple[Violation, ...]:
        fresh = BitsetEvaluator.for_tree(self._tree)
        return tuple(self._checker.violations(self._tree, context=fresh))

    def _perform(self, op):
        tree = self._tree
        if isinstance(op, AddLeaf):
            nid = tree.add_child(op.parent, op.label, nid=op.nid)
            return ("unadd", nid)
        if isinstance(op, Move):
            old_parent = tree.parent(op.nid)
            tree.move(op.nid, op.new_parent)
            return ("move", op.nid, old_parent)
        if op.nid not in tree:
            raise TreeError(f"node {op.nid} not in tree")
        spec = tuple((n, tree.parent(n), tree.label(n))
                     for n in tree.descendants(op.nid, include_self=True))
        tree.remove_subtree(op.nid)
        return ("revive", spec)

    def _undo(self, journal) -> None:
        tree = self._tree
        for entry in reversed(journal):
            tag = entry[0]
            if tag == "move":
                tree.move(entry[1], entry[2])
            elif tag == "unadd":
                tree.remove_subtree(entry[1])
            else:
                for nid, parent, label in entry[1]:
                    tree.add_child(parent, label, nid=nid)


def bench_enforcement(tree_size: int, ops: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    base = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=6,
                                     types="mixed", spine=2)
    log = random_update_stream(rng, base, LABELS, constraints=constraints,
                               ops=ops, violation_rate=0.3, txn_prob=0.15)

    incremental_out, scratch_out = [], []

    def incremental():
        incremental_out.clear()
        # analysis=False: this section isolates the delta-maintained mask
        # machinery; the independence fast path has its own benchmark
        # (bench_analysis.py) with a workload shaped to exercise it.
        stream = StreamEnforcer(constraints, base.copy(), analysis=False)
        incremental_out.extend(stream.submit(log))

    def scratch():
        scratch_out.clear()
        # analysis=False: the scratch baseline leaves the live snapshot
        # behind, so the analyzer must not consult it — and an honest
        # recompute baseline takes no fast path anyway.
        stream = ScratchEnforcer(constraints, base.copy(), analysis=False)
        scratch_out.extend(stream.submit(log))

    incremental_qps = timed(incremental, len(log), rounds)
    scratch_qps = timed(scratch, len(log), max(1, rounds - 1))
    inc_sum = decision_checksum(incremental_out)
    scr_sum = decision_checksum(scratch_out)
    rejected = sum(1 for d in incremental_out if d.rejected and not d.pending)
    return {
        "tree_size": base.size,
        "log_entries": len(log),
        "constraints": len(constraints),
        "rejections": rejected,
        "scratch_qps": round(scratch_qps, 1),
        "incremental_qps": round(incremental_qps, 1),
        "speedup": round(incremental_qps / scratch_qps, 2),
        "decisions_match": inc_sum == scr_sum,
        "decision_checksum": inc_sum,
    }


def bench_decoder(tree_size: int, rounds: int) -> dict:
    """Batch ``int.to_bytes`` slot decoding vs the big-int bit-kernel."""
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS, size=tree_size)
    index = TreeIndex(tree)
    masks = [index.label_mask(label) for label in LABELS]
    masks.append(index.all_mask())

    def bitkernel(mask: int) -> list[int]:
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    total_slots = sum(len(slots_of(m)) for m in masks)

    def batch():
        for m in masks:
            slots_of(m)

    def kernel():
        for m in masks:
            bitkernel(m)

    batch_sps = timed(batch, total_slots, rounds)
    kernel_sps = timed(kernel, total_slots, rounds)
    checksum = sum(sum(slots_of(m)) for m in masks) % (2 ** 61)
    reference = sum(sum(bitkernel(m)) for m in masks) % (2 ** 61)
    return {
        "tree_size": tree.size,
        "masks": len(masks),
        "slots_decoded": total_slots,
        "bitkernel_slots_per_sec": round(kernel_sps, 0),
        "batch_slots_per_sec": round(batch_sps, 0),
        "speedup": round(batch_sps / kernel_sps, 2),
        "answers_match": checksum == reference,
        "slot_checksum": checksum,
    }


def bench_sharded(jobs: int, tree_size: int, ops: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    bundle = []
    for i in range(jobs):
        tree = random_tree(rng, LABELS, size=tree_size)
        constraints = random_constraints(rng, LABELS, spec, count=4,
                                         types="mixed", spine=2)
        log = random_update_stream(rng, tree, LABELS,
                                   constraints=constraints, ops=ops,
                                   violation_rate=0.3)
        bundle.append(StreamJob.build(constraints, tree, log, name=f"doc{i}"))

    sequential_out, sharded_out = [], []

    def sequential():
        sequential_out[:] = run_sharded(bundle, workers=1)

    def sharded():
        sharded_out[:] = run_sharded(bundle, workers=2)

    total_ops = jobs * ops
    sequential_qps = timed(sequential, total_ops, rounds)
    sharded_qps = timed(sharded, total_ops, rounds)
    fold = 0
    for report in sequential_out:
        fold = (fold * 1_000_003 + report.decision_checksum) % (2 ** 61)
    match = [r.decision_checksum for r in sequential_out] == \
            [r.decision_checksum for r in sharded_out]
    return {
        "jobs": jobs,
        "tree_size": tree_size,
        "ops_per_job": ops,
        "sequential_qps": round(sequential_qps, 1),
        "sharded_qps": round(sharded_qps, 1),
        # Reported, not gated: runner core counts vary too much.
        "parallel_ratio": round(sharded_qps / sequential_qps, 2),
        "reports_match": match,
        "fleet_checksum": fold,
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_stream.json")

    if smoke:
        enforcement = bench_enforcement(tree_size=300, ops=40, rounds=2)
        decoder = bench_decoder(tree_size=2_000, rounds=2)
        sharded = bench_sharded(jobs=2, tree_size=60, ops=12, rounds=1)
        floors = {"enforcement": 1.3, "decoder": 1.05}
    else:
        enforcement = bench_enforcement(tree_size=2_000, ops=150, rounds=3)
        decoder = bench_decoder(tree_size=12_000, rounds=5)
        sharded = bench_sharded(jobs=3, tree_size=150, ops=30, rounds=2)
        floors = {"enforcement": 3.0, "decoder": 1.2}

    report = {
        "benchmark": "online enforcement: delta-maintained vs re-validation",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "enforcement": enforcement,
        "decoder": decoder,
        "sharded": sharded,
        "floors": floors,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"enforce : scratch {enforcement['scratch_qps']:>8} op/s | "
          f"incremental {enforcement['incremental_qps']:>9} op/s | "
          f"x{enforcement['speedup']}")
    print(f"decoder : kernel {decoder['bitkernel_slots_per_sec']:>9} sl/s | "
          f"batch       {decoder['batch_slots_per_sec']:>9} sl/s | "
          f"x{decoder['speedup']}")
    print(f"sharded : seq    {sharded['sequential_qps']:>9} op/s | "
          f"pool        {sharded['sharded_qps']:>9} op/s | "
          f"x{sharded['parallel_ratio']} (not gated)")
    print(f"wrote {out_path}")

    failures = []
    if not enforcement["decisions_match"]:
        failures.append("enforcement decisions diverged between incremental "
                        "and recompute-from-scratch")
    if not decoder["answers_match"]:
        failures.append("decoder slot sets diverged from the bit-kernel")
    if not sharded["reports_match"]:
        failures.append("sharded reports diverged from the sequential run")
    for name in ("enforcement", "decoder"):
        row = report[name]
        if row["speedup"] < floors[name]:
            failures.append(f"{name} speedup {row['speedup']} "
                            f"< floor {floors[name]}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

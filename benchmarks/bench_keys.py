"""Section 3.2 / 4.2 machinery: the encoding and its exponential annotations.

The NEXPTIME upper bound of Theorem 4.2 rests on annotated labels: the set
``P`` of derived sub-patterns grows polynomially, the set of *consistent
annotations* over it exponentially.  These benchmarks expose both growth
curves, plus the cost of the φ-encoding equivalence check (Example 3.1).
"""

import random

import pytest

from bench_helpers import LABELS
from repro.keys import (
    consistent_annotations,
    encode_pair,
    pair_satisfies_encoding,
    pattern_closure,
)
from repro.workloads import FragmentSpec, random_constraints, random_tree, random_valid_pair
from repro.xpath import parse


@pytest.mark.parametrize("n_patterns", [1, 2, 3])
def test_pattern_closure_growth(benchmark, n_patterns):
    patterns = [parse("/a[/b]//c"), parse("//b[//a]"), parse("/c[/a][/b]")]
    chosen = patterns[:n_patterns]
    closure = benchmark(pattern_closure, chosen, ["a", "b"])
    assert len(closure) >= n_patterns


@pytest.mark.parametrize("universe_size", [3, 5, 7])
def test_consistent_annotation_blowup(benchmark, universe_size):
    closure = pattern_closure([parse("/a[/b]//c"), parse("//b[//a]")], ["a"])
    universe = closure[:universe_size]
    annotations = benchmark(consistent_annotations, universe, None, 3)
    assert annotations  # the empty annotation is always consistent


@pytest.mark.parametrize("tree_size", [5, 10, 20])
def test_phi_encoding_check(benchmark, tree_size):
    rng = random.Random(tree_size)
    premises = random_constraints(rng, LABELS, FragmentSpec(predicates=False),
                                  count=3, types="mixed", spine=2)
    tree = random_tree(rng, LABELS, size=tree_size)
    before, after = random_valid_pair(rng, tree, premises)
    assert benchmark(pair_satisfies_encoding, premises, before, after)


def test_phi_transformation_cost(benchmark):
    rng = random.Random(99)
    tree = random_tree(rng, LABELS, size=60)
    doc = benchmark(encode_pair, tree, tree.copy())
    assert doc.tree.size > 100

"""Make the shared workload helpers importable when collecting benchmarks."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

"""Table 2 — instance-based implication, one benchmark group per cell."""

import random

import pytest

from bench_helpers import instance_workload, run_all
from repro.constraints import UpdateConstraint, ConstraintType
from repro.instance import (
    implies_by_certain_facts,
    implies_no_insert,
    implies_no_insert_linear,
    implies_no_remove,
    implies_on,
)
from repro.reductions import random_3cnf, theorem_52_problem
from repro.workloads import FragmentSpec


# ----------------------------------------------------------------------
# Row ↓ (only no-insert constraints).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tree_size", [10, 20, 40])
def test_cell_xp_slash_down_ptime(benchmark, tree_size):
    """XP{/}: tree structure plays no role — PTIME."""
    problems = instance_workload(
        "t2-slash-down", FragmentSpec(False, False, False), 3, "down", tree_size)
    benchmark(run_all, problems, implies_no_insert)


@pytest.mark.parametrize("tree_size", [10, 20, 40])
def test_cell_child_only_down_certain_facts(benchmark, tree_size):
    """XP{/,[],*}, ↓: Theorem 5.3's F_J construction (PTIME)."""
    problems = instance_workload(
        "t2-child-down", FragmentSpec(descendant=False), 3, "down", tree_size)
    benchmark(run_all, problems, implies_by_certain_facts)


@pytest.mark.parametrize("tree_size", [10, 20, 40])
def test_cell_linear_down_automata(benchmark, tree_size):
    """XP{/,//,*}, ↓: Theorem 5.4's automata engine (PTIME under bounds)."""
    problems = instance_workload(
        "t2-linear-down", FragmentSpec(predicates=False), 3, "down", tree_size,
        spine=3)
    benchmark(run_all, problems, implies_no_insert_linear)


@pytest.mark.parametrize("tree_size", [10, 20])
def test_cell_full_down_conp(benchmark, tree_size):
    """XP{/,[],//,*}, ↓: coNP-complete (Theorem 5.1) — escape engine."""
    problems = instance_workload(
        "t2-full-down", FragmentSpec(), 3, "down", tree_size)
    benchmark(run_all, problems, implies_no_insert)


# ----------------------------------------------------------------------
# Row ↑ (only no-remove constraints): poly in |J|, |C|; exponential in |c|.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tree_size", [8, 16, 32])
def test_cell_up_scaling_in_data(benchmark, tree_size):
    """Theorem 5.5: polynomial growth in |J| at fixed |c|."""
    problems = instance_workload(
        "t2-up-data", FragmentSpec(descendant=False), 2, "up", tree_size)
    benchmark(run_all, problems, implies_no_remove)


@pytest.mark.parametrize("spine", [2, 3, 4])
def test_cell_up_scaling_in_conclusion(benchmark, spine):
    """Theorem 5.5: exponential growth in |c| at fixed |J|."""
    problems = instance_workload(
        "t2-up-conc", FragmentSpec(descendant=False), 2, "up", 8, spine=spine)
    benchmark(run_all, problems, implies_no_remove)


# ----------------------------------------------------------------------
# Row mixed: coNP-complete already for XP{/,[]} (Theorem 5.2).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tree_size", [6, 12])
def test_cell_mixed_hybrid(benchmark, tree_size):
    problems = instance_workload(
        "t2-mixed", FragmentSpec(descendant=False, wildcard=False), 3,
        "down", tree_size)

    def run(problems):
        checksum = 0
        for premises, current, conclusion in problems:
            mixed = UpdateConstraint(conclusion.range, ConstraintType.NO_REMOVE)
            result = implies_on(
                premises.with_constraint(mixed), current, conclusion,
                max_moves=1, search_budget=200)
            checksum += hash(result.answer.value) & 0xFF
        return checksum

    benchmark(run, problems)


@pytest.mark.parametrize("n_vars", [1, 2])
def test_cell_mixed_theorem52_family(benchmark, n_vars):
    """The Theorem 5.2 reduction instances drive the mixed hybrid engine."""
    rng = random.Random(2000 + n_vars)
    problem = theorem_52_problem(random_3cnf(rng, n_vars, 1))

    def attempt():
        return implies_on(problem.premises, problem.current,
                          problem.conclusion, max_moves=1,
                          search_budget=200).answer

    benchmark(attempt)

"""Fleet-scale constraint checking: the numpy mask backend vs big-int.

One workload, two backends, identical decisions.  A fleet of ~1000
small documents is adopted under one shared constraint set
(:class:`~repro.masks.FleetEvaluator`), driven through a few write
epochs, and then served batched validity checks:

* **check** (gated) — the steady-state cost of one whole-fleet validity
  check: every constraint range swept across all documents, baselines
  packed into backend rows, per-constraint compares row-wise.  This is
  the phase the numpy backend vectorizes — the acceptance floor is a
  ≥3x speedup over the big-int reference at 1000 documents.
* **epochs** (reported, not gated) — end-to-end epoch throughput:
  apply per-document edits, one batched check, roll back violators.
  Dominated by the shared per-operation tree/journal work, so the ratio
  is informative but sits well under the check-phase speedup.

Decisions are pinned: both backends must produce bit-identical epoch
outcomes, the same running decision checksum and the same check
checksum — the cross-backend property CI's backend matrix relies on.
Without numpy the script still runs (big-int only), emits the
checksums, and omits the speedup entries; ``compare_reports`` treats
the absent ratios as informational, so a numpy-less environment can
still gate against the committed baseline's checksums.

Run:  PYTHONPATH=src python benchmarks/bench_fleet.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_fleet.json`` at the repo root by default.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro.masks import FleetEvaluator, available_backends, numpy_available
from repro.stream import AddLeaf, Move, RemoveSubtree
from repro.trees.node import fresh_id
from repro.workloads import FragmentSpec, random_constraints, random_tree

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]


def build_workload(docs: int, tree_size: int, n_constraints: int,
                   n_epochs: int, edit_fraction: float):
    """A seeded fleet plus its epoch traffic (identical for every backend).

    Epoch operations are drawn against the *base* trees, not a live
    replay: some will hit nodes an earlier epoch removed or reference a
    leaf a rejected epoch never created, which is exactly the
    structural-error traffic the fleet's per-document rollback handles.
    """
    rng = random.Random(SEED)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=n_constraints,
                                     types="mixed", spine=2)
    trees = [random_tree(rng, LABELS, size=tree_size) for _ in range(docs)]
    epochs = []
    for _ in range(n_epochs):
        batch = {}
        for d in rng.sample(range(docs), int(docs * edit_fraction)):
            tree = trees[d]
            nodes = list(tree.node_ids())
            nonroot = [n for n in nodes if n != tree.root]
            ops = []
            for _ in range(rng.randint(1, 2)):
                roll = rng.random()
                if roll < 0.55 or not nonroot:
                    ops.append(AddLeaf(rng.choice(nodes), rng.choice(LABELS),
                                       nid=fresh_id()))
                elif roll < 0.8:
                    ops.append(Move(rng.choice(nonroot), rng.choice(nodes)))
                else:
                    ops.append(RemoveSubtree(rng.choice(nonroot)))
            batch[d] = ops
        epochs.append(batch)
    return constraints, trees, epochs


def run_backend(backend: str, constraints, trees, epochs,
                rounds: int) -> dict:
    """Best-of-``rounds`` timings for one backend on the shared workload."""
    best_epochs = best_check = float("inf")
    decision_checksum = check_checksum = None
    for _ in range(rounds):
        fleet = FleetEvaluator(constraints, [t.copy() for t in trees],
                               backend=backend)
        fleet.check()  # settle baselines before the clock starts
        start = time.perf_counter()
        for batch in epochs:
            fleet.submit_epoch(batch)
        best_epochs = min(best_epochs, time.perf_counter() - start)
        for _ in range(3):
            start = time.perf_counter()
            report = fleet.check(force=True)
            best_check = min(best_check, time.perf_counter() - start)
        decision_checksum = fleet.checksum
        check_checksum = report.checksum
    return {"epochs_s": best_epochs, "check_s": best_check,
            "decision_checksum": decision_checksum,
            "check_checksum": check_checksum}


def bench_fleet(docs: int, tree_size: int, n_constraints: int,
                n_epochs: int, edit_fraction: float, rounds: int) -> dict:
    constraints, trees, epochs = build_workload(
        docs, tree_size, n_constraints, n_epochs, edit_fraction)
    edits = sum(len(ops) for batch in epochs for ops in batch.values())
    runs = {backend: run_backend(backend, constraints, trees, epochs, rounds)
            for backend in available_backends()}
    bigint = runs["bigint"]
    out = {
        "docs": docs,
        "tree_size": tree_size,
        "constraints": len(constraints),
        "epochs": n_epochs,
        "edits": edits,
        "backends": sorted(runs),
        "bigint_checks_per_sec": round(1.0 / bigint["check_s"], 1),
        "bigint_epoch_eps": round(edits / bigint["epochs_s"], 1),
        "decision_checksum": bigint["decision_checksum"],
        "check_checksum": bigint["check_checksum"],
    }
    numpy_run = runs.get("numpy")
    if numpy_run is not None:
        out.update({
            "numpy_checks_per_sec": round(1.0 / numpy_run["check_s"], 1),
            "numpy_epoch_eps": round(edits / numpy_run["epochs_s"], 1),
            # The gated ratio: the vectorized whole-fleet check.
            "speedup": round(bigint["check_s"] / numpy_run["check_s"], 2),
            # Reported only: shared per-op work dominates epoch latency.
            "epoch_ratio": round(bigint["epochs_s"] / numpy_run["epochs_s"],
                                 2),
            "decisions_match": (
                numpy_run["decision_checksum"] == bigint["decision_checksum"]
                and numpy_run["check_checksum"] == bigint["check_checksum"]),
        })
    return out


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_fleet.json")

    if smoke:
        fleet = bench_fleet(docs=120, tree_size=12, n_constraints=4,
                            n_epochs=2, edit_fraction=0.5, rounds=1)
        floors = {"fleet": 0.7}
    else:
        fleet = bench_fleet(docs=1000, tree_size=30, n_constraints=10,
                            n_epochs=4, edit_fraction=0.3, rounds=2)
        floors = {"fleet": 3.0}

    report = {
        "benchmark": "fleet mask backends: vectorized numpy vs big-int",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "numpy_available": numpy_available(),
        "fleet": fleet,
        "floors": floors,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"fleet   : {fleet['docs']} docs x {fleet['constraints']} "
          f"constraints, {fleet['epochs']} epochs / {fleet['edits']} edits")
    print(f"check   : bigint {fleet['bigint_checks_per_sec']:>7} /s | "
          f"numpy {fleet.get('numpy_checks_per_sec', '   n/a'):>9} /s | "
          f"x{fleet.get('speedup', '-')}")
    print(f"epochs  : bigint {fleet['bigint_epoch_eps']:>7} op/s | "
          f"numpy {fleet.get('numpy_epoch_eps', '   n/a'):>9} op/s | "
          f"x{fleet.get('epoch_ratio', '-')} (not gated)")
    print(f"wrote {out_path}")

    failures = []
    if "speedup" in fleet:
        if not fleet["decisions_match"]:
            failures.append("fleet decisions diverged between the numpy and "
                            "big-int backends")
        if fleet["speedup"] < floors["fleet"]:
            failures.append(f"fleet check speedup {fleet['speedup']} "
                            f"< floor {floors['fleet']}")
    else:
        print("numpy unavailable: speedup gate skipped (big-int checksums "
              "still compared)")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Indexed-kernel throughput: naive evaluation vs the TreeIndex fast path.

Two workloads, both checksummed so the two paths are provably answering
identically:

* **pattern evaluation** — a pool of concrete ``XP{/,[],//}`` patterns (the
  paper presents its results for concrete paths) evaluated as a repeated
  stream over one ~1k-node tree, the session workload bench_api models
  ("real traffic repeats itself"): the naive two-phase evaluator (re-walks
  subtrees per step) vs one :class:`IndexedEvaluator` snapshot (label-index
  seeding, interval containment, predicate + query memos shared across the
  whole stream).  The snapshot build is charged to the indexed path, and a
  ``distinct_only`` column isolates pure first-evaluation speedup from the
  memo's contribution.
* **instance implication** — a stream of distinct conclusions against one
  ``(C, J)``: the legacy one-shot ``implies_on`` (naive evaluation, no
  sharing) vs ``Reasoner(C).bind(J)`` (indexed snapshot + shared premise
  answer sets).

Run:  PYTHONPATH=src python benchmarks/bench_eval.py [output.json] [--smoke]

Emits ``BENCH_eval.json`` at the repo root by default.  Exits non-zero when
verdict/answer checksums diverge or a speedup floor is missed — ``--smoke``
(the CI mode) shrinks the workload and only enforces the  floors at 1.0x,
so a slow runner cannot flake the build while a real regression (indexed
slower than naive) still fails loudly.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from repro import Reasoner, implies_on
from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.workloads import FragmentSpec, random_constraints, random_pattern, random_tree
from repro.xpath import IndexedEvaluator
from repro.xpath.evaluator import evaluate_ids

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]


def timed(fn, queries: int, rounds: int) -> float:
    """Best-of-``rounds`` queries/sec for ``fn`` (runs the whole stream)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return queries / best


def answer_checksum(answer_sets) -> int:
    total = 0
    for ids in answer_sets:
        total = (total * 1_000_003 + hash(tuple(sorted(ids)))) % (2 ** 61)
    return total


def verdict_checksum(results) -> int:
    code = {"implied": 1, "not-implied": 2, "unknown": 0}
    total = 0
    for result in results:
        total = (total * 3 + code[result.answer.value]) % (2 ** 31)
    return total


def bench_eval(tree_size: int, pool_size: int, repeats: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    pool = [random_pattern(rng, LABELS, spec, spine=rng.randint(2, 4))
            for _ in range(pool_size)]
    stream = pool * repeats
    rng.shuffle(stream)

    naive_out, indexed_out = [], []

    def naive():
        naive_out.clear()
        naive_out.extend(evaluate_ids(p, tree) for p in stream)

    def indexed():
        indexed_out.clear()
        ctx = IndexedEvaluator.for_tree(tree)  # snapshot build charged here
        indexed_out.extend(ctx.evaluate_ids(p) for p in stream)

    def naive_distinct():
        for p in pool:
            evaluate_ids(p, tree)

    def indexed_distinct():
        ctx = IndexedEvaluator.for_tree(tree)
        for p in pool:
            ctx.evaluate_ids(p)

    naive_qps = timed(naive, len(stream), rounds)
    indexed_qps = timed(indexed, len(stream), rounds)
    naive_distinct_qps = timed(naive_distinct, len(pool), rounds)
    indexed_distinct_qps = timed(indexed_distinct, len(pool), rounds)
    naive_sum = answer_checksum(naive_out)
    indexed_sum = answer_checksum(indexed_out)
    return {
        "tree_size": tree.size,
        "distinct_patterns": len(pool),
        "queries": len(stream),
        "naive_qps": round(naive_qps, 1),
        "indexed_qps": round(indexed_qps, 1),
        "speedup": round(indexed_qps / naive_qps, 2),
        "distinct_only": {
            "naive_qps": round(naive_distinct_qps, 1),
            "indexed_qps": round(indexed_distinct_qps, 1),
            "speedup": round(indexed_distinct_qps / naive_distinct_qps, 2),
        },
        "answers_match": naive_sum == indexed_sum,
        "answer_checksum": naive_sum,
    }


def bench_instance(tree_size: int, pool_size: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS[:3], size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=True)
    premises = random_constraints(rng, LABELS[:3], spec, count=6,
                                  types="down", spine=2)
    conclusions = [
        UpdateConstraint(random_pattern(rng, LABELS[:3], spec, spine=2),
                         ConstraintType.NO_INSERT)
        for _ in range(pool_size)
    ]

    legacy_out, bound_out = [], []

    def legacy():
        legacy_out.clear()
        legacy_out.extend(implies_on(premises, tree, c) for c in conclusions)

    def bound():
        bound_out.clear()
        session = Reasoner(premises).bind(tree)  # snapshot charged here
        bound_out.extend(session.implies_on(c) for c in conclusions)

    legacy_qps = timed(legacy, len(conclusions), rounds)
    bound_qps = timed(bound, len(conclusions), rounds)
    legacy_sum = verdict_checksum(legacy_out)
    bound_sum = verdict_checksum(bound_out)
    return {
        "tree_size": tree.size,
        "conclusions": len(conclusions),
        "premises": len(premises),
        "legacy_qps": round(legacy_qps, 2),
        "bound_qps": round(bound_qps, 2),
        "speedup": round(bound_qps / legacy_qps, 2),
        "verdicts_match": legacy_sum == bound_sum,
        "verdict_checksum": legacy_sum,
    }


def main() -> None:
    args = [a for a in sys.argv[1:]]
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_eval.json")

    if smoke:
        eval_row = bench_eval(tree_size=300, pool_size=10, repeats=3, rounds=2)
        instance_row = bench_instance(tree_size=60, pool_size=8, rounds=2)
        eval_floor, instance_floor = 1.0, 1.0
    else:
        eval_row = bench_eval(tree_size=1000, pool_size=20, repeats=5, rounds=3)
        instance_row = bench_instance(tree_size=150, pool_size=15, rounds=3)
        eval_floor, instance_floor = 10.0, 3.0

    report = {
        "benchmark": "indexed tree kernel: naive vs TreeIndex evaluation",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "pattern_evaluation": eval_row,
        "instance_implication": instance_row,
        "floors": {"pattern_evaluation": eval_floor,
                   "instance_implication": instance_floor},
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"eval    : naive {eval_row['naive_qps']:>9} q/s | "
          f"indexed {eval_row['indexed_qps']:>9} q/s | x{eval_row['speedup']}")
    print(f"instance: legacy {instance_row['legacy_qps']:>8} q/s | "
          f"bound   {instance_row['bound_qps']:>9} q/s | x{instance_row['speedup']}")
    print(f"wrote {out_path}")

    failures = []
    if not eval_row["answers_match"]:
        failures.append("pattern-evaluation answer sets diverged")
    if not instance_row["verdicts_match"]:
        failures.append("instance-implication verdicts diverged")
    if eval_row["speedup"] < eval_floor:
        failures.append(f"pattern-evaluation speedup {eval_row['speedup']} "
                        f"< floor {eval_floor}")
    if instance_row["speedup"] < instance_floor:
        failures.append(f"instance-implication speedup {instance_row['speedup']} "
                        f"< floor {instance_floor}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

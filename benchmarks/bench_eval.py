"""Evaluation-kernel throughput: naive vs indexed vs set-at-a-time bitset.

Four workloads, all checksummed so the competing paths are provably
answering identically:

* **pattern evaluation** — a pool of concrete ``XP{/,[],//}`` patterns
  evaluated as a repeated stream over one ~1k-node tree: the naive
  two-phase evaluator vs one :class:`IndexedEvaluator` snapshot (the PR-2
  baseline pair, kept for trajectory continuity).  The snapshot build is
  charged to the indexed path; ``distinct_only`` isolates the cold-memo
  speedup from the memo's contribution.
* **bitset distinct (cold memo)** — the set-at-a-time layer's acceptance
  workload: one shared :class:`TreeIndex` snapshot of a ~2k-node tree, a
  pool of full-fragment ``XP{/,[],//,*}`` patterns with nested predicates,
  and per-round *fresh* evaluators (all query/predicate memos cold).
  Node-at-a-time indexed vs whole-frontier bitset masks, same answers.
* **instance implication** — a stream of distinct all-``↓`` conclusions
  against one ``(C, J)``: legacy one-shot ``implies_on`` vs
  ``Reasoner(C).bind(J)`` (bitset snapshot + shared premise answer sets).
* **instance implication with search** — mixed-type premises whose
  conclusions drive the bounded refutation search (including exhausted
  budgets -> UNKNOWN), asked as a production-style repeated stream:
  legacy one-shot vs a bound session.

Run:  PYTHONPATH=src python benchmarks/bench_eval.py [output.json]
          [--smoke] [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_eval.json`` at the repo root by default.  Exits non-zero when
verdict/answer checksums diverge or a speedup floor is missed — ``--smoke``
(the quick CI mode) shrinks the workload and relaxes the floors so a slow
runner cannot flake the build while a real regression still fails loudly.
``--compare`` additionally gates every tracked ratio of the fresh run
against a committed baseline (>20% regression fails, see
``bench_helpers.compare_reports``); run it in the baseline's mode.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro import Reasoner, implies_on
from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.trees.index import TreeIndex
from repro.workloads import FragmentSpec, random_constraints, random_pattern, random_tree
from repro.xpath import BitsetEvaluator, IndexedEvaluator
from repro.xpath.evaluator import evaluate_ids

SEED = 20070611  # PODS 2007
LABELS = [f"l{i}" for i in range(8)]


def timed(fn, queries: int, rounds: int) -> float:
    """Best-of-``rounds`` queries/sec for ``fn`` (runs the whole stream)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return queries / best


def answer_checksum(answer_sets) -> int:
    total = 0
    for ids in answer_sets:
        total = (total * 1_000_003 + hash(tuple(sorted(ids)))) % (2 ** 61)
    return total


def verdict_checksum(results) -> int:
    code = {"implied": 1, "not-implied": 2, "unknown": 0}
    total = 0
    for result in results:
        total = (total * 3 + code[result.answer.value]) % (2 ** 31)
    return total


def bench_eval(tree_size: int, pool_size: int, repeats: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    pool = [random_pattern(rng, LABELS, spec, spine=rng.randint(2, 4))
            for _ in range(pool_size)]
    stream = pool * repeats
    rng.shuffle(stream)

    naive_out, indexed_out = [], []

    def naive():
        naive_out.clear()
        naive_out.extend(evaluate_ids(p, tree) for p in stream)

    def indexed():
        indexed_out.clear()
        ctx = IndexedEvaluator.for_tree(tree)  # snapshot build charged here
        indexed_out.extend(ctx.evaluate_ids(p) for p in stream)

    def naive_distinct():
        for p in pool:
            evaluate_ids(p, tree)

    def indexed_distinct():
        ctx = IndexedEvaluator.for_tree(tree)
        for p in pool:
            ctx.evaluate_ids(p)

    naive_qps = timed(naive, len(stream), rounds)
    indexed_qps = timed(indexed, len(stream), rounds)
    naive_distinct_qps = timed(naive_distinct, len(pool), rounds)
    indexed_distinct_qps = timed(indexed_distinct, len(pool), rounds)
    naive_sum = answer_checksum(naive_out)
    indexed_sum = answer_checksum(indexed_out)
    return {
        "tree_size": tree.size,
        "distinct_patterns": len(pool),
        "queries": len(stream),
        "naive_qps": round(naive_qps, 1),
        "indexed_qps": round(indexed_qps, 1),
        "speedup": round(indexed_qps / naive_qps, 2),
        "distinct_only": {
            "naive_qps": round(naive_distinct_qps, 1),
            "indexed_qps": round(indexed_distinct_qps, 1),
            "speedup": round(indexed_distinct_qps / naive_distinct_qps, 2),
        },
        "answers_match": naive_sum == indexed_sum,
        "answer_checksum": naive_sum,
    }


def bench_bitset(tree_size: int, pool_size: int, rounds: int) -> dict:
    """Node-at-a-time indexed vs bitset masks, cold evaluator memos.

    One shared :class:`TreeIndex` (its structural facts — label buckets,
    parent-slot table, children masks — are snapshot properties either
    path may warm); every round constructs a fresh evaluator, so all
    query/predicate memos start cold.  The pool uses the paper's full
    fragment with nested predicates: the workload where per-(predicate,
    node) checking is the indexed path's remaining cost.
    """
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS, size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=True)
    pool = [random_pattern(rng, LABELS, spec, spine=rng.randint(2, 4),
                           pred_prob=0.7, max_pred_depth=3)
            for _ in range(pool_size)]
    snapshot = TreeIndex(tree)

    naive_out, indexed_out, bitset_out = [], [], []

    def naive():
        naive_out.clear()
        naive_out.extend(evaluate_ids(p, tree) for p in pool)

    def indexed_cold():
        indexed_out.clear()
        ctx = IndexedEvaluator(snapshot)
        indexed_out.extend(ctx.evaluate_ids(p) for p in pool)

    def bitset_cold():
        bitset_out.clear()
        ctx = BitsetEvaluator(snapshot)
        bitset_out.extend(ctx.evaluate_ids(p) for p in pool)

    naive_qps = timed(naive, len(pool), max(1, rounds - 1))
    indexed_qps = timed(indexed_cold, len(pool), rounds)
    bitset_qps = timed(bitset_cold, len(pool), rounds)
    sums = {answer_checksum(out) for out in (naive_out, indexed_out, bitset_out)}
    return {
        "tree_size": tree.size,
        "distinct_patterns": len(pool),
        "naive_qps": round(naive_qps, 1),
        "indexed_qps": round(indexed_qps, 1),
        "bitset_qps": round(bitset_qps, 1),
        "speedup": round(bitset_qps / indexed_qps, 2),  # bitset vs indexed
        "speedup_vs_naive": round(bitset_qps / naive_qps, 2),
        "answers_match": len(sums) == 1,
        "answer_checksum": answer_checksum(bitset_out),
    }


def bench_instance(tree_size: int, pool_size: int, rounds: int) -> dict:
    rng = random.Random(SEED)
    tree = random_tree(rng, LABELS[:3], size=tree_size)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=True)
    premises = random_constraints(rng, LABELS[:3], spec, count=6,
                                  types="down", spine=2)
    conclusions = [
        UpdateConstraint(random_pattern(rng, LABELS[:3], spec, spine=2),
                         ConstraintType.NO_INSERT)
        for _ in range(pool_size)
    ]

    legacy_out, bound_out = [], []

    def legacy():
        legacy_out.clear()
        legacy_out.extend(implies_on(premises, tree, c) for c in conclusions)

    def bound():
        bound_out.clear()
        session = Reasoner(premises).bind(tree)  # snapshot charged here
        bound_out.extend(session.implies_on(c) for c in conclusions)

    legacy_qps = timed(legacy, len(conclusions), rounds)
    bound_qps = timed(bound, len(conclusions), rounds)
    legacy_sum = verdict_checksum(legacy_out)
    bound_sum = verdict_checksum(bound_out)
    return {
        "tree_size": tree.size,
        "conclusions": len(conclusions),
        "premises": len(premises),
        "legacy_qps": round(legacy_qps, 2),
        "bound_qps": round(bound_qps, 2),
        "speedup": round(bound_qps / legacy_qps, 2),
        "verdicts_match": legacy_sum == bound_sum,
        "verdict_checksum": legacy_sum,
    }


def bench_search(tree_size: int, pool_size: int, repeats: int,
                 rounds: int, budget: int) -> dict:
    """Mixed-type instance implication with the refutation search engaged.

    The workload seed is advanced until the pool contains conclusions the
    hybrid dispatch can only answer UNKNOWN (the search runs its whole
    budget), then the pool is asked as a repeated stream — the production
    shape the bound session's result memo and shared premise answers are
    built for.
    """
    spec = FragmentSpec(predicates=True, descendant=False, wildcard=False)
    for attempt in range(64):
        rng = random.Random(SEED + attempt)
        tree = random_tree(rng, LABELS[:3], size=tree_size)
        premises = random_constraints(rng, LABELS[:3], spec, count=4,
                                      types="mixed", spine=2)
        pool = [UpdateConstraint(random_pattern(rng, LABELS[:3], spec, spine=2),
                                 rng.choice(list(ConstraintType)))
                for _ in range(pool_size)]
        probe = [implies_on(premises, tree, c, max_moves=1,
                            search_budget=budget) for c in pool]
        if sum(r.is_unknown for r in probe) >= 2:
            break
    stream = pool * repeats
    rng.shuffle(stream)

    legacy_out, bound_out = [], []

    def legacy():
        legacy_out.clear()
        legacy_out.extend(implies_on(premises, tree, c, max_moves=1,
                                     search_budget=budget) for c in stream)

    def bound():
        bound_out.clear()
        session = Reasoner(premises).bind(tree)
        bound_out.extend(session.implies_on(c, max_moves=1,
                                            search_budget=budget)
                         for c in stream)

    legacy_qps = timed(legacy, len(stream), rounds)
    bound_qps = timed(bound, len(stream), rounds)
    legacy_sum = verdict_checksum(legacy_out)
    bound_sum = verdict_checksum(bound_out)
    return {
        "tree_size": tree.size,
        "queries": len(stream),
        "distinct_conclusions": len(pool),
        "unknown_verdicts": sum(r.is_unknown for r in probe),
        "search_budget": budget,
        "legacy_qps": round(legacy_qps, 2),
        "bound_qps": round(bound_qps, 2),
        "speedup": round(bound_qps / legacy_qps, 2),
        "verdicts_match": legacy_sum == bound_sum,
        "verdict_checksum": legacy_sum,
    }


def main() -> None:
    args = list(sys.argv[1:])
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_eval.json")

    if smoke:
        eval_row = bench_eval(tree_size=300, pool_size=10, repeats=3, rounds=2)
        bitset_row = bench_bitset(tree_size=300, pool_size=10, rounds=2)
        instance_row = bench_instance(tree_size=60, pool_size=8, rounds=2)
        search_row = bench_search(tree_size=40, pool_size=6, repeats=2,
                                  rounds=2, budget=150)
        floors = {"pattern_evaluation": 1.0, "bitset": 0.7,
                  "instance_implication": 1.0, "instance_search": 1.0}
    else:
        eval_row = bench_eval(tree_size=1000, pool_size=20, repeats=5, rounds=3)
        bitset_row = bench_bitset(tree_size=2000, pool_size=30, rounds=5)
        instance_row = bench_instance(tree_size=150, pool_size=15, rounds=3)
        search_row = bench_search(tree_size=60, pool_size=8, repeats=3,
                                  rounds=3, budget=300)
        floors = {"pattern_evaluation": 10.0, "bitset": 1.7,
                  "instance_implication": 3.0, "instance_search": 1.5}

    report = {
        "benchmark": "evaluation kernel: naive vs indexed vs bitset",
        "seed": SEED,
        "mode": "smoke" if smoke else "full",
        "pattern_evaluation": eval_row,
        "bitset": bitset_row,
        "instance_implication": instance_row,
        "instance_search": search_row,
        "floors": floors,
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    print(f"eval    : naive {eval_row['naive_qps']:>9} q/s | "
          f"indexed {eval_row['indexed_qps']:>9} q/s | x{eval_row['speedup']}")
    print(f"bitset  : indexed {bitset_row['indexed_qps']:>7} q/s | "
          f"bitset  {bitset_row['bitset_qps']:>9} q/s | x{bitset_row['speedup']}"
          f" (x{bitset_row['speedup_vs_naive']} vs naive)")
    print(f"instance: legacy {instance_row['legacy_qps']:>8} q/s | "
          f"bound   {instance_row['bound_qps']:>9} q/s | x{instance_row['speedup']}")
    print(f"search  : legacy {search_row['legacy_qps']:>8} q/s | "
          f"bound   {search_row['bound_qps']:>9} q/s | x{search_row['speedup']}")
    print(f"wrote {out_path}")

    failures = []
    if not eval_row["answers_match"]:
        failures.append("pattern-evaluation answer sets diverged")
    if not bitset_row["answers_match"]:
        failures.append("bitset answer sets diverged from naive/indexed")
    if not instance_row["verdicts_match"]:
        failures.append("instance-implication verdicts diverged")
    if not search_row["verdicts_match"]:
        failures.append("search-enabled instance verdicts diverged")
    checks = (("pattern_evaluation", eval_row), ("bitset", bitset_row),
              ("instance_implication", instance_row),
              ("instance_search", search_row))
    for name, row in checks:
        if row["speedup"] < floors[name]:
            failures.append(f"{name} speedup {row['speedup']} "
                            f"< floor {floors[name]}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("mode") != report["mode"]:
            failures.append(f"--compare mode mismatch: baseline is "
                            f"{baseline.get('mode')!r}, this run is "
                            f"{report['mode']!r}")
        else:
            failures.extend(compare_reports(report, baseline, tolerance))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

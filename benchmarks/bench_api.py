"""Repeated-query throughput: legacy free functions vs the compiled Reasoner.

Models the production traffic pattern the session API exists for: one
stable constraint set ``C``, a stream of conclusions drawn from a finite
query pool (real traffic repeats itself).  The legacy path pays the full
per-call analysis every time; ``Reasoner(C)`` compiles once and serves
repeats from its canonical-form memo.

Run:  PYTHONPATH=src python benchmarks/bench_api.py [output.json]
          [--compare BASELINE.json] [--tolerance 0.2]

Emits ``BENCH_api.json`` (at the repo root by default) with queries/sec
for both paths and the resulting speedup, for the general (Table 1) and
the instance-based (Table 2) problem, plus a distinct-only column so the
memo's contribution is visible separately from the compile-once savings.
``--compare`` gates every tracked ratio of the fresh run against a
committed baseline (>20% regression fails) and every checksum against
drift — the CI benchmark-regression gate.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from bench_helpers import compare_reports
from repro import Reasoner, implies, implies_on
from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.workloads import FragmentSpec, random_constraints, random_pattern, random_tree

LABELS = ["a", "b", "c"]
SEED = 20070611  # PODS 2007
POOL_SIZE = 25          # distinct conclusions in the pool
REPEATS = 5             # times each pool entry appears in the stream
ROUNDS = 3              # timing rounds; best-of is reported


def build_workload():
    rng = random.Random(SEED)
    spec = FragmentSpec(predicates=True, descendant=False, wildcard=True)
    premises = random_constraints(rng, LABELS, spec, count=6, types="mixed",
                                  spine=2)
    pool = []
    while len(pool) < POOL_SIZE:
        kind = rng.choice(list(ConstraintType))
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=2), kind)
        pool.append(conclusion)
    stream = pool * REPEATS
    rng.shuffle(stream)
    tree = random_tree(rng, LABELS, size=12)
    return premises, pool, stream, tree


def timed(fn, queries: int) -> float:
    """Best-of-ROUNDS queries/sec for ``fn`` (which runs the whole stream)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return queries / best


def checksum(results) -> int:
    code = {"implied": 1, "not-implied": 2, "unknown": 0}
    total = 0
    for result in results:
        total = (total * 3 + code[result.answer.value]) % (2 ** 31)
    return total


def bench_general(premises, pool, stream):
    legacy_out, session_out = [], []

    def legacy():
        legacy_out.clear()
        legacy_out.extend(implies(premises, c) for c in stream)

    def session():
        session_out.clear()
        reasoner = Reasoner(premises)  # compile cost charged to this path
        session_out.extend(reasoner.implies(c) for c in stream)

    def session_distinct():
        reasoner = Reasoner(premises)
        for c in pool:
            reasoner.implies(c)

    legacy_qps = timed(legacy, len(stream))
    session_qps = timed(session, len(stream))
    distinct_qps = timed(session_distinct, len(pool))
    assert checksum(legacy_out) == checksum(session_out), "verdicts diverged"
    return {
        "queries": len(stream),
        "distinct_conclusions": len(pool),
        "legacy_qps": round(legacy_qps, 1),
        "reasoner_qps": round(session_qps, 1),
        "reasoner_distinct_only_qps": round(distinct_qps, 1),
        "speedup": round(session_qps / legacy_qps, 2),
        "verdict_checksum": checksum(legacy_out),
    }


def bench_instance(premises, pool, stream, tree):
    legacy_out, session_out = [], []

    def legacy():
        legacy_out.clear()
        legacy_out.extend(implies_on(premises, tree, c) for c in stream)

    def session():
        session_out.clear()
        bound = Reasoner(premises).bind(tree)
        session_out.extend(bound.implies_on(c) for c in stream)

    legacy_qps = timed(legacy, len(stream))
    session_qps = timed(session, len(stream))
    assert checksum(legacy_out) == checksum(session_out), "verdicts diverged"
    return {
        "queries": len(stream),
        "tree_size": tree.size,
        "legacy_qps": round(legacy_qps, 1),
        "reasoner_qps": round(session_qps, 1),
        "speedup": round(session_qps / legacy_qps, 2),
        "verdict_checksum": checksum(legacy_out),
    }


def main() -> None:
    args = list(sys.argv[1:])
    baseline_path = None
    if "--compare" in args:
        at = args.index("--compare")
        baseline_path = Path(args[at + 1])
        del args[at:at + 2]
    tolerance = 0.20
    if "--tolerance" in args:
        at = args.index("--tolerance")
        tolerance = float(args[at + 1])
        del args[at:at + 2]
    out_path = (Path(args[0]) if args
                else Path(__file__).resolve().parent.parent / "BENCH_api.json")
    premises, pool, stream, tree = build_workload()
    report = {
        "benchmark": "session-api repeated-query throughput",
        "seed": SEED,
        "constraints": [str(c) for c in premises],
        "general": bench_general(premises, pool, stream),
        "instance": bench_instance(premises, pool, stream, tree),
    }
    out_path.write_text(json.dumps(report, indent=2, ensure_ascii=False) + "\n")
    general, instance = report["general"], report["instance"]
    print(f"general : legacy {general['legacy_qps']:>8} q/s | "
          f"reasoner {general['reasoner_qps']:>8} q/s | "
          f"x{general['speedup']}")
    print(f"instance: legacy {instance['legacy_qps']:>8} q/s | "
          f"reasoner {instance['reasoner_qps']:>8} q/s | "
          f"x{instance['speedup']}")
    print(f"wrote {out_path}")
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        failures = compare_reports(report, baseline, tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Session API tour: compile once, query many times.

A hospital publishes the Example 2.1 access-control policy and then has to
answer a steady stream of audit questions against it — the workload the
compiled `Reasoner` exists for.

Run:  PYTHONPATH=src python examples/session_api.py
"""

from repro import Reasoner, branch, build, constraint_set, no_insert, no_remove

# ----------------------------------------------------------------------
# 1. Compile the policy once.
# ----------------------------------------------------------------------
policy = constraint_set(
    ("/patient[/visit]", "down"),           # visited patients may only vanish
    ("/patient[/clinicalTrial]", "up"),     # trial patients are immutable...
    ("/patient[/clinicalTrial]", "down"),   # ...in both directions
    ("/patient/visit", "up"),               # visits are never deleted
)
reasoner = Reasoner(policy)
print(f"compiled: {reasoner!r}")
print(f"fragment {reasoner.fragment.name}, labels {sorted(reasoner.labels)}")

# ----------------------------------------------------------------------
# 2. A batch of audit questions (Table 1: general implication).
# ----------------------------------------------------------------------
questions = [
    no_insert("/patient[/visit][/clinicalTrial]"),   # Example 2.1's query
    no_remove("/patient[/clinicalTrial]/visit"),
    no_insert("/patient"),
]
report = reasoner.implies_all(questions)
print(f"\nbatch: {report.summary()}")
for conclusion, result in report:
    print(f"  {conclusion}: {result.answer.value} [{result.engine}]")

# Asking again is served from the canonical-form memo:
reasoner.implies(no_insert("/patient[/clinicalTrial][/visit]"))  # permuted!
print(f"after re-ask: {reasoner.stats}")

# ----------------------------------------------------------------------
# 3. Bind the current document for Table 2 questions.
# ----------------------------------------------------------------------
current = build(
    branch("patient", branch("visit"), branch("clinicalTrial")),
    branch("patient", branch("visit")),
)
bound = reasoner.bind(current)
verdict = bound.implies_on(no_insert("/patient[/visit]"))
print(f"\non the current document: {verdict}")
print(f"bound session: {bound!r}")

"""Constraint-set design with the implication engines.

A data owner drafting an exchange contract wants (a) to know what their
constraints already entail — redundant rules can be dropped before signing
keys are provisioned — and (b) to check intended guarantees.  Both are the
*general implication* problem (Definition 2.4).

The script also demonstrates the paper's subtler phenomena: the same-type
property (Theorem 4.1) and its failure with descendant axes (Example 4.1).

Run:  python examples/constraint_design.py
"""

from repro import ConstraintSet, constraint_set, implies, no_insert, no_remove

# ----------------------------------------------------------------------
# 1. Minimising a drafted contract.
# ----------------------------------------------------------------------
draft = constraint_set(
    ("/order[/paid]", "down"),
    ("/order[/shipped]", "down"),
    ("/order[/paid][/shipped]", "down"),     # redundant: implied by the two above
    ("/order/item", "up"),
    ("/order[/paid]/item", "up"),            # NOT redundant (scoped differently)
)

print("Redundancy analysis of the drafted contract:")
kept = []
for index, candidate in enumerate(draft):
    others = ConstraintSet(c for j, c in enumerate(draft) if j != index)
    verdict = implies(others, candidate)
    status = "redundant" if verdict.is_implied else "kept"
    print(f"  {candidate}: {status}")
    if not verdict.is_implied:
        kept.append(candidate)
minimal = ConstraintSet(kept)
print(f"Minimal contract has {len(minimal)} of {len(draft)} constraints.")

# ----------------------------------------------------------------------
# 2. Checking intended guarantees before publishing.
# ----------------------------------------------------------------------
print("\nIntended guarantees:")
goals = [
    no_insert("/order[/paid][/shipped][/archived]"),
    no_remove("/order/item"),
    no_remove("/order[/paid]"),
]
for goal in goals:
    verdict = implies(minimal, goal)
    print(f"  {goal}: {verdict.answer.value}  ({verdict.engine})")

# ----------------------------------------------------------------------
# 3. Theorem 4.1 in action: without '//', opposite types never help.
# ----------------------------------------------------------------------
mixed = constraint_set(("/a[/b]", "down"), ("/a[/c]", "down"), ("/x", "up"))
goal = no_insert("/a[/b][/c]")
with_up = implies(mixed, goal)
without_up = implies(mixed.no_insert, goal)
print("\nSame-type property (Theorem 4.1, child-only fragment):")
print(f"  full set:      {with_up.answer.value}")
print(f"  ↓-subset only: {without_up.answer.value}")
assert with_up.answer == without_up.answer

# ----------------------------------------------------------------------
# 4. ...and its failure with descendant axes (Example 4.1).
# ----------------------------------------------------------------------
example41 = constraint_set(
    ("//a//c", "up"), ("//b//c", "up"), ("//a//b//c", "down"),
    ("//a//b//a//c", "up"), ("//b//a//b//c", "up"),
)
goal41 = no_remove("//b//a//c")
full = implies(example41, goal41)
up_only = implies(example41.no_remove, goal41)
print("\nExample 4.1 (descendant axes, mixed types):")
print(f"  full set:      {full.answer.value}   [{full.engine}]")
print(f"  ↑-subset only: {up_only.answer.value}")
assert full.is_implied and up_only.is_refuted
print("  -> the no-insert constraint is load-bearing: the same-type "
      "property fails once '//' is allowed.")

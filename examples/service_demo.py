"""One service session: register documents, enforce async, batch queries.

A hospital fleet behind one :class:`~repro.service.service.
ConstraintService`: two ward documents and one policy are registered
once, an update log is enforced through the ``asyncio`` front end with
awaitable per-op decisions (per-document ordering, cross-document
interleaving), and a batched implication query answers schema-evolution
questions against the same compiled constraint set — all through the
JSON-serialisable request protocol a network front end would speak.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import asyncio
import json

from repro import AsyncService
from repro.constraints import no_insert
from repro.service import ImplicationQuery, StreamSubmit
from repro.stream import AddLeaf, Begin, Commit, RemoveSubtree
from repro.trees import branch, build

POLICY = [
    ("/patient[/visit]", "down"),           # visits cannot be back-dated
    ("/patient[/clinicalTrial]", "up"),     # trial enrolment is permanent
    ("/patient[/clinicalTrial]", "down"),
    ("//prescription", "up"),               # prescriptions are append-only
]


def ward_a():
    return build(
        branch("patient",
               branch("clinicalTrial", nid=101),
               branch("visit", branch("prescription", nid=103), nid=102),
               nid=100))


def ward_b():
    return build(branch("patient", branch("visit", nid=202), nid=200))


async def main() -> None:
    async with AsyncService() as svc:
        # -- register once: names, not objects, cross the wire ----------
        await svc.register_constraints("hospital-policy", POLICY)
        await svc.register_document("ward-a", ward_a())
        await svc.register_document("ward-b", ward_b())

        # -- async enforcement: pipelined, per-document ordered ---------
        log_a = [
            AddLeaf(102, "prescription", nid=110),   # fine: append-only grows
            RemoveSubtree(103),                      # rejected: prescription
            Begin(),                                 # an all-or-nothing bracket
            AddLeaf(100, "visit", nid=111),
            RemoveSubtree(101),                      # breaks trial permanence
            Commit(),                                # -> whole bracket undone
        ]
        log_b = [AddLeaf(200, "visit", nid=210)]
        futures = [svc.submit(StreamSubmit("ward-a", "hospital-policy",
                                           (op,))) for op in log_a]
        futures += [svc.submit(StreamSubmit("ward-b", "hospital-policy",
                                            (op,))) for op in log_b]
        replies = await asyncio.gather(*futures)

        print("== async enforcement (ward-a then ward-b) ==")
        for reply in replies:
            for decision in reply.decisions:
                verdict = "ok " if decision.accepted else "REJ"
                note = decision.note or "; ".join(
                    str(v.constraint) for v in decision.violations)
                print(f"  [{verdict}] {decision.op}  {note}")

        # -- batched implication against the same compiled set ----------
        query = ImplicationQuery("hospital-policy", (
            no_insert("/patient[/visit][/clinicalTrial]"),
            no_insert("/patient"),
        ))
        answers = await svc.submit(query)
        print("\n== batched implication ==")
        for conclusion, verdict in zip(query.conclusions, answers.verdicts, strict=True):
            print(f"  {conclusion}: {verdict.answer} [{verdict.engine}]")

        # -- the whole exchange is JSON on the wire ---------------------
        print("\n== the same query as its wire form ==")
        print(json.dumps(query.to_dict(), indent=2)[:250], "...")


if __name__ == "__main__":
    asyncio.run(main())

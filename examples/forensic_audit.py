"""Forensic audit: reasoning about the past of a received document.

A hospital receives a medical record governed by update constraints and
must answer audit questions of the form "could X have happened?" — the
instance-based implication problem (Section 5), including the certain-facts
instance F_J of Theorem 5.3 as an explicit artifact.

Run:  python examples/forensic_audit.py
"""

from repro import branch, build, constraint_set, implies_on, no_insert, no_remove
from repro.instance import build_certain_facts

# The record as received (the current instance J).
current = build(
    branch("patient",
           branch("id1"),
           branch("clinicalTrial"),
           branch("visit", branch("prescription"))),
    branch("patient",
           branch("id2"),
           branch("visit")),
)

# The governance contract under which the record travelled.
contract = constraint_set(
    ("/patient", "down"),                      # no new patients
    ("/patient[/clinicalTrial]", "down"),      # no new trial memberships
    ("/patient[/clinicalTrial]", "up"),        # ... and none dropped
    ("//prescription", "down"),                # prescriptions never invented
    ("/patient/visit", "up"),                  # visits are never lost
)

print("Received record:")
print(current.pretty(show_ids=False))

print("\nAudit questions (instance-based implication):")
questions = [
    ("no patient was added in transit", no_insert("/patient")),
    ("no prescription was planted", no_insert("//prescription")),
    ("no visit of a trial patient was planted",
     no_insert("/patient[/clinicalTrial]/visit")),
    ("no visit was dropped anywhere", no_remove("/patient/visit")),
    ("trial membership unchanged", no_insert("/patient[/clinicalTrial]")),
]
for description, question in questions:
    verdict = implies_on(contract.of_type(question.type), current, question)
    answer = "GUARANTEED" if verdict.is_implied else "cannot be ruled out"
    print(f"  {description}: {answer}")
    if verdict.is_refuted and verdict.counterexample is not None:
        past = verdict.counterexample.before
        print("    a legal past that breaks it:")
        for line in past.pretty(show_ids=False).splitlines():
            print(f"      {line}")

# ----------------------------------------------------------------------
# The certain-facts instance F_J (Theorem 5.3) as a tangible artifact.
# F_J is defined on the child-only fragment, so restrict to those rules.
# ----------------------------------------------------------------------
from repro import ConstraintSet
from repro.xpath import is_child_only

down_contract = ConstraintSet(
    c for c in contract.no_insert if is_child_only(c.range))
facts = build_certain_facts(down_contract, current)
print("\nCertain-facts instance F_J (every legal past embeds it):")
print(facts.pretty(show_ids=False))

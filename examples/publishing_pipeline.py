"""Figure 1: Source → Broker → User exchange under update constraints.

The Source publishes a product catalogue with update constraints attached
(the kind enforceable with the digital-signature schemes cited by the
paper).  The Broker edits the document; the User receives the final version
and audits it, without any update log, in two ways:

* the validity check — did the Broker stay within the rules?
* instance-based reasoning — which integrity facts survive *any* legal
  broker (Definition 2.5)?

Run:  python examples/publishing_pipeline.py
"""

from repro import (
    branch,
    build,
    constraint_set,
    explain_violations,
    implies_on,
    no_insert,
    no_remove,
)

# ----------------------------------------------------------------------
# The Source's catalogue and its exchange contract C.
# ----------------------------------------------------------------------
source_doc = build(
    branch("product",
           branch("name"), branch("price", nid=501),
           branch("contact", branch("phone", nid=502))),
    branch("product",
           branch("name"), branch("price", nid=503), branch("certified")),
    branch("ads"),
)

contract = constraint_set(
    # Certified products can never be invented after the fact...
    ("/product[/certified]", "down"),
    # ... nor dropped.
    ("/product[/certified]", "up"),
    # Prices may be removed but never introduced or swapped in.
    ("//price", "down"),
    # Private phone numbers may be filtered out, not planted.
    ("//phone", "down"),
    # Advertisement areas may only grow.
    ("/ads/ad", "up"),
)

print("Source publishes:")
print(source_doc.pretty(show_ids=False))

# ----------------------------------------------------------------------
# A well-behaved broker: removes a phone number, adds two ads.
# ----------------------------------------------------------------------
good_copy = source_doc.copy()
good_copy.remove_subtree(502)
ads_node = next(n.nid for n in good_copy.nodes() if n.label == "ads")
good_copy.add_child(ads_node, "ad")
good_copy.add_child(ads_node, "ad")

violations = explain_violations(source_doc, good_copy, contract)
print(f"\nHonest broker: {len(violations)} violation(s) — document accepted.")
assert not violations

# ----------------------------------------------------------------------
# A dishonest broker: replaces a price with a new one.
# ----------------------------------------------------------------------
bad_copy = source_doc.copy()
price_parent = bad_copy.parent(501)
bad_copy.remove_subtree(501)
bad_copy.add_child(price_parent, "price")  # fresh node = a *new* price

violations = explain_violations(source_doc, bad_copy, contract)
print(f"\nTampering broker: {len(violations)} violation(s):")
for violation in violations:
    print(f"  {violation}")
assert violations

# ----------------------------------------------------------------------
# The User's audit: what can be trusted about the received document?
# ----------------------------------------------------------------------
received = good_copy
print("\nUser-side audit of the received document (no update log!):")
questions = [
    ("no certified product was planted",
     no_insert("/product[/certified]")),
    ("no price on a certified product was planted",
     no_insert("/product[/certified]/price")),
    ("every visible price was in the original",
     no_insert("//price")),
    ("the original ads were kept",
     no_remove("/ads/ad")),
]
for description, question in questions:
    verdict = implies_on(contract, received, question)
    mark = {True: "GUARANTEED", False: "not guaranteed"}.get(
        verdict.is_implied, "undetermined")
    if verdict.is_refuted:
        mark = "not guaranteed (counterexample past exists)"
    print(f"  {description}: {mark}")

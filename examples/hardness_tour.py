"""A tour of the paper's hardness machinery.

1. Theorem 5.2's reduction: SAT as a question about a document's past.
2. Theorem 4.6's reduction: SAT as a question about legal shuffles of a path.
3. Example 3.3: the chase that never stops, next to engines that do.

Run:  python examples/hardness_tour.py
"""

from repro.constraints import constraint_set, no_remove
from repro.constraints.validity import is_valid, violation_of
from repro.reductions import (
    EXAMPLE_SAT,
    EXAMPLE_UNSAT,
    build_problem,
    pair_from_assignment,
    past_from_assignment,
    theorem_52_problem,
)
from repro.xic import chase_implication

# ----------------------------------------------------------------------
# 1. Theorem 5.2 — is this document's past a satisfying assignment?
# ----------------------------------------------------------------------
print(f"Formula (satisfiable): {EXAMPLE_SAT}")
problem = theorem_52_problem(EXAMPLE_SAT)
print(f"Reduction: |C| = {len(problem.premises)} constraints, "
      f"|J| = {problem.current.size} nodes, conclusion {problem.conclusion}")

assignment = EXAMPLE_SAT.satisfying_assignment()
past = past_from_assignment(problem, assignment)
assert is_valid(past, problem.current, problem.premises)
assert violation_of(past, problem.current, problem.conclusion) is not None
print(f"Satisfying assignment {assignment} -> a legal past exists that "
      "violates the conclusion: implication FAILS (as the theorem demands).")

unsat_problem = theorem_52_problem(EXAMPLE_UNSAT)
legal_pasts = sum(
    1 for a in EXAMPLE_UNSAT.assignments()
    if is_valid(past_from_assignment(unsat_problem, a),
                unsat_problem.current, unsat_problem.premises)
)
print(f"Unsatisfiable formula -> {legal_pasts} of "
      f"{2 ** EXAMPLE_UNSAT.n_vars} assignment-pasts are legal: "
      "implication HOLDS.")

# ----------------------------------------------------------------------
# 2. Theorem 4.6 — SAT as a legal shuffle of one long path.
# ----------------------------------------------------------------------
general = build_problem(EXAMPLE_SAT)
before, after, witness = pair_from_assignment(general, assignment)
assert is_valid(before, after, general.premises)
assert violation_of(before, after, general.conclusion) is not None
print(f"\nTheorem 4.6: |C| = {len(general.premises)} constraints over a "
      f"{before.size}-node path; the assignment shuffle deletes node "
      f"{witness} from the conclusion range while every premise holds.")

# ----------------------------------------------------------------------
# 3. Example 3.3 — the chase diverges; the dedicated engines decide.
# ----------------------------------------------------------------------
premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
conclusion = no_remove("/a/b/c/d")
outcome = chase_implication(premises, conclusion, max_steps=30)
print(f"\nExample 3.3: chase status = {outcome.status} after {outcome.steps} "
      f"steps; fact count grew {outcome.history[0]} -> {outcome.history[-1]}")
assert outcome.diverged
print("The classical chase cannot settle what the paper's decision "
      "procedures settle in milliseconds — the motivation for Section 4.")

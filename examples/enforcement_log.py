"""Online enforcement: a live medical record under an update-constraint policy.

The paper's motivating scenario is a document that *evolves* while an
access-control policy of update constraints must keep holding.  This demo
opens an enforcement stream over a hospital record and replays a day of
write traffic — single operations and transaction brackets — watching the
engine accept, reject (with per-constraint witnesses) and roll back.

Run:  python examples/enforcement_log.py
"""

from repro import Reasoner, branch, build, constraint_set
from repro.stream import AddLeaf, Begin, Commit, Move, RemoveSubtree

# The record at the start of the day (the baseline instance I0).
record = build(
    branch("patient",
           branch("clinicalTrial", nid=9001),
           branch("visit", branch("prescription"), nid=9002),
           nid=9000),
    branch("patient", branch("visit", nid=9102), nid=9100),
)

# The governance policy, compiled once.
policy = Reasoner(constraint_set(
    ("/patient", "down"),                  # no new patients
    ("/patient[/clinicalTrial]", "up"),    # trial membership is never lost
    ("/patient[/clinicalTrial]", "down"),  # ... and never invented
    ("//prescription", "up"),              # prescriptions are never dropped
))

print("Record at open:")
print(record.pretty(show_ids=False))

stream = policy.open_stream(record)

print("\nDay's traffic:")
traffic = [
    AddLeaf(9002, "prescription"),    # new prescription on a visit: fine
    AddLeaf(record.root, "patient"),  # admitting a new patient: rejected
    RemoveSubtree(9001),              # dropping trial membership: rejected
    Begin("ward-transfer"),           # a multi-op transaction...
    Move(9002, 9100),                 # move the visit to the other patient
    AddLeaf(9100, "visit"),           # and log a fresh visit there
    Commit(),                         # cumulative edit is valid: committed
    Begin("cleanup"),
    RemoveSubtree(9102),              # fine on its own...
    RemoveSubtree(9002),              # ...but this drops prescriptions
    Commit(),                         # whole bracket rolled back
]
stream.submit(traffic)
print(stream.audit.render())

print("\nRecord at close (rejected edits were rolled back):")
print(stream.tree.pretty(show_ids=False))
print(f"\n{stream.stats}")
assert stream.is_valid()

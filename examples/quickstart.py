"""Quickstart: the paper's running example (Figure 2 / Example 2.1).

Builds the patient document, checks an update against three constraints,
and asks both implication questions of Section 2.1.

Run:  python examples/quickstart.py
"""

from repro import (
    branch,
    build,
    constraint_set,
    explain_violations,
    implies,
    implies_on,
    no_insert,
    no_remove,
)

# ----------------------------------------------------------------------
# 1. The document before the update (Figure 2, instance I).
# ----------------------------------------------------------------------
before = build(
    branch("patient", branch("visit", nid=7), branch("clinicalTrial")),
    branch("patient", branch("visit")),
)
print("Before the update:")
print(before.pretty())

# An unknown party deletes the visit node n7.
after = before.copy()
after.remove_subtree(7)
print("\nAfter the update:")
print(after.pretty())

# ----------------------------------------------------------------------
# 2. Example 2.1's constraints and verdicts.
# ----------------------------------------------------------------------
c1 = no_insert("/patient[/visit]")            # patients with a visit only shrink
c2 = constraint_set(("/patient[/clinicalTrial]", "up"),
                    ("/patient[/clinicalTrial]", "down"))  # immutable
c3 = no_remove("/patient/visit")              # the set of visits only grows

print("\nValidity of the update:")
for name, constraints in [("c1", [c1]), ("c2", list(c2)), ("c3", [c3])]:
    violations = explain_violations(before, after, constraints)
    verdict = "valid" if not violations else f"VIOLATED ({violations[0]})"
    print(f"  {name}: {verdict}")

# ----------------------------------------------------------------------
# 3. General implication (Definition 2.4).
# ----------------------------------------------------------------------
premises = constraint_set(("/patient[/visit]", "down"),
                          ("/patient[/clinicalTrial]", "up"),
                          ("/patient[/clinicalTrial]", "down"))
conclusion = no_insert("/patient[/visit][/clinicalTrial]")
result = implies(premises, conclusion)
print(f"\nGeneral implication: {result}")

# ----------------------------------------------------------------------
# 4. Instance-based implication (Definition 2.5): a question about the past.
# ----------------------------------------------------------------------
current = build(
    branch("patient", branch("clinicalTrial"), branch("visit")),
    branch("patient", branch("clinicalTrial"), branch("visit")),
)
past_question = no_remove("/patient[/clinicalTrial]/visit")
instance_result = implies_on(constraint_set(("/patient/visit", "up")),
                             current, past_question)
print(f"Instance-based implication: {instance_result}")
general_result = implies(constraint_set(("/patient/visit", "up")), past_question)
print(f"...but in general (any instance): {general_result}")
assert instance_result.is_implied and general_result.is_refuted
print("\nQuickstart assertions all hold — matching the paper's claims.")

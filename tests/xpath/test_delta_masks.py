"""Delta-maintained predicate masks and the batch slot decoder.

The bitset evaluator no longer drops its predicate masks when the index
revision moves — it patches them from the :class:`~repro.trees.index.
EditDelta` log.  These tests pin the patch path directly: masks warmed
*before* an edit must answer exactly like the naive evaluator *after* it,
for every node, across chains of edits, and past the delta log's horizon
(where the full recompute takes over).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.trees import DataTree, TreeIndex
from repro.trees.index import DELTA_LOG_CAP
from repro.workloads import FragmentSpec, random_pattern, random_tree
from repro.xpath import BitsetEvaluator
from repro.xpath.bitset import iter_slots, slots_of
from repro.xpath.evaluator import evaluate_ids, matches_at

LABELS = ["a", "b", "c"]
FULL = FragmentSpec(predicates=True, descendant=True, wildcard=True)

RELAXED = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def random_edit(rng: random.Random, snapshot: TreeIndex) -> None:
    tree = snapshot.tree
    nodes = list(tree.node_ids())
    nonroot = [n for n in nodes if n != tree.root]
    try:
        roll = rng.random()
        if roll < 0.45 and nonroot:
            snapshot.apply_move(rng.choice(nonroot), rng.choice(nodes))
        elif roll < 0.8:
            snapshot.apply_add_leaf(rng.choice(nodes), rng.choice(LABELS))
        elif nonroot:
            snapshot.apply_remove_subtree(rng.choice(nonroot))
    except TreeError:
        pass  # illegal move rolls — the index must stay untouched


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_warm_masks_stay_exact_across_edit_chains(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(2, 20))
    snapshot = TreeIndex(tree)
    evaluator = BitsetEvaluator(snapshot)
    patterns = [random_pattern(rng, LABELS, FULL, spine=rng.randint(1, 3),
                               pred_prob=0.8, max_pred_depth=3)
                for _ in range(3)]
    preds = [p.as_boolean() for p in patterns]
    # Warm every predicate mask on the initial revision...
    for pred in preds:
        evaluator.matches_at(pred, tree.root)
    # ...then edit and require patched answers to match naive, per node.
    for _ in range(5):
        random_edit(rng, snapshot)
        for pattern, pred in zip(patterns, preds, strict=True):
            assert evaluator.evaluate_ids(pattern) == evaluate_ids(pattern, tree)
            for nid in tree.node_ids():
                assert (evaluator.matches_at(pred, nid)
                        == matches_at(pred, tree, nid))


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_masks_survive_the_delta_log_horizon(seed):
    """More unqueried edits than the log retains: recompute path, same
    answers."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(3, 12))
    snapshot = TreeIndex(tree)
    evaluator = BitsetEvaluator(snapshot)
    pattern = random_pattern(rng, LABELS, FULL, spine=2, pred_prob=0.8)
    evaluator.evaluate_ids(pattern)  # warm
    start = snapshot.revision
    while snapshot.revision - start <= DELTA_LOG_CAP:
        random_edit(rng, snapshot)
    assert snapshot.deltas_since(start) is None
    assert evaluator.evaluate_ids(pattern) == evaluate_ids(pattern, tree)


class TestDeltaLog:
    def test_revision_bookkeeping(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        index = TreeIndex(tree)
        assert index.deltas_since(0) == []
        b = index.apply_add_leaf(a, "b")
        index.apply_move(b, tree.root)
        index.apply_remove_subtree(b)
        deltas = index.deltas_since(0)
        assert [d.revision for d in deltas] == [1, 2, 3]
        assert deltas[0].added == (b,)
        assert deltas[2].vanished  # the removed node's old slot
        assert index.deltas_since(2) == deltas[2:]
        assert index.deltas_since(3) == []

    def test_dirty_chains_are_upward_closed(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b")
        c = tree.add_child(b, "c")
        index = TreeIndex(tree)
        index.apply_add_leaf(c, "a")
        (delta,) = index.deltas_since(0)
        # Every ancestor of the attachment point is dirty.
        assert set(delta.dirty) >= {c, b, a, tree.root}

    def test_log_is_capped(self):
        tree = DataTree()
        parent = tree.add_child(tree.root, "a")
        index = TreeIndex(tree)
        for _ in range(DELTA_LOG_CAP + 10):
            index.apply_add_leaf(parent, "b")
        assert index.deltas_since(0) is None
        assert len(index.deltas_since(index.revision - DELTA_LOG_CAP)) == \
            DELTA_LOG_CAP


class TestSlotDecoder:
    def reference(self, mask: int) -> list[int]:
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def test_empty_mask(self):
        assert list(iter_slots(0)) == []
        assert slots_of(0) == []

    def test_against_bit_kernel_reference(self):
        rng = random.Random(20070611)
        masks = [rng.getrandbits(width) for width in
                 (1, 7, 8, 9, 64, 65, 1000, 100_000) for _ in range(5)]
        masks += [1, (1 << 100_000), (1 << 100_000) | 1]
        for mask in masks:
            expected = self.reference(mask)
            assert list(iter_slots(mask)) == expected
            assert slots_of(mask) == expected

"""Containment / equivalence / canonical models / intersections.

Includes random cross-validation of the containment verdicts against raw
evaluation on canonical models — the semantic ground truth.
"""


import pytest

from repro.trees import parse_tree
from repro.workloads import FragmentSpec, random_pattern
from repro.xpath import (
    canonical_models,
    contained,
    equivalent,
    escape_witness,
    evaluate_ids,
    find_separating_model,
    hom_contained,
    intersect_child_only,
    intersection_contained,
    intersection_equivalent,
    model_count,
    parse,
    product_patterns,
    smallest_model,
)


class TestCanonicalModels:
    def test_smallest_model_satisfies_pattern(self):
        for text in ("/a", "/a//b", "/a[/b][//c]/d", "//*[/a]"):
            pattern = parse(text)
            model = smallest_model(pattern)
            assert model.output in evaluate_ids(pattern, model.tree), text

    def test_every_canonical_model_satisfies_pattern(self):
        pattern = parse("/a//b[//c]")
        for model in canonical_models(pattern, cap=2):
            assert model.output in evaluate_ids(pattern, model.tree)

    def test_model_count_formula(self):
        pattern = parse("/a//b[//c]/*")
        assert model_count(pattern, cap=2) == 3 ** 2 * 1

    def test_deduplication(self):
        pattern = parse("/a")
        assert len(list(canonical_models(pattern, cap=3))) == 1


class TestContainment:
    @pytest.mark.parametrize("small,big", [
        ("/a/b", "//b"),
        ("/a/b", "/a/*"),
        ("/a[/b][/c]", "/a[/b]"),
        ("/a/b/c", "/a//c"),
        ("/a//b//c", "//c"),
        ("/a[/b[/c]]", "/a[/b]"),
        ("/a/*//b", "/a//b"),
        ("//a//b", "//b"),
    ])
    def test_positive(self, small, big):
        assert contained(parse(small), parse(big))

    @pytest.mark.parametrize("p,q", [
        ("//b", "/a/b"),
        ("/a/*", "/a/b"),
        ("/a[/b]", "/a[/b][/c]"),
        ("/a//c", "/a/b/c"),
        ("/a/b", "/b"),
        ("/a[/b]", "/b"),
    ])
    def test_negative(self, p, q):
        assert not contained(parse(p), parse(q))

    def test_equivalence(self):
        assert equivalent(parse("/a[/b][/c]"), parse("/a[/c][/b]"))
        assert not equivalent(parse("/a/b"), parse("/a//b"))

    def test_hom_is_sound(self):
        # every hom-containment must also be a canonical containment
        pairs = [("/a/b", "//b"), ("/a[/b]/c", "/a/c"), ("/a//b", "//b")]
        for p, q in pairs:
            if hom_contained(parse(p), parse(q)):
                assert contained(parse(p), parse(q))

    def test_wildcard_descendant_interaction(self):
        # The classic case where hom is incomplete: p ⊆ q holds without a hom.
        p = parse("/a/*//b")
        q = parse("/a//b")
        assert contained(p, q)
        p2 = parse("/a//b")
        q2 = parse("/a/*//b")
        assert not contained(p2, q2)

    def test_separating_model_is_genuine(self):
        model = find_separating_model(parse("//b"), parse("/a/b"))
        assert model is not None
        assert model.output in evaluate_ids(parse("//b"), model.tree)
        assert model.output not in evaluate_ids(parse("/a/b"), model.tree)

    def test_no_separating_model_when_contained(self):
        assert find_separating_model(parse("/a/b"), parse("//b")) is None

    def test_containment_respects_evaluation(self, rng):
        """Random semantic cross-check: verdicts never contradict evaluation."""
        spec = FragmentSpec()
        labels = ["a", "b"]
        for _ in range(40):
            p = random_pattern(rng, labels, spec, spine=rng.randint(1, 3))
            q = random_pattern(rng, labels, spec, spine=rng.randint(1, 3))
            verdict = contained(p, q)
            for model in canonical_models(p, cap=2):
                if model.output in evaluate_ids(p, model.tree):
                    if verdict:
                        assert model.output in evaluate_ids(q, model.tree), (p, q)


class TestIntersection:
    def test_child_only_merge(self):
        merged = intersect_child_only([parse("/a[/b]/c"), parse("/a[/d]/c")])
        assert merged == parse("/a[/b][/d]/c")

    def test_child_only_label_conflict_empty(self):
        assert intersect_child_only([parse("/a/c"), parse("/b/c")]) is None

    def test_child_only_length_mismatch_empty(self):
        assert intersect_child_only([parse("/a"), parse("/a/b")]) is None

    def test_child_only_wildcard_resolution(self):
        merged = intersect_child_only([parse("/*/c"), parse("/a/c")])
        assert merged == parse("/a/c")

    def test_product_patterns_example(self):
        products = product_patterns([parse("//a//c"), parse("//b//c")])
        rendered = sorted(str(p) for p in products)
        assert rendered == ["//a//b//c", "//b//a//c"]

    def test_product_patterns_forced_child(self):
        products = product_patterns([parse("/a/b"), parse("//b")])
        assert [str(p) for p in products] == ["/a/b"]

    def test_product_patterns_conflict_empty(self):
        assert product_patterns([parse("/a"), parse("/b")]) == []

    def test_products_contained_in_all_factors(self, rng):
        spec = FragmentSpec(predicates=False)
        labels = ["a", "b"]
        for _ in range(25):
            ps = [random_pattern(rng, labels, spec, spine=rng.randint(1, 3))
                  for _ in range(2)]
            for product in product_patterns(ps):
                for factor in ps:
                    assert contained(product, factor), (product, ps)

    def test_intersection_contained(self):
        assert intersection_contained([parse("//a//c"), parse("//b//c")],
                                      parse("//c"))
        assert not intersection_contained([parse("//a//c"), parse("//b//c")],
                                          parse("//a//b//c"))

    def test_intersection_equivalent_paper_example(self):
        # Example 2.1: /patient[/visit] ∩ /patient[/clinicalTrial]
        parts = [parse("/patient[/visit]"), parse("/patient[/clinicalTrial]")]
        target = parse("/patient[/visit][/clinicalTrial]")
        assert intersection_equivalent(parts, target)

    def test_escape_witness_found(self):
        witness = escape_witness([parse("//a//c"), parse("//b//c")],
                                 [parse("//a//b//c")])
        assert witness is not None
        out = witness.output
        assert out in evaluate_ids(parse("//a//c"), witness.tree)
        assert out in evaluate_ids(parse("//b//c"), witness.tree)
        assert out not in evaluate_ids(parse("//a//b//c"), witness.tree)

    def test_escape_witness_absent_when_contained(self):
        assert escape_witness([parse("/a/b")], [parse("//b")]) is None


class TestContainmentOnData:
    def test_containment_transfers_to_real_trees(self):
        tree = parse_tree("a(b(c), b), a(c)")
        p, q = parse("/a/b[/c]"), parse("/a/b")
        assert contained(p, q)
        assert evaluate_ids(p, tree) <= evaluate_ids(q, tree)

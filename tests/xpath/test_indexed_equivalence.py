"""Hypothesis equivalence suite: the indexed kernel vs the naive path.

The contract of the snapshot kernel is *bit-identical answers*: for every
tree and every pattern, label-indexed evaluation over a ``TreeIndex`` must
agree with the naive two-phase evaluator, and every engine verdict must be
unchanged by the snapshot fast path.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Reasoner
from repro.constraints import ConstraintType, UpdateConstraint
from repro.instance import implies_on
from repro.trees import TreeIndex
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
)
from repro.xpath import IndexedEvaluator
from repro.xpath.evaluator import evaluate, evaluate_ids, matches_at, selects
from repro.xpath import indexed

LABELS = ["a", "b", "c"]
SPECS = [
    FragmentSpec(False, False, False),
    FragmentSpec(True, False, False),
    FragmentSpec(False, True, False),
    FragmentSpec(False, True, True),
    FragmentSpec(True, True, True),
]

seeds = st.integers(min_value=0, max_value=10_000)
spec_idx = st.integers(min_value=0, max_value=len(SPECS) - 1)

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_indexed_evaluate_matches_naive(seed, idx):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 20))
    ctx = IndexedEvaluator.for_tree(tree)
    for _ in range(4):
        pattern = random_pattern(rng, LABELS, SPECS[idx],
                                 spine=rng.randint(1, 4))
        assert indexed.evaluate(pattern, ctx) == evaluate(pattern, tree)
        assert indexed.evaluate_ids(pattern, ctx) == evaluate_ids(pattern, tree)
        # evaluation anchored below the root must agree too
        start = rng.choice(list(tree.node_ids()))
        assert ctx.evaluate(pattern, start) == evaluate(pattern, tree, start)


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_indexed_selects_and_matches_at(seed, idx):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 15))
    ctx = IndexedEvaluator.for_tree(tree)
    pattern = random_pattern(rng, LABELS, SPECS[idx], spine=rng.randint(1, 3))
    pred = pattern.as_boolean()
    for nid in tree.node_ids():
        assert indexed.selects(pattern, ctx, nid) == selects(pattern, tree, nid)
        assert indexed.matches_at(pred, ctx, nid) == matches_at(pred, tree, nid)


@given(seed=seeds)
@RELAXED
def test_context_fast_path_is_transparent(seed):
    """evaluate(context=...) answers identically and survives staleness."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 12))
    ctx = IndexedEvaluator.for_tree(tree)
    pattern = random_pattern(rng, LABELS, SPECS[4], spine=rng.randint(1, 3))
    assert (evaluate(pattern, tree, context=ctx)
            == evaluate(pattern, tree, context=None))
    # A mutation makes the context stale: the fast path must step aside.
    tree.add_child(tree.root, "b")
    assert not ctx.covers(tree)
    assert (evaluate(pattern, tree, context=ctx)
            == evaluate(pattern, tree, context=None))


@given(seed=seeds)
@RELAXED
def test_tree_index_structure_agrees_with_tree(seed):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 15))
    index = TreeIndex(tree)
    nodes = list(tree.node_ids())
    assert list(index.node_ids()) == nodes  # same preorder
    for nid in nodes:
        assert index.depth(nid) == tree.depth(nid)
        assert index.parent(nid) == tree.parent(nid)
        assert index.children(nid) == tree.children(nid)
        assert index.path_labels(nid) == tree.path_labels(nid)
        assert sorted(index.descendants(nid)) == sorted(tree.descendants(nid))
        for label in LABELS:
            expected = [d for d in tree.descendants(nid)
                        if tree.label(d) == label]
            assert sorted(index.descendants_with_label(label, nid)) == sorted(expected)
            assert index.count_descendants_with_label(label, nid) == len(expected)
    for anc in nodes:
        for nid in nodes:
            assert index.is_ancestor(anc, nid) == tree.is_ancestor(anc, nid)
    assert index.canonical_shape() == tree.canonical_shape()


@given(seed=seeds)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_verdicts_identical_with_and_without_snapshot(seed):
    """Table 2 dispatch: indexed and naive bindings, plus the legacy free
    function, give the same answer through the same engine."""
    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, len(SPECS) - 1)]
    types = rng.choice(["up", "down", "mixed"])
    premises = random_constraints(rng, LABELS[:2], spec,
                                  count=rng.randint(1, 3), types=types, spine=2)
    current = random_tree(rng, LABELS[:2], size=rng.randint(1, 6))
    reasoner = Reasoner(premises)
    fast = reasoner.bind(current, indexed=True)
    slow = reasoner.bind(current, indexed=False)
    for _ in range(2):
        kind = rng.choice(list(ConstraintType))
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS[:2], spec, spine=2), kind)
        with_index = fast.implies_on(conclusion)
        without = slow.implies_on(conclusion)
        legacy = implies_on(premises, current, conclusion)
        assert with_index.answer is without.answer, (str(premises),
                                                     str(conclusion))
        assert with_index.answer is legacy.answer
        assert with_index.engine == without.engine == legacy.engine
        if with_index.counterexample is not None:
            assert with_index.verify() == []


@given(seed=seeds)
@RELAXED
def test_pred_memo_shared_across_queries(seed):
    """Asking more queries grows (never poisons) the shared predicate memo."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(2, 12))
    ctx = IndexedEvaluator.for_tree(tree)
    patterns = [random_pattern(rng, LABELS, SPECS[4], spine=rng.randint(1, 3))
                for _ in range(4)]
    first = [ctx.evaluate_ids(p) for p in patterns]
    entries_after_first = ctx.memo_entries
    second = [ctx.evaluate_ids(p) for p in patterns]
    assert first == second
    assert ctx.memo_entries == entries_after_first  # warm memo, no growth

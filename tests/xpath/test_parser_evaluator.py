"""Parser, evaluator and syntactic-property tests for ``XP{/,[],//,*}``."""

import pytest

from repro.errors import ParseError
from repro.trees import parse_tree
from repro.xpath import (
    Axis,
    evaluate,
    evaluate_ids,
    fragment_of,
    is_child_only,
    is_linear,
    labels_of,
    matches_at,
    parse,
    star_length,
    wildcard_gap_bound,
)


class TestParser:
    @pytest.mark.parametrize("text", [
        "/a", "//a", "/a/b", "/a//b", "/*", "//*/a",
        "/a[/b]", "/a[//b]", "/a[/b][/c]", "/a[/b[/c]]/d",
        "/a//b[/c][//d]/e", "/patient[/visit][/clinicalTrial]",
    ])
    def test_roundtrip(self, text):
        pattern = parse(text)
        assert parse(str(pattern)) == pattern

    def test_lenient_predicate_slash(self):
        assert parse("/a/b[c]") == parse("/a/b[/c]")

    def test_predicate_normalisation_sorts_and_dedups(self):
        assert parse("/a[/c][/b][/b]") == parse("/a[/b][/c]")

    def test_nested_predicate_path(self):
        pattern = parse("/a[/b/c]")
        pred = pattern.steps[0].preds[0]
        assert pred.label == "b" and pred.children[0].label == "c"

    def test_axes(self):
        pattern = parse("/a//b")
        assert pattern.steps[0].axis is Axis.CHILD
        assert pattern.steps[1].axis is Axis.DESC

    @pytest.mark.parametrize("bad", ["", "a", "/", "/a[", "/a]", "/a[/]", "/a[]"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_output_concreteness(self):
        assert parse("/a/b").is_concrete
        assert not parse("/a/*").is_concrete

    def test_whitespace_tolerated(self):
        assert parse(" /a [ /b ] / c ") == parse("/a[/b]/c")


class TestEvaluator:
    def test_child_axis(self):
        tree = parse_tree("a(b), b")
        assert sorted(n.label for n in evaluate(parse("/a/b"), tree)) == ["b"]
        assert len(evaluate(parse("/b"), tree)) == 1

    def test_descendant_axis(self):
        tree = parse_tree("a(b(c(b)))")
        assert len(evaluate(parse("//b"), tree)) == 2
        assert len(evaluate(parse("/a//b"), tree)) == 2

    def test_descendant_is_strict(self):
        tree = parse_tree("a")
        # the root is not its own descendant; /a's node has no 'a' below
        assert evaluate(parse("//a//a"), tree) == set()

    def test_wildcard(self):
        tree = parse_tree("a(b), c(d)")
        assert len(evaluate(parse("/*"), tree)) == 2
        assert len(evaluate(parse("/*/d"), tree)) == 1

    def test_predicates_conjunction(self):
        tree = parse_tree("p(v, t), p(v), p(t)")
        result = evaluate(parse("/p[/v][/t]"), tree)
        assert len(result) == 1

    def test_nested_predicates(self):
        tree = parse_tree("a(b(c)), a(b)")
        assert len(evaluate(parse("/a[/b[/c]]"), tree)) == 1

    def test_descendant_predicate(self):
        tree = parse_tree("a(x(y(d))), a(x)")
        assert len(evaluate(parse("/a[//d]"), tree)) == 1

    def test_result_is_id_label_pairs(self):
        tree = parse_tree("a(b)")
        (node,) = evaluate(parse("/a/b"), tree)
        assert node.label == "b"
        assert node.nid in tree

    def test_evaluate_at_subtree(self):
        tree = parse_tree("a(b(c))")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        assert evaluate_ids(parse("/c"), tree, start=b)
        assert not evaluate_ids(parse("/b"), tree, start=b)

    def test_matches_at_boolean(self):
        tree = parse_tree("a(b(c))")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        assert matches_at(parse("/b[/c]").as_boolean(), tree, a)
        assert not matches_at(parse("/c").as_boolean(), tree, a)

    def test_root_never_selected(self):
        tree = parse_tree("a")
        for q in ("/a", "//a", "/*", "//*"):
            assert tree.root not in evaluate_ids(parse(q), tree)

    def test_example21_evaluation(self, figure2_instances):
        before, after = figure2_instances
        assert len(evaluate(parse("/patient[/visit]"), before)) == 2
        assert len(evaluate(parse("/patient[/visit]"), after)) == 1
        assert len(evaluate(parse("/patient[/clinicalTrial]"), after)) == 1


class TestProperties:
    def test_fragment_detection(self):
        assert fragment_of(parse("/a/b")).name == "XP{/}"
        assert fragment_of(parse("/a[/b]")).name == "XP{/,[]}"
        assert fragment_of(parse("/a//b")).name == "XP{/,//}"
        assert fragment_of(parse("/a/*")).name == "XP{/,*}"
        assert fragment_of(parse("/a[//*]//b")).name == "XP{/,[],//,*}"

    def test_is_linear_child_only(self):
        assert is_linear(parse("/a//b/*"))
        assert not is_linear(parse("/a[/b]"))
        assert is_child_only(parse("/a[/b]/*"))
        assert not is_child_only(parse("/a//b"))

    def test_labels_of(self):
        assert labels_of(parse("/a[/b]//c/*")) == {"a", "b", "c"}

    @pytest.mark.parametrize("text,expected", [
        ("/a/b", 0),
        ("/*", 1),
        ("/*/*", 2),
        ("/a/*/*/b", 2),
        ("/a//*/*//b", 2),
        ("/a[/*/*/*]", 3),
        ("//*", 1),
    ])
    def test_star_length(self, text, expected):
        assert star_length(parse(text)) == expected

    def test_wildcard_gap_bound(self):
        assert wildcard_gap_bound(parse("//a/*/*/b//c")) == 2
        assert wildcard_gap_bound(parse("/a/b")) == 0

    def test_pattern_size(self):
        assert parse("/a[/b][/c/d]/e").size == 5

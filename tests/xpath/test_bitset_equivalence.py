"""Hypothesis three-way equivalence: naive vs indexed vs bitset.

The contract of the set-at-a-time layer is *bit-identical answers*: for
every tree and every pattern, mask evaluation over a ``TreeIndex`` must
agree with both the naive two-phase evaluator and the node-at-a-time
indexed evaluator — including after in-place index edits driven by the
refutation-search journals (move/undo cascades, merge/revive quotients).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Reasoner
from repro.constraints import ConstraintType, UpdateConstraint
from repro.errors import TreeError
from repro.instance import implies_on
from repro.instance.no_remove_engine import _merge_walk
from repro.instance.search import _cascade_walk
from repro.trees import TreeIndex
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
)
from repro.xpath import BitsetEvaluator, IndexedEvaluator
from repro.xpath import bitset as bitset_mod
from repro.xpath.evaluator import evaluate, evaluate_ids, matches_at, selects

LABELS = ["a", "b", "c"]
SPECS = [
    FragmentSpec(False, False, False),
    FragmentSpec(True, False, False),
    FragmentSpec(False, True, False),
    FragmentSpec(False, True, True),
    FragmentSpec(True, True, True),
]

seeds = st.integers(min_value=0, max_value=10_000)
spec_idx = st.integers(min_value=0, max_value=len(SPECS) - 1)

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_three_way_evaluate_agreement(seed, idx):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 20))
    snapshot = TreeIndex(tree)
    bit = BitsetEvaluator(snapshot)
    ind = IndexedEvaluator(snapshot)
    for _ in range(4):
        pattern = random_pattern(rng, LABELS, SPECS[idx],
                                 spine=rng.randint(1, 4))
        expected = evaluate_ids(pattern, tree)
        assert bit.evaluate_ids(pattern) == expected
        assert ind.evaluate_ids(pattern) == expected
        assert bit.evaluate(pattern) == evaluate(pattern, tree)
        # evaluation anchored below the root must agree too
        start = rng.choice(list(tree.node_ids()))
        assert bit.evaluate_ids(pattern, start) == evaluate_ids(pattern, tree, start)


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_three_way_selects_and_matches_at(seed, idx):
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 15))
    bit = BitsetEvaluator.for_tree(tree)
    ind = IndexedEvaluator.for_tree(tree)
    pattern = random_pattern(rng, LABELS, SPECS[idx], spine=rng.randint(1, 3))
    pred = pattern.as_boolean()
    for nid in tree.node_ids():
        naive_sel = selects(pattern, tree, nid)
        assert bit.selects(pattern, nid) == naive_sel == ind.selects(pattern, nid)
        naive_pred = matches_at(pred, tree, nid)
        assert bit.matches_at(pred, nid) == naive_pred == ind.matches_at(pred, nid)


@given(seed=seeds)
@RELAXED
def test_bitset_context_fast_path_is_transparent(seed):
    """evaluate(context=...) answers identically and survives staleness."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(1, 12))
    ctx = bitset_mod.context_for(tree)
    pattern = random_pattern(rng, LABELS, SPECS[4], spine=rng.randint(1, 3))
    assert (evaluate(pattern, tree, context=ctx)
            == evaluate(pattern, tree, context=None))
    # A foreign mutation makes the context stale: the fast path steps aside.
    tree.add_child(tree.root, "b")
    assert not ctx.covers(tree)
    assert (evaluate(pattern, tree, context=ctx)
            == evaluate(pattern, tree, context=None))


@given(seed=seeds)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_three_way_agreement_after_incremental_edits(seed):
    """Both snapshot evaluators stay exact across in-place index edits."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(2, 18))
    snapshot = TreeIndex(tree)
    bit = BitsetEvaluator(snapshot)
    ind = IndexedEvaluator(snapshot)
    for _ in range(8):
        op = rng.random()
        nodes = [n for n in tree.node_ids() if n != tree.root]
        try:
            if op < 0.55 and nodes:
                snapshot.apply_move(rng.choice(nodes),
                                    rng.choice(list(tree.node_ids())))
            elif op < 0.8:
                snapshot.apply_add_leaf(rng.choice(list(tree.node_ids())),
                                        rng.choice(LABELS))
            elif nodes:
                snapshot.apply_remove_subtree(rng.choice(nodes))
        except TreeError:
            continue
        assert snapshot.covers(tree)
        pattern = random_pattern(rng, LABELS, SPECS[4], spine=rng.randint(1, 3))
        expected = evaluate_ids(pattern, tree)
        assert bit.evaluate_ids(pattern) == expected
        assert ind.evaluate_ids(pattern) == expected
        pred = pattern.as_boolean()
        probe = rng.choice(list(tree.node_ids()))
        naive_pred = matches_at(pred, tree, probe)
        assert bit.matches_at(pred, probe) == naive_pred
        assert ind.matches_at(pred, probe) == naive_pred


@given(seed=seeds)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cascade_journal_keeps_snapshot_exact(seed):
    """The move/undo journal leaves the live snapshot exact at every yield
    and restores the original tree when exhausted."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(2, 8))
    original = tree.copy()
    scratch = tree.copy()
    ctx = BitsetEvaluator.for_tree(scratch)
    pattern = random_pattern(rng, LABELS, SPECS[4], spine=2)
    for candidate, _ in _cascade_walk(scratch, max_moves=2, budget=30,
                                      context=ctx):
        assert candidate is scratch
        assert ctx.covers(scratch)
        assert ctx.evaluate_ids(pattern) == evaluate_ids(pattern, scratch)
    assert scratch.same_instance(original)
    assert ctx.evaluate_ids(pattern) == evaluate_ids(pattern, original)


@given(seed=seeds)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_merge_journal_keeps_snapshot_exact(seed):
    """The merge/revive journal (moves + leaf removal + revival) leaves the
    live snapshot exact at every quotient."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS[:2], size=rng.randint(2, 8))
    output = rng.choice([n for n in tree.node_ids()])
    scratch = tree.copy()
    ctx = BitsetEvaluator.for_tree(scratch)
    pattern = random_pattern(rng, LABELS[:2], SPECS[1], spine=2)
    count = 0
    for candidate, out in _merge_walk(scratch, output, budget=40, context=ctx):
        count += 1
        assert candidate is scratch
        assert ctx.covers(scratch)
        assert out in scratch
        assert ctx.evaluate_ids(pattern) == evaluate_ids(pattern, scratch)
    assert count >= 1  # the unmerged original is always yielded


@given(seed=seeds)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_verdicts_identical_across_engines(seed):
    """Table 2 dispatch: bitset, indexed and naive bindings, plus the
    legacy free function, give the same answer through the same engine."""
    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, len(SPECS) - 1)]
    types = rng.choice(["up", "down", "mixed"])
    premises = random_constraints(rng, LABELS[:2], spec,
                                  count=rng.randint(1, 3), types=types, spine=2)
    current = random_tree(rng, LABELS[:2], size=rng.randint(1, 6))
    reasoner = Reasoner(premises)
    bindings = [reasoner.bind(current, engine=engine)
                for engine in ("bitset", "indexed", "naive")]
    for _ in range(2):
        kind = rng.choice(list(ConstraintType))
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS[:2], spec, spine=2), kind)
        results = [b.implies_on(conclusion) for b in bindings]
        legacy = implies_on(premises, current, conclusion)
        assert all(r.answer is legacy.answer for r in results), (
            str(premises), str(conclusion))
        assert all(r.engine == legacy.engine for r in results)
        if results[0].counterexample is not None:
            assert results[0].verify() == []


@given(seed=seeds)
@RELAXED
def test_bitset_memo_capped_and_warm(seed):
    """Re-asking queries neither grows nor poisons the capped memos."""
    rng = random.Random(seed)
    tree = random_tree(rng, LABELS, size=rng.randint(2, 12))
    ctx = BitsetEvaluator.for_tree(tree)
    patterns = [random_pattern(rng, LABELS, SPECS[4], spine=rng.randint(1, 3))
                for _ in range(4)]
    first = [ctx.evaluate_ids(p) for p in patterns]
    entries_after_first = ctx.memo_entries
    second = [ctx.evaluate_ids(p) for p in patterns]
    assert first == second
    assert ctx.memo_entries == entries_after_first  # warm memo, no growth

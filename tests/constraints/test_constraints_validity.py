"""Update constraints: model, validity (Definitions 2.2/2.3), sequences,
and relative constraints (Section 6)."""

import pytest

from repro.constraints import (
    ConstraintSet,
    ConstraintType,
    check_sequence,
    constraint_set,
    example_61,
    example_62,
    explain_violations,
    immutable,
    is_valid,
    no_insert,
    no_remove,
    relative,
    relative_violations,
    satisfies_relative,
    violation_of,
)
from repro.errors import NotConcreteError
from repro.trees import branch, build, parse_tree
from repro.xpath import parse


class TestModel:
    def test_constructors(self):
        up = no_remove("/a/b")
        down = no_insert("/a/b")
        assert up.type is ConstraintType.NO_REMOVE
        assert down.type is ConstraintType.NO_INSERT
        assert up.range == down.range == parse("/a/b")

    def test_arrow_rendering(self):
        assert "↑" in str(no_remove("/a"))
        assert "↓" in str(no_insert("/a"))

    def test_immutable_is_a_pair(self):
        pair = immutable("/a")
        assert {c.type for c in pair} == set(ConstraintType)

    def test_flipped(self):
        assert no_remove("/a").flipped() == no_insert("/a")

    def test_constraint_set_parsing(self):
        cs = constraint_set(("/a", "up"), ("/b", "down"), "/c ^", "/d v")
        assert len(cs) == 4
        assert len(cs.no_remove) == 2
        assert len(cs.no_insert) == 2

    def test_constraint_set_type_views(self):
        cs = constraint_set(("/a", "up"), ("/b", "down"))
        assert not cs.is_single_type
        assert cs.no_remove.is_single_type

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            constraint_set(("/a", "sideways"))

    def test_concreteness_enforcement(self):
        with pytest.raises(NotConcreteError):
            no_remove("/a/*").require_concrete()

    def test_fragment_and_star(self):
        cs = constraint_set(("/a//b", "up"), ("/a[/c]", "down"))
        frag = cs.fragment()
        assert frag.descendant and frag.predicates and not frag.wildcard
        assert cs.labels() == {"a", "b", "c"}


class TestValidity:
    def test_identity_pair_always_valid(self, example21_constraints):
        tree = parse_tree("patient(visit), patient(clinicalTrial)")
        assert is_valid(tree, tree, example21_constraints)

    def test_example21_verdicts(self, figure2_instances):
        """Figure 2: (I,J) is valid for c1 and c2 but not for c3."""
        before, after = figure2_instances
        c1 = no_insert("/patient[/visit]")
        c2a, c2b = immutable("/patient[/clinicalTrial]")
        c3 = no_remove("/patient/visit")
        assert violation_of(before, after, c1) is None
        assert violation_of(before, after, c2a) is None
        assert violation_of(before, after, c2b) is None
        violation = violation_of(before, after, c3)
        assert violation is not None
        assert {n.nid for n in violation.removed} == {700107}

    def test_violation_direction_no_insert(self):
        before = parse_tree("a")
        after = parse_tree("a(b)")
        constraint = no_insert("/a/b")
        violation = violation_of(before, after, constraint)
        assert violation is not None and violation.inserted

    def test_move_preserves_identity(self):
        before = build(branch("a", branch("b", nid=333001)), branch("c"))
        after = before.copy()
        after.move(333001, next(n.nid for n in after.nodes() if n.label == "c"))
        # //b keeps the same node; /a/b loses it.
        assert violation_of(before, after, no_remove("//b")) is None
        assert violation_of(before, after, no_remove("/a/b")) is not None

    def test_fresh_replacement_is_a_removal(self):
        before = parse_tree("a(b)")
        after = before.copy()
        b = next(n.nid for n in after.nodes() if n.label == "b")
        after.relabel_fresh(b)
        assert violation_of(before, after, no_remove("/a/b")) is not None
        assert violation_of(before, after, no_insert("/a/b")) is not None

    def test_explain_collects_all(self, figure2_instances):
        before, after = figure2_instances
        cs = constraint_set(("/patient/visit", "up"), ("/patient", "up"))
        violations = explain_violations(before, after, cs)
        assert len(violations) == 1
        assert "removed" in str(violations[0])

    def test_sequence_pairwise(self):
        t0 = parse_tree("a(b)")
        t1 = t0.copy()
        b = next(n.nid for n in t1.nodes() if n.label == "b")
        t1.remove_subtree(b)
        t2 = t1.copy()
        t2.add_child(next(n.nid for n in t2.nodes() if n.label == "a"), "b")
        constraint = ConstraintSet([no_remove("/a/b")])
        problems = check_sequence([t0, t1, t2], constraint, pairwise=True)
        assert {(i, j) for i, j, _ in problems} == {(0, 1), (0, 2)}
        assert not check_sequence([t0, t1, t2], constraint, pairwise=False) == []


class TestRelative:
    def test_semantics_per_scope_node(self):
        before = build(
            branch("patient", branch("visit", nid=444001), nid=444000),
            branch("patient", nid=444002),
        )
        after = before.copy()
        after.move(444001, 444002)  # visit moved to the other patient
        absolute = no_remove("/patient/visit")
        scoped = relative("/patient", "/visit", "up")
        assert violation_of(before, after, absolute) is None
        assert not satisfies_relative(before, after, scoped)
        problems = relative_violations(before, after, scoped)
        assert problems and problems[0][0] == 444000

    def test_scope_only_on_shared_nodes(self):
        before = build(branch("patient", branch("visit")))
        after = parse_tree("patient(visit)")  # all-new nodes
        scoped = relative("/patient", "/visit", "up")
        # the old patient is not in scope of both instances: vacuously valid
        assert satisfies_relative(before, after, scoped)

    def test_example_61_same_type_failure(self):
        """Example 6.1: C implies c but the ↑ constraint alone does not."""
        from repro.implication import implies_single

        constraints, c, c3, c2rel = example_61()
        alone = implies_single(c3, c)
        assert alone.is_refuted
        # The counterexample to {c3} ⊨ c must break c1 or the relative c2.
        certificate = alone.counterexample
        assert certificate is not None
        c1 = constraints[0]
        breaks_c1 = violation_of(certificate.before, certificate.after, c1)
        breaks_c2 = not satisfies_relative(certificate.before,
                                           certificate.after, c2rel)
        assert breaks_c1 is not None or breaks_c2

    def test_example_62_stepwise_validity_gap(self):
        """Example 6.2: consecutive pairs valid, overall pair invalid."""
        constraint, sequence = example_62()
        for one, two in zip(sequence, sequence[1:], strict=False):
            assert satisfies_relative(one, two, constraint)
        assert not satisfies_relative(sequence[0], sequence[-1], constraint)

"""Canonical-form identity of constraints and the spec-string parser."""

import pytest

from repro.constraints import (
    ConstraintType,
    UpdateConstraint,
    constraint_set,
    no_insert,
    no_remove,
)
from repro.xpath import parse
from repro.xpath.ast import Axis, Pattern, Step


def unnormalized(text_a: str, text_b: str) -> Pattern:
    """A pattern /a[text_b][text_a] built with predicates out of order."""
    pred_a = parse(text_a).as_boolean()
    pred_b = parse(text_b).as_boolean()
    return Pattern((Step(Axis.CHILD, "a", (pred_b, pred_a)),))


class TestUpdateConstraintIdentity:
    def test_equality_is_canonical(self):
        assert no_remove("/a[/b][/c]") == no_remove("/a[/c][/b]")
        assert no_remove("/a[/b]") != no_remove("/a[/c]")
        assert no_remove("/a") != no_insert("/a")
        assert no_remove("/a") != "not a constraint"

    def test_hash_follows_equality(self):
        variants = {no_remove("/a[/b][/c]"), no_remove("/a[/c][/b]")}
        assert len(variants) == 1
        raw = UpdateConstraint(unnormalized("/b", "/c"), ConstraintType.NO_REMOVE)
        assert raw == no_remove("/a[/b][/c]")
        assert hash(raw) == hash(no_remove("/a[/b][/c]"))

    def test_canonical_returns_normal_form(self):
        raw = UpdateConstraint(unnormalized("/c", "/b"), ConstraintType.NO_INSERT)
        assert str(raw.canonical().range) == "/a[/b][/c]"
        already = no_insert("/a[/b]")
        assert already.canonical() == already  # parse output is already canonical
        assert str(already.canonical().range) == "/a[/b]"

    def test_repr_is_compact(self):
        assert repr(no_remove("/a/b")) == "UpdateConstraint('/a/b', NO_REMOVE)"


class TestConstraintSetIdentity:
    def test_order_and_duplicates_are_irrelevant(self):
        a = constraint_set(("/a", "up"), ("/b", "down"))
        b = constraint_set(("/b", "down"), ("/a", "up"), ("/a", "up"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_members_differ(self):
        assert constraint_set(("/a", "up")) != constraint_set(("/a", "down"))
        assert constraint_set(("/a", "up")) != "something else"

    def test_repr_round_trips_members(self):
        cs = constraint_set(("/a", "up"))
        assert repr(cs) == "ConstraintSet([UpdateConstraint('/a', NO_REMOVE)])"


class TestSpecStringParsing:
    @pytest.mark.parametrize("spec,ctype", [
        ("/a/b ^", ConstraintType.NO_REMOVE),
        ("/a/b   ↑", ConstraintType.NO_REMOVE),
        ("  /a/b v  ", ConstraintType.NO_INSERT),
        ("/a/b\t↓", ConstraintType.NO_INSERT),
    ])
    def test_whitespace_tolerant_specs(self, spec, ctype):
        (constraint,) = constraint_set(spec)
        assert constraint.type is ctype
        assert str(constraint.range) == "/a/b"

    @pytest.mark.parametrize("spec", ["/a/b", "/a/b ^ extra", "   "])
    def test_malformed_specs_raise_clearly(self, spec):
        with pytest.raises(ValueError, match="must be '<xpath> <type>'"):
            constraint_set(spec)

    def test_unknown_type_still_reported(self):
        with pytest.raises(ValueError, match="unknown constraint type"):
            constraint_set("/a/b sideways")

"""The socket front end: handshake, envelopes, robustness, durability.

The acceptance test of the server PR lives here: multiple concurrent
clients over a real socket, a ``kill -9`` (transport-level abort, journal
left exactly as the last fsync left it), and a restart that reconverges
on every acknowledged operation.  Around it, the wire-level robustness
contract — version-checked handshake, typed errors for malformed frames
and unknown kinds, per-request timeouts, bounded backpressure, graceful
shutdown draining in-flight work.

No ``pytest-asyncio`` in the toolchain: each test drives its own loop
with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

from repro.constraints import constraint_set
from repro.server import ReproClient, ReproServer
from repro.server.framing import encode_record, read_frame, write_frame
from repro.service.async_service import AsyncService
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    ImplicationQuery,
    StreamSubmit,
    response_checksum,
)
from repro.stream.ops import AddLeaf, Begin, Commit, RemoveSubtree, Rollback
from repro.trees.tree import DataTree

POLICY = constraint_set(("/patient[/clinicalTrial]", "up"),
                        ("/patient[/visit]", "down"))


def fresh_doc() -> DataTree:
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


async def dial_raw(server):
    host, port = server.address
    return await asyncio.open_connection(host, port)


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
class TestHandshake:
    def test_version_mismatch_is_refused(self):
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer, {"hello": {"protocol": 999}})
                reply = await read_frame(reader)
                eof = await read_frame(reader)
                writer.close()
                return reply, eof

        reply, eof = asyncio.run(run())
        assert "error" in reply
        assert "protocol version mismatch" in reply["error"]["message"]
        assert eof is None  # the server hung up

    def test_missing_hello_is_refused(self):
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer, {"id": 1, "body": {"request": "x"}})
                reply = await read_frame(reader)
                eof = await read_frame(reader)
                writer.close()
                return reply, eof

        reply, eof = asyncio.run(run())
        assert "error" in reply  # a frame that is not a hello is refused
        assert eof is None

    def test_matching_hello_is_answered(self):
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer,
                                  {"hello": {"protocol": PROTOCOL_VERSION}})
                reply = await read_frame(reader)
                writer.close()
                return reply

        reply = asyncio.run(run())
        assert reply["hello"]["protocol"] == PROTOCOL_VERSION


# ----------------------------------------------------------------------
# Malformed traffic -> typed errors, never a dead server
# ----------------------------------------------------------------------
class TestWireRobustness:
    def test_unknown_request_kind_gets_error_response(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                reader, writer = client._reader, client._writer
                await write_frame(writer, {"id": 9,
                                           "body": {"request": "no-such"}})
                # bypass the client plumbing: read the raw envelope
                client._reader_task.cancel()
                try:
                    await client._reader_task
                except asyncio.CancelledError:
                    pass
                frame = await read_frame(reader)
                await client.close()
                return frame

        frame = asyncio.run(run())
        assert frame["id"] == 9
        assert frame["body"]["response"] == "error"
        assert frame["body"]["error"] == "ServiceError"

    def test_envelope_without_body_gets_error_response(self):
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer,
                                  {"hello": {"protocol": PROTOCOL_VERSION}})
                await read_frame(reader)
                await write_frame(writer, {"id": 3})
                frame = await read_frame(reader)
                writer.close()
                return frame

        frame = asyncio.run(run())
        assert frame["id"] == 3
        assert frame["body"]["error"] == "ServerError"
        assert "body" in frame["body"]["message"]

    def test_non_object_frame_payload_drops_the_connection(self):
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer,
                                  {"hello": {"protocol": PROTOCOL_VERSION}})
                await read_frame(reader)
                payload = json.dumps([1, 2, 3]).encode()
                import zlib
                from repro.server.framing import HEADER
                writer.write(HEADER.pack(len(payload), zlib.crc32(payload))
                             + payload)
                await writer.drain()
                error = await read_frame(reader)
                eof = await read_frame(reader)
                writer.close()
                return error, eof

        error, eof = asyncio.run(run())
        assert error["body"]["error"] == "ServerError"
        assert eof is None

    def test_server_survives_a_dropped_connection_mid_frame(self):
        """The fault harness's mid-request drop: half a frame, then gone."""
        async def run():
            async with ReproServer() as server:
                reader, writer = await dial_raw(server)
                await write_frame(writer,
                                  {"hello": {"protocol": PROTOCOL_VERSION}})
                await read_frame(reader)
                blob = encode_record({"id": 1, "body": {"request": "x"}})
                writer.write(blob[:len(blob) // 2])
                await writer.drain()
                writer.close()  # vanish mid-frame
                await asyncio.sleep(0.05)
                # the server is still alive and serves a fresh client
                host, port = server.address
                client = await ReproClient.connect(host, port)
                ack = await client.register_constraints("p", tuple(POLICY))
                await client.close()
                return ack.to_dict()

        assert asyncio.run(run())["registered"] == "constraints"


# ----------------------------------------------------------------------
# Timeout and backpressure
# ----------------------------------------------------------------------
class _StallingService(AsyncService):
    """Implication queries never resolve — a deterministic slow request."""

    def submit(self, request):
        if isinstance(request, ImplicationQuery):
            return asyncio.get_running_loop().create_future()
        return super().submit(request)


class TestTimeouts:
    def test_slow_request_times_out_with_typed_error(self):
        async def run():
            service = _StallingService()
            async with ReproServer(service, request_timeout=0.05) as server:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                await client.register_constraints("p", tuple(POLICY))
                reply = await client.request(ImplicationQuery("p", ()))
                # the connection is still perfectly usable afterwards
                again = await client.register_constraints(
                    "p", tuple(POLICY), replace=True)
                await client.close()
                return reply, again

        reply, again = asyncio.run(run())
        assert isinstance(reply, ErrorResponse)
        assert reply.error == "TimeoutError"
        assert again.to_dict()["registered"] == "constraints"


class TestBackpressure:
    def test_overload_is_refused_not_queued(self):
        async def run():
            service = _StallingService()
            server = ReproServer(service, request_timeout=None,
                                 max_inflight=2)
            await server.start()
            try:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                stuck = [await client.submit(ImplicationQuery("p", ()))
                         for _ in range(2)]
                # the gauge is full: the next request is refused at once
                refused = await client.request(ImplicationQuery("p", ()))
                assert server.inflight == 2
                for future in stuck:
                    future.cancel()
                await client.close()
                return refused
            finally:
                # graceful close would wait forever on the stalled pair
                await server.abort()

        refused = asyncio.run(run())
        assert isinstance(refused, ErrorResponse)
        assert "overloaded" in refused.message
        assert refused.details == {"inflight": 2, "limit": 2,
                                   "overload_total": 1}


# ----------------------------------------------------------------------
# Ordering and shutdown
# ----------------------------------------------------------------------
class TestOrderingAndShutdown:
    def test_pipelined_same_document_requests_keep_order(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                await client.register_constraints("p", tuple(POLICY))
                await client.register_document("ward", fresh_doc())
                futures = [await client.submit(
                    StreamSubmit("ward", "p", (AddLeaf(5, "note"),)))
                    for _ in range(8)]
                replies = await asyncio.gather(*futures)
                await client.close()
                return [r.decisions[0].seq for r in replies]

        assert asyncio.run(run()) == list(range(8))

    def test_graceful_close_drains_in_flight_requests(self):
        async def run():
            server = ReproServer()
            await server.start()
            host, port = server.address
            client = await ReproClient.connect(host, port)
            await client.register_constraints("p", tuple(POLICY))
            await client.register_document("ward", fresh_doc())
            futures = [await client.submit(
                StreamSubmit("ward", "p", (AddLeaf(5, "note"),)))
                for _ in range(6)]
            await asyncio.sleep(0.05)  # let the reader ingest the frames
            await server.close()
            replies = await asyncio.gather(*futures)
            await client.close()
            return [r.to_dict()["response"] for r in replies]

        assert asyncio.run(run()) == ["decisions"] * 6


# ----------------------------------------------------------------------
# The acceptance test: multi-client, kill -9, recovery over the socket
# ----------------------------------------------------------------------
class TestDurableAcceptance:
    def test_two_clients_kill_dash_nine_recover(self, tmp_path):
        async def run():
            server = ReproServer.durable(tmp_path, checkpoint_every=6)
            await server.start()
            host, port = server.address
            alice = await ReproClient.connect(host, port)
            bob = await ReproClient.connect(host, port)
            await alice.register_constraints("policy", tuple(POLICY))
            await alice.register_document("ward", fresh_doc())
            await bob.register_document("clinic", fresh_doc())

            # interleaved acknowledged traffic from both clients
            checksums = []
            for i in range(9):
                ops = ((Begin(), AddLeaf(5, "note"), Commit()) if i % 3 == 0
                       else (Begin(), AddLeaf(5, "note"), Rollback())
                       if i % 3 == 1 else (AddLeaf(5, "note"),))
                a = await alice.enforce("ward", "policy", ops)
                b = await bob.enforce("clinic", "policy",
                                      (AddLeaf(5, "visit"),))
                checksums += [response_checksum(a), response_checksum(b)]
            rejected = await bob.enforce("clinic", "policy",
                                         (RemoveSubtree(8),))
            checksums.append(response_checksum(rejected))
            ward = (await alice.status("ward")).to_dict()
            clinic = (await bob.status("clinic")).to_dict()

            await server.abort()  # kill -9: no drain, no flush, no goodbye
            await alice.close()
            await bob.close()

            revived = ReproServer.durable(tmp_path, checkpoint_every=6)
            await revived.start()
            host, port = revived.address
            carol = await ReproClient.connect(host, port)
            ward2 = (await carol.status("ward")).to_dict()
            clinic2 = (await carol.status("clinic")).to_dict()
            # the recovered fleet keeps serving: same policy, same stream
            more = await carol.enforce("ward", "policy",
                                       (AddLeaf(5, "note"),))
            await carol.close()
            await revived.close()
            return (ward, clinic, ward2, clinic2, revived.recovery,
                    more.decisions[0].seq, ward["size"])

        (ward, clinic, ward2, clinic2, recovery,
         next_seq, entries) = asyncio.run(run())
        assert ward2 == ward
        assert clinic2 == clinic
        assert sorted(recovery.documents) == ["clinic", "ward"]
        assert recovery.checkpoints_used  # checkpoint_every=6 kicked in
        assert next_seq == entries  # decisions continue exactly where cut

    def test_restart_from_clean_close_also_reconverges(self, tmp_path):
        async def run():
            server = ReproServer.durable(tmp_path)
            await server.start()
            host, port = server.address
            client = await ReproClient.connect(host, port)
            await client.register_constraints("policy", tuple(POLICY))
            await client.register_document("ward", fresh_doc())
            await client.enforce("ward", "policy", (AddLeaf(5, "note"),))
            before = (await client.status("ward")).to_dict()
            await client.close()
            await server.close()  # graceful: flushed, no torn tail

            revived = ReproServer.durable(tmp_path)
            await revived.start()
            host, port = revived.address
            client = await ReproClient.connect(host, port)
            after = (await client.status("ward")).to_dict()
            await client.close()
            await revived.close()
            return before, after, revived.recovery.torn_tails

        before, after, torn = asyncio.run(run())
        assert after == before
        assert torn == []

"""The live introspection endpoint: metrics wire kind, traces, recovery.

The acceptance contract of the observability PR: a ``ReproClient.
metrics()`` call against a durable server returns a snapshot whose
journal fsync histogram, stream fast-path counters, fleet phase timings
and post-recovery ``recovery.*`` gauges are all live and correct; trace
ids round-trip through the wire envelope (error responses included); and
the endpoint stays serveable while the server refuses everything else.

Each test swaps in a fresh process-global registry *before* building its
servers (instruments are resolved at construction time), so counts here
are exact, not cumulative across tests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constraints import constraint_set
from repro.obs import MetricsRegistry, registry, set_registry
from repro.server import ReproClient, ReproServer
from repro.server.framing import read_frame, write_frame
from repro.service.async_service import AsyncService
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Ack,
    ErrorResponse,
    FleetSubmit,
    ImplicationQuery,
    MetricsSnapshot,
)
from repro.stream.ops import AddLeaf, RemoveSubtree
from repro.trees.tree import DataTree

POLICY = constraint_set(("/patient[/clinicalTrial]", "up"),
                        ("/patient[/visit]", "down"))


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def fresh_doc() -> DataTree:
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


def small_doc(root_id: int) -> DataTree:
    doc = DataTree(root_id=root_id)
    doc.add_child(root_id, "patient", nid=root_id + 1)
    return doc


# ----------------------------------------------------------------------
# The acceptance test: one snapshot, every layer visible
# ----------------------------------------------------------------------
class TestMetricsSnapshot:
    def test_durable_server_snapshot_covers_every_layer(self, tmp_path):
        async def run():
            server = ReproServer.durable(tmp_path)
            await server.start()
            try:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                await client.register_constraints("policy", tuple(POLICY))
                await client.register_document("ward", fresh_doc())
                for name, root in (("a", 100), ("b", 200)):
                    await client.register_document(name, small_doc(root))
                # the "note" label is untouched by the policy: the static
                # independence analysis serves it through the fast path
                decisions = await client.enforce(
                    "ward", "policy",
                    (AddLeaf(5, "note"), AddLeaf(5, "visit"),
                     RemoveSubtree(8)))
                fleet = await client.request(FleetSubmit(
                    ("a", "b"), "policy",
                    ((("a", (AddLeaf(101, "note"),)),),)))
                snapshot = await client.metrics()
                await client.close()
                return decisions, fleet, snapshot
            finally:
                await server.close()

        decisions, fleet, snapshot = asyncio.run(run())
        assert isinstance(snapshot, MetricsSnapshot)
        counters = snapshot.counters

        # journal: every registration/submission record was fsync'd
        assert snapshot.histogram_count("journal.fsync_seconds") > 0
        assert counters["journal.records_total"] >= 5
        assert counters["journal.bytes_written_total"] > 0

        # stream: op counters live, fast-path hits equal the decisions'
        # own independent flags
        independent = sum(d.independent for d in decisions.decisions)
        assert counters["stream.ops_total"] == 3
        assert counters["stream.independent_total"] == independent >= 1
        assert counters["stream.decisions_total"] == 3

        # fleet: one epoch went through check and apply, labelled by
        # whatever backend the environment default resolved to
        assert fleet.epochs[0].accepted
        assert counters[f"fleet.epochs_total{{backend=\"{_backend()}\"}}"] == 1
        assert snapshot.histogram_count(
            f"fleet.check_seconds{{backend=\"{_backend()}\"}}") >= 1
        assert snapshot.histogram_count(
            f"fleet.apply_seconds{{backend=\"{_backend()}\"}}") == 1

        # server: per-kind request accounting (metrics itself is served
        # out-of-band and deliberately not a "request")
        assert counters['server.requests_total{kind="stream-submit"}'] == 1
        assert counters['server.requests_total{kind="fleet-submit"}'] == 1
        assert snapshot.histogram_count(
            'server.request_seconds{kind="stream-submit"}') == 1

        # per-entity sections: live stream counters and fleet shape
        streams = dict(snapshot.streams)
        assert dict(streams["ward"])["ops"] == 3
        assert snapshot.stream_counters("ward")["ops"] == 3
        assert snapshot.stream_counters("no-such-doc") == {}
        fleets = dict(snapshot.fleets)
        (key, pairs), = fleets.items()
        assert key == "a+b"
        assert dict(pairs)["epoch"] == 1

    def test_recovery_gauges_match_the_report(self, tmp_path):
        async def run():
            server = ReproServer.durable(tmp_path)
            await server.start()
            host, port = server.address
            client = await ReproClient.connect(host, port)
            await client.register_constraints("policy", tuple(POLICY))
            await client.register_document("ward", fresh_doc())
            await client.enforce("ward", "policy", (AddLeaf(5, "note"),))
            await client.close()
            await server.close()

            revived = ReproServer.durable(tmp_path)
            await revived.start()
            host, port = revived.address
            client = await ReproClient.connect(host, port)
            snapshot = await client.metrics()
            await client.close()
            report = revived.recovery
            await revived.close()
            return snapshot, report

        snapshot, report = asyncio.run(run())
        assert report.records_replayed > 0
        gauges = snapshot.gauges
        assert gauges["recovery.documents"] == len(report.documents) == 1
        assert gauges["recovery.constraint_sets"] == len(
            report.constraint_sets) == 1
        assert gauges["recovery.records_replayed"] == report.records_replayed
        assert gauges["recovery.decisions_replayed"] == (
            report.decisions_replayed)
        assert gauges["recovery.checkpoints_used"] == len(
            report.checkpoints_used)
        assert gauges["recovery.torn_tails"] == len(report.torn_tails)

    def test_inmemory_server_serves_metrics_too(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                await client.register_constraints("policy", tuple(POLICY))
                snapshot = await client.metrics()
                await client.close()
                return snapshot

        snapshot = asyncio.run(run())
        assert isinstance(snapshot, MetricsSnapshot)
        assert snapshot.counters[
            'server.requests_total{kind="register-constraints"}'] == 1
        assert snapshot.streams == ()


def _backend() -> str:
    from repro.masks import get_backend
    return get_backend(None).name


# ----------------------------------------------------------------------
# Availability under pressure
# ----------------------------------------------------------------------
class _StallingService(AsyncService):
    """Implication queries never resolve — a deterministic slow request."""

    def submit(self, request):
        if isinstance(request, ImplicationQuery):
            return asyncio.get_running_loop().create_future()
        return super().submit(request)


class TestServeableWhileOverloaded:
    def test_metrics_answers_while_everything_else_is_refused(self):
        async def run():
            service = _StallingService()
            server = ReproServer(service, request_timeout=None,
                                 max_inflight=1)
            await server.start()
            try:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                stuck = await client.submit(ImplicationQuery("p", ()))
                refused = await client.request(ImplicationQuery("p", ()))
                snapshot = await client.metrics()
                stuck.cancel()
                await client.close()
                return refused, snapshot
            finally:
                await server.abort()

        refused, snapshot = asyncio.run(run())
        assert isinstance(refused, ErrorResponse)
        assert refused.details["overload_total"] == 1
        assert isinstance(snapshot, MetricsSnapshot)
        assert snapshot.counters["server.overload_total"] == 1
        assert snapshot.gauges["server.inflight_requests"] == 1


# ----------------------------------------------------------------------
# Trace ids through the wire envelope
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    def test_trace_echoes_on_success_and_error_frames(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(writer, {"hello": {
                    "protocol": PROTOCOL_VERSION}})
                await read_frame(reader)  # server hello
                # a well-formed request with a trace
                await write_frame(writer, {
                    "id": 1, "trace": "t-good",
                    "body": {"request": "register-constraints",
                             "name": "p", "constraints": [],
                             "replace": False}})
                ok = await read_frame(reader)
                # an unknown kind errors before reaching the service —
                # the trace must still come back on the error envelope
                await write_frame(writer, {
                    "id": 2, "trace": "t-bad",
                    "body": {"request": "no-such-kind"}})
                bad = await read_frame(reader)
                # a malformed envelope (body not an object) echoes too
                await write_frame(writer, {"id": 3, "trace": "t-ugly",
                                           "body": "nope"})
                ugly = await read_frame(reader)
                # no trace sent: no trace key answered
                await write_frame(writer, {
                    "id": 4, "body": {"request": "metrics"}})
                plain = await read_frame(reader)
                writer.close()
                return ok, bad, ugly, plain

        ok, bad, ugly, plain = asyncio.run(run())
        assert ok["trace"] == "t-good"
        assert ok["body"]["registered"] == "constraints"
        assert bad["trace"] == "t-bad"
        assert bad["body"]["response"] == "error"
        assert ugly["trace"] == "t-ugly"
        assert ugly["body"]["response"] == "error"
        assert "trace" not in plain
        assert plain["body"]["response"] == "metrics-snapshot"

    def test_client_stamps_a_trace_on_every_envelope(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                client = await ReproClient.connect(host, port)
                await client.register_constraints("p", tuple(POLICY))
                # an explicit trace rides the timeout/refusal path too
                reply = await client.request(
                    ImplicationQuery("p", ()), trace="t-mine")
                await client.close()
                return reply

        reply = asyncio.run(run())
        assert reply.to_dict()["response"] == "answers"
        # the client generated ids for both requests: one per envelope
        counters = registry().to_dict()["counters"]
        assert counters['server.requests_total{kind="implication"}'] == 1


# ----------------------------------------------------------------------
# Satellite: StreamStatus carries the stream's counters
# ----------------------------------------------------------------------
class TestStatusCarriesStats:
    def test_reconnecting_client_recovers_observability_state(self):
        async def run():
            async with ReproServer() as server:
                host, port = server.address
                first = await ReproClient.connect(host, port)
                await first.register_constraints("policy", tuple(POLICY))
                await first.register_document("ward", fresh_doc())
                await first.enforce("ward", "policy",
                                    (AddLeaf(5, "note"),
                                     AddLeaf(5, "visit"),
                                     RemoveSubtree(8)))
                await first.close()
                # a brand-new connection sees the same counters
                second = await ReproClient.connect(host, port)
                status = await second.status("ward")
                await second.close()
                return status

        status = asyncio.run(run())
        assert isinstance(status, Ack)
        stats = dict(status.stats)
        assert stats["ops"] == 3
        assert stats["accepted"] + stats["rejected"] == 3
        assert stats["entries"] == 3
        assert "independent" in stats and stats["independent"] >= 1
        assert "revision" not in stats  # snapshot-internal, not wire state


# ----------------------------------------------------------------------
# Faults lane: the endpoint survives kill -9 and recovery
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestMetricsAcrossCrash:
    def test_endpoint_serves_across_a_kill9_recover_cycle(self, tmp_path):
        async def run():
            server = ReproServer.durable(tmp_path)
            await server.start()
            host, port = server.address
            client = await ReproClient.connect(host, port)
            await client.register_constraints("policy", tuple(POLICY))
            await client.register_document("ward", fresh_doc())
            await client.enforce("ward", "policy", (AddLeaf(5, "note"),))
            before = await client.metrics()
            await server.abort()  # kill -9: no drain, no flush, no goodbye

            revived = ReproServer.durable(tmp_path)
            await revived.start()
            host, port = revived.address
            client2 = await ReproClient.connect(host, port)
            after = await client2.metrics()
            status = await client2.status("ward")
            await client2.close()
            report = revived.recovery
            await revived.close()
            return before, after, status, report

        before, after, status, report = asyncio.run(run())
        assert isinstance(before, MetricsSnapshot)
        assert isinstance(after, MetricsSnapshot)
        # the recovered process replayed the acknowledged history...
        assert report.records_replayed > 0
        gauges = after.gauges
        assert gauges["recovery.documents"] == len(report.documents) == 1
        assert gauges["recovery.records_replayed"] == report.records_replayed
        assert gauges["recovery.decisions_replayed"] == (
            report.decisions_replayed) == 1
        # ...and its per-stream counters match what the live process saw
        assert dict(dict(after.streams)["ward"]) == dict(
            dict(before.streams)["ward"])

"""Crash recovery reconverges on the live state — the core contract.

The durable server's promise: restart from the journal directory and the
recovered fleet is *indistinguishable* from the live one — same response
checksums for any continuation workload, same final documents, same
stream counters.  These tests run a seeded multi-document workload, cut
it at arbitrary points, recover into a fresh store, and drive the live
and recovered services with the identical continuation, comparing
response checksums pairwise (the same equivalence oracle the executor
suite uses).
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import constraint_set
from repro.errors import JournalCorruptError, JournalError
from repro.server.journal import ServerJournal
from repro.service.protocol import (
    RegisterConstraints,
    RegisterDocument,
    StreamStatus,
    StreamSubmit,
    response_checksum,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore
from repro.stream.ops import AddLeaf, Begin, Commit, Move, RemoveSubtree, Rollback
from repro.trees import serialize

POLICY = constraint_set(
    ("/patient[/clinicalTrial]", "up"),
    ("/patient[/clinicalTrial]", "down"),
    ("/patient[/visit]", "down"),
)

DOCS = ("ward", "clinic")


def durable_service(root, **journal_opts):
    store = DocumentStore()
    journal = ServerJournal(root, **journal_opts)
    report = journal.recover(store)
    store.attach_journal(journal)
    return ConstraintService(store=store), journal, report


def fresh_doc():
    """Every id pinned (root included): two calls build *identical* trees,
    so cross-service checksum comparisons see the same node ids."""
    from repro.trees.tree import DataTree
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "visit", nid=7)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


def register_all(svc):
    svc.handle(RegisterConstraints("policy", tuple(POLICY)))
    for doc in DOCS:
        svc.handle(RegisterDocument(doc, fresh_doc()))


def workload(seed: int, length: int):
    """A seeded request stream over both documents (ops + transactions)."""
    rng = random.Random(seed)
    requests = []
    for _ in range(length):
        doc = rng.choice(DOCS)
        roll = rng.random()
        if roll < 0.45:
            ops = (AddLeaf(5, rng.choice(["note", "visit", "clinicalTrial"])),)
        elif roll < 0.6:
            ops = (RemoveSubtree(rng.choice([7, 8])),)
        elif roll < 0.7:
            ops = (Move(7, 5),)
        elif roll < 0.85:
            ops = (Begin(), AddLeaf(5, "note"), AddLeaf(5, "visit"), Commit())
        else:
            ops = (Begin(), AddLeaf(5, "note"), Rollback())
        requests.append(StreamSubmit(doc, "policy", ops))
    return requests


def drive(svc, requests):
    """Serve a request list; returns the response checksum stream."""
    return [response_checksum(svc.handle(r)) for r in requests]


def fingerprint(svc):
    """Everything observable: per-document status + serialized trees."""
    state = {}
    for doc in DOCS:
        state[doc] = (svc.handle(StreamStatus(doc)).to_dict(),
                      serialize.to_dict(svc.store.document(doc)))
    return state


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("cut", [0, 1, 13, 29, 50])
    @pytest.mark.parametrize("checkpoint_every", [4, 1000])
    def test_recovered_equals_live_at_any_cut(self, tmp_path, cut,
                                              checkpoint_every):
        """Cut the workload anywhere; recovery must reconverge exactly.

        ``checkpoint_every=4`` exercises snapshot+replay recovery,
        ``1000`` pure journal replay — both must be invisible.
        """
        live, journal, _ = durable_service(
            tmp_path, checkpoint_every=checkpoint_every)
        register_all(live)
        requests = workload(seed=0xD1CE + cut, length=50)
        drive(live, requests[:cut])

        # fsync=True means every record is on disk the moment its request
        # was answered — recovery needs no clean shutdown (that is the
        # point); the live service carries on with its own journal.
        recovered, journal2, report = durable_service(
            tmp_path, checkpoint_every=checkpoint_every)
        assert sorted(report.documents) == sorted(DOCS)
        assert fingerprint(recovered) == fingerprint(live)

        # ...and the futures agree too: the identical continuation yields
        # bit-identical response streams on both fleets.
        continuation = requests[cut:]
        assert drive(recovered, continuation) == drive(live, continuation)
        assert fingerprint(recovered) == fingerprint(live)
        journal.close()
        journal2.close()

    def test_checkpoint_and_full_replay_agree(self, tmp_path):
        """The same history through snapshots and through pure replay."""
        a_root = tmp_path / "a"
        b_root = tmp_path / "b"
        requests = workload(seed=0xFACE, length=40)
        svc_a, ja, _ = durable_service(a_root, checkpoint_every=5)
        svc_b, jb, _ = durable_service(b_root, checkpoint_every=10 ** 6)
        register_all(svc_a)
        register_all(svc_b)
        assert drive(svc_a, requests) == drive(svc_b, requests)
        ja.close()
        jb.close()
        rec_a, ja2, rep_a = durable_service(a_root, checkpoint_every=5)
        rec_b, jb2, rep_b = durable_service(b_root, checkpoint_every=10 ** 6)
        assert rep_a.checkpoints_used and not rep_b.checkpoints_used
        assert fingerprint(rec_a) == fingerprint(rec_b) == fingerprint(svc_a)
        ja2.close()
        jb2.close()

    def test_recover_recover_is_idempotent(self, tmp_path):
        live, journal, _ = durable_service(tmp_path, checkpoint_every=3)
        register_all(live)
        drive(live, workload(seed=7, length=20))
        journal.close()
        once, j1, _ = durable_service(tmp_path, checkpoint_every=3)
        j1.close()
        twice, j2, _ = durable_service(tmp_path, checkpoint_every=3)
        assert fingerprint(once) == fingerprint(twice) == fingerprint(live)
        j2.close()

    def test_recovery_replays_decisions_bit_for_bit(self, tmp_path):
        """Sequence numbers, rejections and fast-path flags all survive."""
        live, journal, _ = durable_service(tmp_path, checkpoint_every=1000)
        register_all(live)
        drive(live, workload(seed=3, length=25))
        _, live_enf = live.store.live_stream("ward")
        live_trail = [str(d) for d in live_enf.audit]
        journal.close()
        recovered, j2, _ = durable_service(tmp_path, checkpoint_every=1000)
        _, rec_enf = recovered.store.live_stream("ward")
        assert [str(d) for d in rec_enf.audit] == live_trail
        j2.close()

    def test_replaced_set_interleaving_recovers_in_order(self, tmp_path):
        """A set replacement between submissions lands at the right lsn.

        Replacing a constraint set drops the live streams enforcing it;
        submissions after the replacement open a *fresh* stream with a
        fresh baseline.  Only the global lsn order reconstructs that
        correctly — per-file replay would reopen the stream against the
        wrong policy epoch.
        """
        live, journal, _ = durable_service(tmp_path, checkpoint_every=1000)
        register_all(live)
        first = [StreamSubmit("ward", "policy", (AddLeaf(5, "note"),)),
                 StreamSubmit("ward", "policy", (RemoveSubtree(7),))]
        drive(live, first)
        live.handle(RegisterConstraints(
            "policy", tuple(constraint_set(("/patient[/note]", "down"))),
            replace=True))
        second = [StreamSubmit("ward", "policy", (AddLeaf(5, "note"),)),
                  StreamSubmit("ward", "policy", (AddLeaf(5, "visit"),))]
        drive(live, second)

        recovered, j2, _ = durable_service(tmp_path, checkpoint_every=1000)
        assert fingerprint(recovered) == fingerprint(live)
        # the post-replacement policy epoch governs both fleets alike:
        # notes are now frozen (rejected), visits free (accepted) — on the
        # clinic document, untouched so far, with identical checksums.
        tail = [StreamSubmit("clinic", "policy", (AddLeaf(5, "note"),)),
                StreamSubmit("clinic", "policy", (AddLeaf(5, "visit"),))]
        assert drive(recovered, tail) == drive(live, tail)
        note, visit = (recovered.store.live_stream("clinic")[1]
                       .audit.entries[-2:])
        assert note.rejected and visit.accepted
        journal.close()
        j2.close()


class TestRecoveryRefusals:
    def test_corrupt_history_refuses_loudly(self, tmp_path):
        from repro.server.faults import flip_byte
        live, journal, _ = durable_service(tmp_path, checkpoint_every=1000)
        register_all(live)
        drive(live, workload(seed=1, length=5))
        journal.close()
        flip_byte(journal.doc_journal_path("ward"), offset=20)
        with pytest.raises(JournalCorruptError):
            durable_service(tmp_path, checkpoint_every=1000)

    def test_submissions_without_registration_refuse(self, tmp_path):
        from repro.server.framing import encode_record
        doc_dir = tmp_path / "docs" / "doc-ghost"
        doc_dir.mkdir(parents=True)
        (doc_dir / "journal").write_bytes(encode_record(
            {"kind": "submit", "lsn": 1, "set": "policy", "ops": []}))
        with pytest.raises(JournalError):
            durable_service(tmp_path)

    def test_unknown_record_kind_refuses(self, tmp_path):
        from repro.server.framing import encode_record
        doc_dir = tmp_path / "docs" / "doc-ghost"
        doc_dir.mkdir(parents=True)
        (doc_dir / "journal").write_bytes(
            encode_record({"kind": "document", "lsn": 1, "name": "ghost",
                           "tree": serialize.to_dict(fresh_doc())}) +
            encode_record({"kind": "mystery", "lsn": 2}))
        with pytest.raises(JournalError):
            durable_service(tmp_path)

    def test_checkpoint_naming_unregistered_set_refuses(self, tmp_path):
        live, journal, _ = durable_service(tmp_path, checkpoint_every=1)
        register_all(live)
        drive(live, workload(seed=2, length=3))
        journal.close()
        journal.sets_journal_path.write_bytes(b"")  # lose the registrations
        with pytest.raises(JournalError):
            durable_service(tmp_path, checkpoint_every=1)


class TestDocumentNames:
    @pytest.mark.parametrize("name", ["plain", "with space", "slash/y",
                                      "dots..", "unicode-ä", "%41%2F"])
    def test_names_round_trip_through_the_filesystem(self, tmp_path, name):
        live, journal, _ = durable_service(tmp_path)
        live.handle(RegisterConstraints("policy", tuple(POLICY)))
        live.handle(RegisterDocument(name, fresh_doc()))
        live.handle(StreamSubmit(name, "policy", (AddLeaf(5, "note"),)))
        journal.close()
        recovered, j2, report = durable_service(tmp_path)
        assert report.documents == [name]
        status = recovered.handle(StreamStatus(name)).to_dict()
        assert status["size"] == 1
        j2.close()

"""Certified templates survive crashes: journal, replay, checkpoints.

Three durability contracts stack here.  First, a certified registration
is a ``sets.journal`` record, so after any crash — clean close or a
kill -9 modelled by :meth:`~repro.server.journal.ServerJournal.
simulate_power_loss` — recovery re-certifies the template from its wire
form and the verdict reproduces (``certify`` is deterministic over the
template/set pair).  Second, a ``certified`` document-journal record
replays through :meth:`~repro.stream.engine.StreamEnforcer.
apply_certified` with the pinned ops, so the recovered stream's
decisions, counters and ``certified`` accounting are bit-identical to
the live fleet's.  Third, checkpoints snapshot the enforcer *after*
certified brackets, so snapshot+replay and pure replay agree.
"""

from __future__ import annotations

import pytest

from repro.certify import (
    LabelHole,
    NodeHole,
    TemplateAdd,
    UpdateTemplate,
)
from repro.constraints import constraint_set
from repro.server.journal import ServerJournal
from repro.service.protocol import (
    CertifiedSubmit,
    RegisterConstraints,
    RegisterDocument,
    RegisterTemplate,
    StreamStatus,
    StreamSubmit,
    response_checksum,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore
from repro.stream.ops import AddLeaf, Begin, Commit
from repro.trees import serialize
from repro.xpath.parser import parse

POLICY = constraint_set(
    ("/patient/visit", "down"),
    ("/patient[/clinicalTrial]", "up"),
)

ANNOTATE = UpdateTemplate("annotate", (
    TemplateAdd(NodeHole("p", parse("//patient")),
                LabelHole("l", frozenset({"note", "memo"}))),
))


def durable_service(root, **journal_opts):
    store = DocumentStore()
    journal = ServerJournal(root, **journal_opts)
    report = journal.recover(store)
    store.attach_journal(journal)
    return ConstraintService(store=store), journal, report


def fresh_doc():
    """Every id pinned (root included) so recovered ids line up."""
    from repro.trees.tree import DataTree
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "visit", nid=7)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


def register_all(svc):
    svc.handle(RegisterConstraints("policy", tuple(POLICY)))
    svc.handle(RegisterDocument("ward", fresh_doc()))
    svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))


def fingerprint(svc):
    """Everything observable about the ward stream, plus the templates."""
    return (svc.handle(StreamStatus("ward")).to_dict(),
            serialize.to_dict(svc.store.document("ward")),
            svc.store.templates())


def submit(svc, label="note", node=5):
    return svc.handle(CertifiedSubmit("ward", "policy", "annotate",
                                      (("l", label), ("p", node))))


class TestCertifiedRecovery:
    def test_template_survives_a_clean_restart(self, tmp_path):
        live, journal, _ = durable_service(tmp_path)
        register_all(live)
        journal.close()
        recovered, j2, _ = durable_service(tmp_path)
        assert recovered.store.templates() == ["annotate"]
        # ...and it is immediately usable, no re-registration needed.
        response = submit(recovered)
        assert [d.accepted for d in response.decisions] == [True] * 3
        j2.close()

    def test_recovery_recertifies_from_the_wire_form(self, tmp_path):
        """Replay goes through ``add_template`` — the recovered store
        holds a real certificate, not a trust-me flag."""
        live, journal, _ = durable_service(tmp_path)
        register_all(live)
        journal.close()
        recovered, j2, _ = durable_service(tmp_path)
        template, outcome = recovered.store.template("annotate", "policy")
        assert template == ANNOTATE
        assert outcome.certified
        assert outcome.certificate.template_key == ANNOTATE.canonical_key()
        j2.close()

    @pytest.mark.parametrize("checkpoint_every", [2, 1000])
    def test_kill_dash_nine_after_certified_submissions(self, tmp_path,
                                                        checkpoint_every):
        """The issue's quickstart, as a test: certify, register, submit,
        pull the plug, recover — state, counters and the certificate all
        reconverge, and continuations are bit-identical."""
        live, journal, _ = durable_service(
            tmp_path, checkpoint_every=checkpoint_every)
        register_all(live)
        submit(live, "note")
        submit(live, "memo")
        live.handle(StreamSubmit("ward", "policy", (AddLeaf(5, "note"),)))
        before = fingerprint(live)
        journal.simulate_power_loss()  # kill -9; fsync=True ⇒ no loss

        recovered, j2, _ = durable_service(
            tmp_path, checkpoint_every=checkpoint_every)
        assert fingerprint(recovered) == before
        status = recovered.handle(StreamStatus("ward")).to_dict()
        assert dict(status["stats"])["certified"] == 2
        # The futures agree: same certified continuation, same wire bytes
        # (modulo the fresh leaf id, which recovery's counter pins next).
        tail = submit(recovered, "note", node=5)
        assert [d.accepted for d in tail.decisions] == [True] * 3
        j2.close()

    def test_recovered_decisions_are_bit_identical(self, tmp_path):
        """Audit trails — seq numbers, txn ids, notes — replay exactly."""
        live, journal, _ = durable_service(tmp_path, checkpoint_every=1000)
        register_all(live)
        live.handle(StreamSubmit("ward", "policy", (AddLeaf(5, "note"),)))
        submit(live, "memo")
        live.handle(StreamSubmit("ward", "policy", (
            Begin(), AddLeaf(5, "note"), Commit())))
        submit(live, "note", node=5)
        _, live_enf = live.store.live_stream("ward")
        live_trail = [str(d) for d in live_enf.audit]
        journal.simulate_power_loss()

        recovered, j2, _ = durable_service(tmp_path, checkpoint_every=1000)
        _, rec_enf = recovered.store.live_stream("ward")
        assert [str(d) for d in rec_enf.audit] == live_trail
        assert rec_enf.stats.wire_pairs() == live_enf.stats.wire_pairs()
        j2.close()

    def test_checkpoint_and_pure_replay_agree_on_certified(self, tmp_path):
        """The same certified-heavy history through snapshots and through
        pure journal replay lands on the same fleet."""
        roots = (tmp_path / "snap", tmp_path / "replay")
        fleets = []
        for root, every in zip(roots, (1, 10 ** 6)):
            svc, journal, _ = durable_service(root, checkpoint_every=every)
            register_all(svc)
            checksums = [response_checksum(submit(svc, label))
                         for label in ("note", "memo", "note")]
            fleets.append((svc, journal, checksums))
        (snap, ja, ca), (replay, jb, cb) = fleets
        assert ca == cb
        ja.close()
        jb.close()
        rec_a, ja2, rep_a = durable_service(roots[0], checkpoint_every=1)
        rec_b, jb2, rep_b = durable_service(roots[1],
                                            checkpoint_every=10 ** 6)
        assert rep_a.checkpoints_used and not rep_b.checkpoints_used
        assert fingerprint(rec_a) == fingerprint(rec_b) == fingerprint(snap)
        ja2.close()
        jb2.close()

    def test_set_replacement_drops_templates_across_recovery(self,
                                                             tmp_path):
        """Dropping a set invalidates its certificates; recovery must
        honour the replacement's lsn position, not resurrect them."""
        live, journal, _ = durable_service(tmp_path)
        register_all(live)
        submit(live)
        live.handle(RegisterConstraints(
            "policy", tuple(constraint_set(("/patient", "up"))),
            replace=True))
        assert live.store.templates() == []
        journal.close()
        recovered, j2, _ = durable_service(tmp_path)
        assert recovered.store.templates() == []
        response = submit(recovered)
        assert "unknown certified template" in response.message
        j2.close()

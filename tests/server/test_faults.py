"""Deterministic crash and corruption injection (``-m faults``).

Every failure mode the journal claims to survive is provoked here at an
exact durability point and the recovery contract checked against a clean
reference service driven over the same accepted prefix:

* a crash *before* fsync loses exactly the unacknowledged operation;
* a crash *after* fsync keeps it, acknowledged or not;
* a torn tail is truncated in place and the server carries on;
* corrupt committed history refuses loudly — never a silent divergence;
* a crash anywhere inside the checkpoint/compact dance leaves either
  the old snapshot or the new one, never a torn in-between.

The reference oracle is the same one ``test_recovery`` uses: a second
durable service (journals pin leaf ids; a plain in-memory service would
allocate different node ids) replaying the accepted prefix.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.constraints import constraint_set
from repro.errors import JournalCorruptError
from repro.server import ReproClient, ReproServer
from repro.server.faults import CrashSchedule, SimulatedCrash, flip_byte, tear_tail
from repro.server.framing import encode_record, scan_records
from repro.server.journal import ServerJournal
from repro.service.protocol import (
    RegisterConstraints,
    RegisterDocument,
    StreamStatus,
    StreamSubmit,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore
from repro.stream.ops import AddLeaf, Begin, Commit, RemoveSubtree, Rollback
from repro.trees import serialize
from repro.trees.tree import DataTree

pytestmark = pytest.mark.faults

POLICY = constraint_set(("/patient[/clinicalTrial]", "up"),
                        ("/patient[/visit]", "down"))

SUBMITS = [
    (AddLeaf(5, "note"),),
    (Begin(), AddLeaf(5, "visit"), Commit()),
    (RemoveSubtree(7),),
    (AddLeaf(5, "note"),),
    (Begin(), AddLeaf(5, "note"), Rollback()),
    (AddLeaf(5, "visit"),),
]


def fresh_doc() -> DataTree:
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "visit", nid=7)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


def durable_service(root, **journal_opts):
    store = DocumentStore()
    journal = ServerJournal(root, **journal_opts)
    report = journal.recover(store)
    store.attach_journal(journal)
    return ConstraintService(store=store), journal, report


def boot(root, **journal_opts):
    """A registered durable service; faults are armed *after* set-up so
    crash ordinals count submissions, not registration records."""
    svc, journal, report = durable_service(root, **journal_opts)
    svc.handle(RegisterConstraints("policy", tuple(POLICY)))
    svc.handle(RegisterDocument("ward", fresh_doc()))
    return svc, journal, report


def drive(svc, count: int) -> None:
    for ops in SUBMITS[:count]:
        svc.handle(StreamSubmit("ward", "policy", ops))


def fingerprint(svc) -> tuple:
    return (svc.handle(StreamStatus("ward")).to_dict(),
            serialize.to_dict(svc.store.document("ward")))


def reference(root, count: int) -> tuple:
    """What the state after ``count`` accepted submissions must look like."""
    svc, journal, _ = boot(root)
    drive(svc, count)
    journal.close()
    return fingerprint(svc)


# ----------------------------------------------------------------------
# The kill-between-fsync window
# ----------------------------------------------------------------------
class TestKillBetweenFsync:
    def test_crash_before_fsync_loses_only_the_unacked_op(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        drive(svc, 2)
        journal.faults = crash = CrashSchedule("journal-write")
        with pytest.raises(SimulatedCrash):
            svc.handle(StreamSubmit("ward", "policy", SUBMITS[2]))
        journal.simulate_power_loss()  # un-fsync'd bytes vanish
        assert crash.fired and crash.seen == ["journal-write"]

        recovered, j2, report = durable_service(tmp_path / "crash")
        # the record for submission #3 was written but never fsync'd: a
        # power cut takes it back, and with it nothing else.
        assert fingerprint(recovered) == reference(tmp_path / "ref", 2)
        # ...and the revived journal keeps accepting work where it left off
        drive_from = SUBMITS[2:3]
        for ops in drive_from:
            recovered.handle(StreamSubmit("ward", "policy", ops))
        assert fingerprint(recovered) == reference(tmp_path / "ref3", 3)
        j2.close()

    def test_crash_after_fsync_keeps_the_op(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        drive(svc, 2)
        journal.faults = CrashSchedule("journal-fsync")
        with pytest.raises(SimulatedCrash):
            svc.handle(StreamSubmit("ward", "policy", SUBMITS[2]))
        journal.simulate_power_loss()

        recovered, j2, _ = durable_service(tmp_path / "crash")
        # fsync won the race: the op is durable even though its response
        # never went out — at-most-once on the wire, exactly-once on disk.
        assert fingerprint(recovered) == reference(tmp_path / "ref", 3)
        j2.close()

    def test_no_fsync_mode_may_take_back_acknowledged_ops(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash", fsync=False)
        synced_at = 2
        drive(svc, synced_at)
        journal.sync()  # explicit durability line in the sand
        drive_more = SUBMITS[synced_at:4]
        for ops in drive_more:
            svc.handle(StreamSubmit("ward", "policy", ops))
        journal.simulate_power_loss()

        recovered, j2, _ = durable_service(tmp_path / "crash")
        assert fingerprint(recovered) == reference(tmp_path / "ref",
                                                   synced_at)
        j2.close()


# ----------------------------------------------------------------------
# Torn tails and rotten history
# ----------------------------------------------------------------------
class TestTornTail:
    def test_torn_tail_is_truncated_and_survived(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        drive(svc, 4)
        journal.close()
        path = journal.doc_journal_path("ward")
        tear_tail(path, drop=7)  # interrupted append: half a record

        recovered, j2, report = durable_service(tmp_path / "crash")
        assert [p for p, _ in report.torn_tails] == [str(path)]
        # the torn record was submission #4; everything before it holds
        assert fingerprint(recovered) == reference(tmp_path / "ref", 3)
        j2.close()

        # the tail was physically repaired: a second recovery is clean
        again, j3, report2 = durable_service(tmp_path / "crash")
        assert report2.torn_tails == []
        assert fingerprint(again) == fingerprint(recovered)
        j3.close()

    def test_tail_torn_down_to_mid_header_is_survived(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        drive(svc, 2)
        journal.close()
        path = journal.doc_journal_path("ward")
        size = path.stat().st_size
        records, _ = scan_records(path.read_bytes(), path=str(path))
        last = len(encode_record(records[-1]))
        tear_tail(path, drop=last - 3)  # 3 bytes of header survive

        recovered, j2, report = durable_service(tmp_path / "crash")
        assert report.torn_tails == [(str(path), 3)]  # 3 dangling bytes
        assert fingerprint(recovered) == reference(tmp_path / "ref", 1)
        assert path.stat().st_size == size - last
        j2.close()


class TestCorruptHistory:
    def test_flipped_byte_mid_history_refuses_loudly(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        drive(svc, 4)
        journal.close()
        path = journal.doc_journal_path("ward")
        flip_byte(path, offset=30)

        with pytest.raises(JournalCorruptError) as err:
            durable_service(tmp_path / "crash")
        assert err.value.path == str(path)
        assert err.value.offset is not None

    def test_corruption_in_the_sets_journal_refuses_too(self, tmp_path):
        svc, journal, _ = boot(tmp_path / "crash")
        journal.close()
        flip_byte(journal.sets_journal_path, offset=12)
        with pytest.raises(JournalCorruptError):
            durable_service(tmp_path / "crash")


# ----------------------------------------------------------------------
# Crashes inside the checkpoint/compact dance
# ----------------------------------------------------------------------
class TestCheckpointCrashes:
    @pytest.mark.parametrize("point,uses_checkpoint", [
        ("checkpoint-write", False),   # tmp written, never renamed in
        ("checkpoint-rename", True),   # new snapshot in place, journal full
        ("compact", True),             # snapshot + compacted journal
    ])
    def test_crash_mid_checkpoint_reconverges(self, tmp_path, point,
                                              uses_checkpoint):
        svc, journal, _ = boot(tmp_path / "crash", checkpoint_every=3)
        drive(svc, 2)
        journal.faults = CrashSchedule(point)
        # submission #3 is journaled (durably) and then trips the
        # checkpoint, which crashes at the parametrized instant
        with pytest.raises(SimulatedCrash):
            svc.handle(StreamSubmit("ward", "policy", SUBMITS[2]))
        journal.simulate_power_loss()

        recovered, j2, report = durable_service(tmp_path / "crash",
                                                checkpoint_every=3)
        assert bool(report.checkpoints_used) == uses_checkpoint
        assert report.torn_tails == []
        assert fingerprint(recovered) == reference(tmp_path / "ref", 3)
        j2.close()

    @pytest.mark.parametrize("point", ["checkpoint-write",
                                       "checkpoint-rename", "compact"])
    def test_checkpoint_on_disk_is_never_torn(self, tmp_path, point):
        svc, journal, _ = boot(tmp_path / "crash", checkpoint_every=3)
        drive(svc, 2)
        journal.faults = CrashSchedule(point)
        with pytest.raises(SimulatedCrash):
            svc.handle(StreamSubmit("ward", "policy", SUBMITS[2]))
        journal.simulate_power_loss()

        checkpoint = journal.doc_checkpoint_path("ward")
        if checkpoint.exists():
            blob = checkpoint.read_bytes()
            records, good = scan_records(blob, path=str(checkpoint))
            assert good == len(blob) and len(records) == 1
            assert records[0]["kind"] == "checkpoint"

    def test_second_crash_during_recovery_checkpointing_is_safe(
            self, tmp_path):
        """Crash, recover, crash again mid-checkpoint, recover again."""
        svc, journal, _ = boot(tmp_path / "crash", checkpoint_every=3)
        drive(svc, 2)
        journal.faults = CrashSchedule("checkpoint-rename")
        with pytest.raises(SimulatedCrash):
            svc.handle(StreamSubmit("ward", "policy", SUBMITS[2]))
        journal.simulate_power_loss()

        once, j2, _ = durable_service(tmp_path / "crash", checkpoint_every=3)
        j2.faults = CrashSchedule("checkpoint-write")
        with pytest.raises(SimulatedCrash):
            # three more submissions trip the next checkpoint
            for ops in SUBMITS[3:6]:
                once.handle(StreamSubmit("ward", "policy", ops))
        j2.simulate_power_loss()

        twice, j3, _ = durable_service(tmp_path / "crash",
                                       checkpoint_every=3)
        assert fingerprint(twice) == reference(tmp_path / "ref", 6)
        j3.close()


# ----------------------------------------------------------------------
# The same story through the socket
# ----------------------------------------------------------------------
class TestSocketFaults:
    def test_mid_request_drop_leaves_acknowledged_work_durable(
            self, tmp_path):
        """One client vanishes mid-frame; another's acked writes hold."""
        from repro.server.framing import encode_record, write_frame
        from repro.service.protocol import PROTOCOL_VERSION

        async def run():
            server = ReproServer.durable(tmp_path / "crash")
            await server.start()
            host, port = server.address
            good = await ReproClient.connect(host, port)
            await good.register_constraints("policy", tuple(POLICY))
            await good.register_document("ward", fresh_doc())
            for ops in SUBMITS[:3]:
                await good.enforce("ward", "policy", ops)

            # a second client dies halfway through a submission frame
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(writer, {"hello": {"protocol":
                                                 PROTOCOL_VERSION}})
            await reader.readexactly(8)  # its hello echo header
            blob = encode_record({"id": 1, "body": StreamSubmit(
                "ward", "policy", SUBMITS[3]).to_dict()})
            writer.write(blob[:len(blob) - 4])
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.02)

            await server.abort()  # and then the machine dies too
            await good.close()

            recovered, j2, report = durable_service(tmp_path / "crash")
            state = fingerprint(recovered)
            j2.close()
            return state, report

        state, report = asyncio.run(run())
        # the half-submitted frame never became a request, let alone a
        # journal record: exactly the three acknowledged submissions live
        assert state == reference(tmp_path / "ref", 3)
        assert report.torn_tails == []

"""The journal layer: record framing, durability hooks, checkpoints.

Covers the on-disk format contract (CRC-framed records, torn-tail vs
corrupt-history semantics), the write-through hooks a journaled store
runs on every mutation, leaf-id pinning at the durable boundary, and
checkpoint/compaction mechanics.  End-to-end crash recovery lives in
``test_recovery.py``; injected faults in ``test_faults.py``.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.errors import JournalCorruptError, JournalError, ServerError
from repro.server.framing import HEADER, MAX_PAYLOAD, encode_record, scan_records
from repro.server.journal import ServerJournal
from repro.service.protocol import (
    RegisterConstraints,
    RegisterDocument,
    StreamSubmit,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore
from repro.stream.ops import AddLeaf, Begin, Commit, op_from_dict
from repro.constraints import constraint_set
from repro.trees import build, branch
from repro.trees.tree import DataTree

POLICY = constraint_set(("/patient[/clinicalTrial]", "up"),
                        ("/patient[/visit]", "down"))


def durable_service(root, **journal_opts):
    """A service whose store journals to ``root`` (recover-then-attach)."""
    store = DocumentStore()
    journal = ServerJournal(root, **journal_opts)
    report = journal.recover(store)
    store.attach_journal(journal)
    return ConstraintService(store=store), journal, report


def ward_doc() -> DataTree:
    return build(branch("patient", branch("clinicalTrial", nid=11), nid=10))


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------
class TestRecordFraming:
    def test_round_trip(self):
        records = [{"kind": "a", "n": 1}, {"kind": "b", "deep": {"x": [1, 2]}}]
        blob = b"".join(encode_record(r) for r in records)
        decoded, good = scan_records(blob)
        assert decoded == records
        assert good == len(blob)

    def test_empty(self):
        assert scan_records(b"") == ([], 0)

    def test_torn_header_is_clean_cut(self):
        blob = encode_record({"kind": "a"})
        torn = blob + b"\x00\x01\x02"  # 3 bytes of a next header
        records, good = scan_records(torn)
        assert records == [{"kind": "a"}]
        assert good == len(blob)

    def test_torn_payload_is_clean_cut(self):
        first = encode_record({"kind": "a"})
        second = encode_record({"kind": "b", "pad": "x" * 100})
        torn = first + second[:-7]
        records, good = scan_records(torn)
        assert records == [{"kind": "a"}]
        assert good == len(first)

    def test_corrupt_crc_raises(self):
        blob = bytearray(encode_record({"kind": "a", "pad": "xxxx"}))
        blob[HEADER.size + 2] ^= 0xFF  # flip a payload byte
        with pytest.raises(JournalCorruptError) as err:
            scan_records(bytes(blob), path="j")
        assert err.value.path == "j"
        assert err.value.offset == 0

    def test_corrupt_second_record_names_offset(self):
        first = encode_record({"kind": "a"})
        second = bytearray(encode_record({"kind": "b"}))
        second[-1] ^= 0x01
        with pytest.raises(JournalCorruptError) as err:
            scan_records(first + bytes(second))
        assert err.value.offset == len(first)

    def test_absurd_length_field_is_corrupt(self):
        payload = b"{}"
        blob = HEADER.pack(MAX_PAYLOAD + 1, zlib.crc32(payload)) + payload
        with pytest.raises(JournalCorruptError):
            scan_records(blob)

    def test_crc_valid_but_not_json_is_corrupt(self):
        payload = b"not json"
        blob = HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(JournalCorruptError):
            scan_records(blob)

    def test_oversize_record_refused_at_write(self):
        with pytest.raises(ServerError):
            encode_record({"pad": "x" * (MAX_PAYLOAD + 1)})


# ----------------------------------------------------------------------
# Write-through hooks
# ----------------------------------------------------------------------
class TestWriteThrough:
    def test_registrations_and_submissions_are_journaled(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.close()

        sets, _ = scan_records(journal.sets_journal_path.read_bytes())
        assert [r["kind"] for r in sets] == ["constraints"]
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document", "submit"]
        # lsns are globally monotone across files
        all_lsns = [r["lsn"] for r in sets + doc]
        assert sorted(all_lsns) == sorted(set(all_lsns))

    def test_empty_submission_writes_no_record(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        svc.handle(StreamSubmit("ward", "policy", ()))
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document"]

    def test_unpinned_leaf_ids_are_pinned_in_the_journal(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        tree = ward_doc()
        start = max(tree.node_ids()) + 1  # the root id is auto-allocated
        svc.handle(RegisterDocument("ward", tree))
        svc.handle(StreamSubmit("ward", "policy",
                                (AddLeaf(10, "note"), AddLeaf(10, "visit"))))
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        ops = [op_from_dict(d) for d in doc[-1]["ops"]]
        assert [op.nid for op in ops] == [start, start + 1]

    def test_rejected_submission_is_still_journaled(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        reply = svc.handle(StreamSubmit("ward", "policy",
                                        (AddLeaf(10, "visit"),)))
        assert reply.decisions[0].accepted is False  # no-insert on visit
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document", "submit"]

    def test_protocol_error_journals_the_applied_prefix(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        # Commit outside a transaction raises after the first op applied.
        reply = svc.handle(StreamSubmit("ward", "policy",
                                        (AddLeaf(10, "note"), Commit())))
        assert reply.to_dict()["response"] == "error"
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert doc[-1]["kind"] == "submit"
        assert len(doc[-1]["ops"]) == 1  # only the applied prefix

    def test_replace_registration_resets_the_journal(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        svc.handle(RegisterDocument("ward", ward_doc(), replace=True))
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document"]
        assert doc[0]["replace"] is True

    def test_closed_journal_refuses_appends(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path)
        journal.close()
        with pytest.raises(JournalError):
            journal.constraints_registered("p", (), False)


# ----------------------------------------------------------------------
# Checkpoints and compaction
# ----------------------------------------------------------------------
class TestCheckpoints:
    def register(self, svc):
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))

    def test_checkpoint_compacts_the_journal(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, checkpoint_every=3)
        self.register(svc)
        for _ in range(3):
            svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.close()
        assert journal.doc_checkpoint_path("ward").exists()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert doc == []  # everything covered by the checkpoint

    def test_records_after_checkpoint_survive(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, checkpoint_every=3)
        self.register(svc)
        for _ in range(5):
            svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.close()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["submit", "submit"]

    def test_no_checkpoint_inside_open_transaction(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, checkpoint_every=2)
        self.register(svc)
        svc.handle(StreamSubmit("ward", "policy",
                                (Begin(), AddLeaf(10, "note"))))
        # the due checkpoint was skipped: the bracket is still open
        assert not journal.doc_checkpoint_path("ward").exists()
        svc.handle(StreamSubmit("ward", "policy", (Commit(),)))
        assert journal.doc_checkpoint_path("ward").exists()
        journal.close()

    def test_checkpoint_bounds_the_audit_trail(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, checkpoint_every=4,
                                          audit_keep=2)
        self.register(svc)
        for _ in range(4):
            svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        _, enforcer = svc.store.live_stream("ward")
        assert len(enforcer.audit) == 4          # total length is kept
        assert len(enforcer.audit.entries) == 2  # retained suffix bounded
        assert enforcer.audit.dropped == 2
        journal.close()

    def test_checkpoint_is_a_single_valid_record(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, checkpoint_every=1)
        self.register(svc)
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.close()
        blob = journal.doc_checkpoint_path("ward").read_bytes()
        records, good = scan_records(blob)
        assert good == len(blob)
        (record,) = records
        assert record["kind"] == "checkpoint"
        assert record["doc"] == "ward"
        assert record["set"] == "policy"
        assert record["state"]["version"] == 1
        json.dumps(record)  # JSON-safe throughout


# ----------------------------------------------------------------------
# fsync bookkeeping
# ----------------------------------------------------------------------
class TestPowerLossModel:
    def test_no_fsync_means_unsynced_bytes_vanish(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, fsync=False)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.simulate_power_loss()
        assert journal.doc_journal_path("ward").read_bytes() == b""
        assert journal.sets_journal_path.read_bytes() == b""

    def test_explicit_sync_pins_the_bytes(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, fsync=False)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        journal.sync()
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.simulate_power_loss()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document"]  # submit vanished

    def test_fsync_on_means_nothing_vanishes(self, tmp_path):
        svc, journal, _ = durable_service(tmp_path, fsync=True)
        svc.handle(RegisterConstraints("policy", tuple(POLICY)))
        svc.handle(RegisterDocument("ward", ward_doc()))
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(10, "note"),)))
        journal.simulate_power_loss()
        doc, _ = scan_records(journal.doc_journal_path("ward").read_bytes())
        assert [r["kind"] for r in doc] == ["document", "submit"]

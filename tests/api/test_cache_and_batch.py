"""Unit tests for the memo cache and the batch report container."""

import pytest

from repro.api.batch import BatchReport, run_batch
from repro.caching import LRUMemo
from repro.constraints import no_insert
from repro.implication.result import implied, not_implied
from repro.constraints import ConstraintSet


class TestLRUMemo:
    def test_hit_miss_accounting(self):
        memo = LRUMemo(maxsize=4)
        calls = []
        value = memo.get_or_compute("k", lambda: calls.append(1) or 41)
        again = memo.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == again == 41
        assert len(calls) == 1
        assert memo.stats.hits == 1 and memo.stats.misses == 1
        assert memo.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        memo = LRUMemo(maxsize=2)
        memo.get_or_compute("a", lambda: 1)
        memo.get_or_compute("b", lambda: 2)
        memo.get_or_compute("a", lambda: None)   # refresh a
        memo.get_or_compute("c", lambda: 3)      # evicts b, not a
        assert "a" in memo and "c" in memo and "b" not in memo

    def test_disabled_cache_always_recomputes(self):
        memo = LRUMemo(maxsize=0)
        assert not memo.enabled
        values = [memo.get_or_compute("k", lambda: object()) for _ in range(3)]
        assert len({id(v) for v in values}) == 3
        assert memo.stats.hits == 0 and memo.stats.misses == 3

    def test_unbounded_cache(self):
        memo = LRUMemo(maxsize=None)
        for i in range(100):
            memo.get_or_compute(i, lambda i=i: i)
        assert len(memo) == 100

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUMemo(maxsize=-1)

    def test_clear(self):
        memo = LRUMemo(maxsize=4)
        memo.get_or_compute("k", lambda: 1)
        memo.clear()
        assert "k" not in memo and len(memo) == 0


class TestBatchReport:
    def _result(self, ok: bool):
        premises = ConstraintSet([])
        conclusion = no_insert("/a")
        return (implied("t", premises, conclusion) if ok
                else not_implied("t", premises, conclusion))

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            BatchReport((no_insert("/a"),), ())

    def test_counts_and_iteration(self):
        conclusions = (no_insert("/a"), no_insert("/b"), no_insert("/c"))
        results = (self._result(True), self._result(False), None)
        report = BatchReport(conclusions, results)
        assert report.implied_count == 1
        assert report.refuted_count == 1
        assert report.skipped_count == 1
        assert report.unknown_count == 0
        assert list(report)[0] == (conclusions[0], results[0])
        assert "skipped" in str(report)

    def test_run_batch_fail_fast(self):
        answers = {"/a": True, "/b": False, "/c": True}

        def decide(conclusion):
            return self._result(answers[str(conclusion.range)])

        report = run_batch(decide, [no_insert("/a"), no_insert("/b"),
                                    no_insert("/c")], fail_fast=True)
        assert report[1].is_refuted and report[2] is None


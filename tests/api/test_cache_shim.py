"""The ``repro.api.cache`` deprecation shim: warns once, re-exports alike."""

from __future__ import annotations

import importlib
import sys
import warnings

import repro.caching as caching

SHIM = "repro.api.cache"


def fresh_import():
    """Import the shim as if for the first time, recording every warning."""
    sys.modules.pop(SHIM, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module(SHIM)
    return module, caught


def test_import_warns_deprecation_exactly_once():
    _, caught = fresh_import()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "repro.api.cache is deprecated" in message
    assert "repro.caching" in message


def test_cached_reimport_does_not_warn_again():
    module, _ = fresh_import()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        again = importlib.import_module(SHIM)
    assert again is module
    assert [w for w in caught
            if issubclass(w.category, DeprecationWarning)] == []


def test_shim_reexports_the_canonical_objects():
    module, _ = fresh_import()
    assert module.LRUMemo is caching.LRUMemo
    assert module.CacheStats is caching.CacheStats
    assert module.DEFAULT_MEMO_SIZE == caching.DEFAULT_MEMO_SIZE
    assert sorted(module.__all__) == \
        ["CacheStats", "DEFAULT_MEMO_SIZE", "LRUMemo"]

"""The compiled session API: agreement with the legacy path, caching, batches."""

import pytest

from repro import Reasoner, constraint_set, implies, implies_on, no_insert, no_remove
from repro.api import BoundReasoner
from repro.constraints import ConstraintType, UpdateConstraint
from repro.errors import NotConcreteError, UnsupportedProblemError
from repro.implication import Answer
from repro.trees import branch, build
from repro.xpath import parse


def assert_same_verdict(result_a, result_b):
    assert result_a.answer is result_b.answer, (result_a, result_b)
    assert result_a.engine == result_b.engine
    assert result_a.reason == result_b.reason


class TestDispatchAgreement:
    """One handcrafted problem per Table 1 dispatch branch."""

    CASES = [
        # cross-type: no premise of the conclusion's type
        ([("/a", "up")], no_insert("/a")),
        # single-type, full fragment
        ([("/patient[/visit]", "down")], no_insert("/patient[/visit][/x]")),
        # mixed types, child-only (Theorem 4.1)
        ([("/a[/b]", "up"), ("/a", "down")], no_remove("/a[/b]")),
        # mixed types, linear (record fixpoint, Example 4.1 family)
        ([("//a//c", "up"), ("//c", "down")], no_remove("//a//c")),
        # mixed types, predicates + descendant (hybrid NEXPTIME cell)
        ([("//a[/b]", "up"), ("/a", "down")], no_remove("//a[/b]")),
    ]

    @pytest.mark.parametrize("specs,conclusion", CASES)
    def test_reasoner_matches_legacy(self, specs, conclusion):
        premises = constraint_set(*specs)
        legacy = implies(premises, conclusion)
        session = Reasoner(premises).implies(conclusion)
        assert_same_verdict(legacy, session)

    @pytest.mark.parametrize("specs,conclusion", CASES)
    def test_memoised_answer_is_stable(self, specs, conclusion):
        reasoner = Reasoner(constraint_set(*specs))
        first = reasoner.implies(conclusion)
        again = reasoner.implies(conclusion)
        assert again is first  # served from the memo
        assert reasoner.stats.hits == 1

    def test_canonical_variants_share_a_cache_line(self):
        reasoner = Reasoner(constraint_set(("/a[/b][/c]", "down")))
        first = reasoner.implies(no_insert("/a[/b][/c]"))
        variant_conclusion = no_insert("/a[/c][/b]")
        variant = reasoner.implies(variant_conclusion)
        assert reasoner.stats.hits == 1
        assert variant.answer is first.answer
        # ... but the result is re-anchored on the conclusion actually asked:
        assert variant.conclusion is variant_conclusion

    def test_example21_verdicts(self, example21_constraints):
        reasoner = Reasoner(example21_constraints)
        assert reasoner.implies(
            no_insert("/patient[/visit][/clinicalTrial]")).is_implied
        assert not reasoner.implies(no_insert("/patient")).is_implied


class TestRequireDecision:
    def test_unknown_raises_even_on_memo_hit(self):
        premises = constraint_set(("//a[/b]", "up"), ("//a[/c]", "down"),
                                  ("//b[/a]", "up"))
        conclusion = no_remove("//a[/b][/c]")
        reasoner = Reasoner(premises)
        result = reasoner.implies(conclusion)
        if result.is_unknown:  # the hybrid cell stayed inconclusive
            with pytest.raises(UnsupportedProblemError):
                reasoner.implies(conclusion, require_decision=True)

    def test_non_concrete_conclusion_rejected(self):
        reasoner = Reasoner(constraint_set(("/a", "up")))
        with pytest.raises(NotConcreteError):
            reasoner.implies(UpdateConstraint(parse("/a/*"),
                                              ConstraintType.NO_REMOVE))

    def test_non_concrete_premises_rejected_at_compile_time(self):
        wild = UpdateConstraint(parse("/a/*"), ConstraintType.NO_REMOVE)
        with pytest.raises(NotConcreteError):
            Reasoner([wild])


class TestCompilation:
    def test_containment_matrix(self):
        reasoner = Reasoner(constraint_set(("/a/b", "up"), ("//b", "up"),
                                           ("/a[/c]", "down")))
        matrix = reasoner.containment_matrix()
        assert matrix[(0, 1)] is True     # /a/b ⊆ //b
        assert matrix[(1, 0)] is False
        assert (0, 0) not in matrix

    def test_intersection_matrix_child_only(self):
        reasoner = Reasoner(constraint_set(("/a[/b]", "up"), ("/a[/c]", "up")))
        inter = reasoner.intersection_matrix()
        assert str(inter[(0, 1)]) == "/a[/b][/c]"

    def test_intersection_matrix_empty_with_descendant(self):
        reasoner = Reasoner(constraint_set(("//a", "up"), ("/a", "up")))
        assert reasoner.intersection_matrix() == {}

    def test_compiled_views(self):
        premises = constraint_set(("/a[/b]", "up"), ("//c", "down"))
        reasoner = Reasoner(premises)
        assert reasoner.fragment.name == "XP{/,[],//}"
        assert reasoner.labels == {"a", "b", "c"}
        assert len(reasoner.of_type(ConstraintType.NO_REMOVE)) == 1
        assert "Reasoner(2 constraints" in repr(reasoner)


class TestBatch:
    def test_results_align_with_inputs(self):
        reasoner = Reasoner(constraint_set(("/a[/b]", "down"), ("/a", "down")))
        conclusions = [no_insert("/a[/b]"), no_insert("/x"), no_insert("/a")]
        report = reasoner.implies_all(conclusions)
        assert len(report) == 3
        assert report[0].is_implied
        assert report[2].is_implied
        assert report.implied_count == 2
        assert not report.all_implied
        first = report.first_refuted
        assert first is not None and first[0] is conclusions[1]

    def test_fail_fast_skips_the_tail(self):
        reasoner = Reasoner(constraint_set(("/a", "down")))
        report = reasoner.implies_all(
            [no_insert("/a"), no_insert("/x"), no_insert("/a")],
            fail_fast=True)
        assert report[0].is_implied
        assert report[1].is_refuted
        assert report[2] is None
        assert report.skipped_count == 1
        assert "skipped" in report.summary()

    def test_duplicates_inside_a_batch_hit_the_memo(self):
        reasoner = Reasoner(constraint_set(("/a", "down")))
        report = reasoner.implies_all([no_insert("/a")] * 5)
        assert report.all_implied
        assert reasoner.stats.hits == 4


class TestBoundReasoner:
    @pytest.fixture
    def current(self):
        return build(
            branch("patient", branch("visit"), branch("clinicalTrial")),
            branch("patient", branch("visit")),
        )

    def test_matches_legacy_on_figure2(self, example21_constraints,
                                       figure2_instances):
        _, after = figure2_instances
        bound = Reasoner(example21_constraints).bind(after)
        for conclusion in (no_insert("/patient[/visit]"),
                           no_remove("/patient/visit"),
                           no_insert("/patient")):
            assert_same_verdict(
                implies_on(example21_constraints, after, conclusion),
                bound.implies_on(conclusion))

    def test_premise_answers_computed_once(self, current):
        premises = constraint_set(("/patient[/visit]", "down"),
                                  ("/patient", "down"))
        bound = Reasoner(premises).bind(current)
        hits = bound.premise_answers()
        assert bound.premise_answers() == hits
        assert all(len(ids) == 2 for ids in hits.values())
        # The returned mapping is a defensive copy: mutating it must not
        # poison the cache backing later queries.
        for ids in hits.values():
            ids.add(999_999)
        verdict = bound.implies_on(no_insert("/patient"))
        assert verdict.answer is not None  # decided from unpolluted cache
        assert all(999_999 not in ids
                   for ids in bound._range_hits.values())

    def test_memoises_per_conclusion(self, current):
        bound = Reasoner(constraint_set(("/patient", "down"))).bind(current)
        conclusion = no_insert("/patient")
        first = bound.implies_on(conclusion)
        assert bound.implies_on(conclusion) is first
        assert bound.stats.hits == 1

    def test_search_knobs_key_the_memo(self, current):
        premises = constraint_set(("/patient[/visit]", "down"),
                                  ("/patient[/clinicalTrial]", "up"))
        bound = Reasoner(premises).bind(current)
        loose = bound.implies_on(no_insert("/patient"), max_moves=1)
        tight = bound.implies_on(no_insert("/patient"), max_moves=2)
        assert loose.answer is tight.answer  # knobs only widen the search
        assert bound.stats.misses == 2

    def test_staleness_guard(self, current):
        bound = Reasoner(constraint_set(("/patient", "down"))).bind(current)
        bound.implies_on(no_insert("/patient"))
        current.add_child(current.root, "patient")
        with pytest.raises(ValueError, match="rebind"):
            bound.implies_on(no_insert("/patient"))

    def test_one_shot_implies_on(self, current):
        premises = constraint_set(("/patient", "down"))
        result = Reasoner(premises).implies_on(current, no_insert("/patient"))
        assert_same_verdict(result, implies_on(premises, current,
                                               no_insert("/patient")))
        assert isinstance(Reasoner(premises).bind(current), BoundReasoner)


class TestLegacyWrappers:
    """The free functions stay exact re-exports of the session behaviour."""

    def test_implies_accepts_bare_iterables(self):
        result = implies([no_insert("/a[/b]")], no_insert("/a[/b]"))
        assert result.answer is Answer.IMPLIED

    def test_unknown_verdict_unchanged(self):
        premises = constraint_set(("//a[/b]", "up"), ("//a[/c]", "down"),
                                  ("//b[/a]", "up"))
        conclusion = no_remove("//a[/b][/c]")
        legacy = implies(premises, conclusion)
        session = Reasoner(premises).implies(conclusion)
        assert_same_verdict(legacy, session)

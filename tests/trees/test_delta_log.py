"""The edit-delta log: cap semantics and dirty-chain shape.

``deltas_since`` is the contract delta-maintained consumers (the stream
engine's mask patcher, notably) rebuild-or-patch on: an empty list means
"already current", ``None`` means "the log no longer reaches back —
recompute from scratch", and anything else is the exact oldest-first
suffix.  The dirty sets must be upward closed and anchor-first, which is
what makes patching nested predicates sound.
"""

from __future__ import annotations

from repro.trees import DataTree, TreeIndex
from repro.trees.index import DELTA_LOG_CAP


def build_line():
    """root -> a(b(c)), d — one deep chain plus a sibling host."""
    tree = DataTree()
    a = tree.add_child(tree.root, "a")
    b = tree.add_child(a, "b")
    c = tree.add_child(b, "c")
    d = tree.add_child(tree.root, "d")
    return tree, a, b, c, d


def test_deltas_since_at_the_cap_boundary():
    tree, a, b, c, d = build_line()
    index = TreeIndex(tree)
    rev0 = index.revision
    assert index.deltas_since(rev0) == []          # already current
    assert index.deltas_since(rev0 + 1) is None    # the future

    for i in range(DELTA_LOG_CAP - 1):             # cap - 1 edits
        index.apply_add_leaf(d, f"x{i}")
    deltas = index.deltas_since(rev0)
    assert deltas is not None and len(deltas) == DELTA_LOG_CAP - 1

    index.apply_add_leaf(d, "x-at-cap")            # exactly cap edits
    deltas = index.deltas_since(rev0)
    assert deltas is not None and len(deltas) == DELTA_LOG_CAP
    assert [delta.revision for delta in deltas] == \
        list(range(rev0 + 1, rev0 + DELTA_LOG_CAP + 1))

    index.apply_add_leaf(d, "x-over-cap")          # cap + 1: rev0 falls off
    assert index.deltas_since(rev0) is None
    tail = index.deltas_since(rev0 + 1)
    assert tail is not None and len(tail) == DELTA_LOG_CAP
    assert tail[-1].revision == index.revision
    assert index.deltas_since(index.revision) == []
    assert index.deltas_since(index.revision + 1) is None


def test_add_leaf_delta_lists_the_leaf_before_its_chain():
    tree, a, b, c, d = build_line()
    index = TreeIndex(tree)
    rev0 = index.revision
    nid = index.apply_add_leaf(c, "x")
    (delta,) = index.deltas_since(rev0)
    assert delta.added == (nid,)
    assert delta.vanished == ()
    # Fresh node first, then the attachment chain bottom-up to the root.
    assert tuple(delta.dirty) == (nid, c, b, a, tree.root)


def test_move_then_remove_dirty_chains_are_upward_closed_and_ordered():
    tree, a, b, c, d = build_line()
    index = TreeIndex(tree)
    rev0 = index.revision
    root = tree.root

    index.apply_move(b, d)          # b (with c below) leaves a, lands on d
    index.apply_remove_subtree(b)   # then the relocated subtree dies

    move_delta, remove_delta = index.deltas_since(rev0)

    # The move dirties both attachment chains: old anchor first, each
    # chain bottom-up, the shared root recorded once at first visit.
    assert move_delta.added == () and move_delta.vanished == ()
    assert tuple(move_delta.dirty) == (a, root, d)

    # The remove dirties the (post-move) parent chain and records every
    # node of the dead subtree with the slot it last held.
    assert tuple(remove_delta.dirty) == (d, root)
    assert {nid for nid, _ in remove_delta.vanished} == {b, c}
    assert all(old_slot >= 0 for _, old_slot in remove_delta.vanished)

    # Both dirty sets are upward closed under the post-edit parent map.
    for delta in (move_delta, remove_delta):
        for nid in delta.dirty:
            parent = index.parent(nid)
            assert parent is None or parent in delta.dirty

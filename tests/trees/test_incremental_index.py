"""Unit tests for in-place :class:`TreeIndex` maintenance.

The incremental contract: after any sequence of ``apply_*`` edits, the
index answers every structural query exactly like a freshly built index of
the mutated tree — same document order, intervals, label buckets, depths,
path-label arrays and bitset views — while staying ``fresh`` (the edits
re-sync the recorded tree version) and bumping ``revision`` so evaluators
know to drop their masks.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TreeError
from repro.trees import DataTree, TreeIndex
from repro.trees.index import SLOT_GAP
from repro.workloads import random_tree

LABELS = ["a", "b", "c"]


def assert_matches_fresh(index: TreeIndex, tree: DataTree) -> None:
    """The incrementally-maintained index agrees with a fresh rebuild."""
    fresh = TreeIndex(tree)
    assert list(index.node_ids()) == list(fresh.node_ids())
    for nid in tree.node_ids():
        assert index.label(nid) == fresh.label(nid)
        assert index.parent(nid) == fresh.parent(nid)
        assert index.children(nid) == fresh.children(nid)
        assert index.depth(nid) == fresh.depth(nid)
        assert index.path_labels(nid) == fresh.path_labels(nid)
        assert index.descendants(nid) == fresh.descendants(nid)
        for label in LABELS:
            assert (index.descendants_with_label(label, nid)
                    == fresh.descendants_with_label(label, nid))
            assert (index.count_descendants_with_label(label, nid)
                    == fresh.count_descendants_with_label(label, nid))
    for anc in tree.node_ids():
        for nid in tree.node_ids():
            assert index.is_ancestor(anc, nid) == fresh.is_ancestor(anc, nid)
    assert index.canonical_shape() == fresh.canonical_shape()
    # Bitset views describe the same node sets (slots may differ).
    for label in LABELS:
        assert (sorted(index.node_at(s) for s in _slots(index.label_mask(label)))
                == sorted(fresh.nodes_with_label(label)))
    assert (sorted(index.node_at(s) for s in _slots(index.all_mask()))
            == sorted(tree.node_ids()))


def _slots(mask: int) -> list[int]:
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class TestApplyMove:
    def build(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(tree.root, "b")
        c = tree.add_child(a, "c")
        d = tree.add_child(c, "a")
        return tree, a, b, c, d

    def test_move_updates_tree_and_index_together(self):
        tree, a, b, c, d = self.build()
        index = TreeIndex(tree)
        index.apply_move(c, b)
        assert tree.parent(c) == b
        assert index.fresh
        assert index.revision == 1
        assert_matches_fresh(index, tree)

    def test_move_up_and_back_restores_structure(self):
        tree, a, b, c, d = self.build()
        index = TreeIndex(tree)
        before = tree.copy()
        index.apply_move(d, tree.root)
        index.apply_move(d, c)
        assert tree.same_instance(before)
        assert_matches_fresh(index, tree)

    def test_illegal_moves_leave_both_untouched(self):
        tree, a, b, c, d = self.build()
        index = TreeIndex(tree)
        with pytest.raises(TreeError):
            index.apply_move(tree.root, a)       # the root is pinned
        with pytest.raises(TreeError):
            index.apply_move(a, d)               # descendant target
        assert index.revision == 0
        assert index.fresh
        assert_matches_fresh(index, tree)

    def test_foreign_mutation_still_stales(self):
        tree, a, *_ = self.build()
        index = TreeIndex(tree)
        tree.add_child(a, "c")                   # behind the index's back
        assert not index.fresh
        assert not index.covers(tree)


class TestApplyLeafEdits:
    def test_add_leaf_fast_path_after_subtree_end(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        tree.add_child(tree.root, "b")
        index = TreeIndex(tree)
        nid = index.apply_add_leaf(a, "c")
        assert tree.parent(nid) == a
        assert index.label(nid) == "c"
        assert index.fresh
        assert_matches_fresh(index, tree)

    def test_dense_adds_trigger_host_renumber(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        tree.add_child(tree.root, "b")
        index = TreeIndex(tree)
        # a's interval has SLOT_GAP slots before b's; overflowing it forces
        # a renumber (possibly of the root, counted as a rebuild).
        for _ in range(3 * SLOT_GAP):
            index.apply_add_leaf(a, "c")
        assert index.rebuild_count >= 1
        assert index.fresh
        assert_matches_fresh(index, tree)

    def test_remove_then_revive_reuses_the_gap(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b")
        tree.add_child(tree.root, "c")
        index = TreeIndex(tree)
        index.apply_remove_subtree(b)
        assert b not in index
        assert_matches_fresh(index, tree)
        revived = index.apply_add_leaf(a, "b", nid=b)
        assert revived == b
        assert_matches_fresh(index, tree)

    def test_remove_subtree_drops_whole_interval(self):
        rng = random.Random(7)
        tree = random_tree(rng, LABELS, size=15)
        index = TreeIndex(tree)
        victim = next(n for n in tree.node_ids()
                      if n != tree.root and tree.children(n))
        doomed = set(tree.descendants(victim, include_self=True))
        index.apply_remove_subtree(victim)
        assert all(n not in index for n in doomed)
        assert index.size == tree.size
        assert_matches_fresh(index, tree)


class TestRandomJournals:
    def test_random_edit_sequences_match_fresh_rebuilds(self):
        for seed in range(25):
            rng = random.Random(seed)
            tree = random_tree(rng, LABELS, size=rng.randint(2, 15))
            index = TreeIndex(tree)
            revision = 0
            for _ in range(12):
                op = rng.random()
                nodes = [n for n in tree.node_ids() if n != tree.root]
                try:
                    if op < 0.55 and nodes:
                        index.apply_move(rng.choice(nodes),
                                         rng.choice(list(tree.node_ids())))
                    elif op < 0.8:
                        index.apply_add_leaf(rng.choice(list(tree.node_ids())),
                                             rng.choice(LABELS))
                    elif nodes:
                        index.apply_remove_subtree(rng.choice(nodes))
                    else:
                        continue
                except TreeError:
                    continue
                revision += 1
                assert index.revision == revision
                assert index.fresh
                tree.validate()
            assert_matches_fresh(index, tree)

    def test_move_undo_journal_is_lossless(self):
        """The cascade pattern: apply a batch of moves, undo in reverse."""
        for seed in range(10):
            rng = random.Random(100 + seed)
            tree = random_tree(rng, LABELS, size=10)
            original = tree.copy()
            index = TreeIndex(tree)
            journal = []
            for _ in range(4):
                nodes = [n for n in tree.node_ids() if n != tree.root]
                nid = rng.choice(nodes)
                target = rng.choice(list(tree.node_ids()))
                old_parent = tree.parent(nid)
                try:
                    index.apply_move(nid, target)
                except TreeError:
                    continue
                journal.append((nid, old_parent))
            for nid, old_parent in reversed(journal):
                index.apply_move(nid, old_parent)
            assert tree.same_instance(original)
            assert_matches_fresh(index, tree)


class TestBitsetViews:
    def test_masks_track_revisions(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        tree.add_child(a, "b")
        index = TreeIndex(tree)
        before = index.label_mask("b")
        nid = index.apply_add_leaf(tree.root, "b")
        after = index.label_mask("b")
        assert before != after
        assert sorted(index.node_at(s) for s in _slots(after)) == sorted(
            index.nodes_with_label("b"))
        assert nid in index.nodes_with_label("b")

    def test_subtree_mask_covers_exactly_the_subtree(self):
        rng = random.Random(3)
        tree = random_tree(rng, LABELS, size=12)
        index = TreeIndex(tree)
        for nid in tree.node_ids():
            mask = index.subtree_mask(nid) & index.all_mask()
            assert (sorted(index.node_at(s) for s in _slots(mask))
                    == sorted(tree.descendants(nid)))

    def test_labels_alphabet(self):
        rng = random.Random(5)
        tree = random_tree(rng, LABELS, size=10)
        index = TreeIndex(tree)
        assert index.labels() == {node.label for node in tree.nodes()}


class TestRemoveReAddCycles:
    """Remove → re-add into the freed slot run (the revive pattern).

    ``apply_remove_subtree`` frees a contiguous slot run; subsequent
    ``apply_add_leaf``/``apply_move`` edits under the same parent should
    land in (or around) that run, and every cache — label buckets, masks,
    children tuples, parent-slot table — must stay consistent with a
    fresh rebuild across the whole cycle.
    """

    def warm(self, index: TreeIndex) -> None:
        """Materialise every patched-not-rebuilt cache before editing."""
        index.all_mask()
        index.parent_slots()
        for label in LABELS:
            index.label_mask(label)
        for nid in list(index.node_ids()):
            index.children_mask(nid)

    def assert_parent_slots_consistent(self, index: TreeIndex,
                                       tree: DataTree) -> None:
        fresh = TreeIndex(tree)
        translate = lambda idx: {(idx.node_at(s), idx.node_at(p))
                                 for s, p in idx.parent_slots().items()}
        assert translate(index) == translate(fresh)

    def test_remove_then_readd_leaves_into_freed_run(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b")
        for _ in range(3):
            tree.add_child(b, "c")
        tail = tree.add_child(tree.root, "c")
        index = TreeIndex(tree)
        self.warm(index)
        index.apply_remove_subtree(b)  # frees a 4-slot run inside a
        assert_matches_fresh(index, tree)
        revived = [index.apply_add_leaf(a, "b")]
        for _ in range(3):
            revived.append(index.apply_add_leaf(revived[0], "c"))
        assert_matches_fresh(index, tree)
        self.assert_parent_slots_consistent(index, tree)
        assert tail in index

    def test_remove_then_move_into_freed_slot_run(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        doomed = tree.add_child(a, "b")
        for _ in range(4):
            tree.add_child(doomed, "c")
        other = tree.add_child(tree.root, "b")
        payload = tree.add_child(other, "a")
        tree.add_child(payload, "c")
        index = TreeIndex(tree)
        self.warm(index)
        index.apply_remove_subtree(doomed)
        index.apply_move(payload, a)  # re-attach into the freed region
        assert_matches_fresh(index, tree)
        self.assert_parent_slots_consistent(index, tree)

    def test_identity_reuse_after_remove(self):
        """A freed identifier may be re-pinned by a later add (the stream
        rollback's revive path) — caches must not resurrect stale facts."""
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b", nid=777001)
        tree.add_child(b, "c", nid=777002)
        index = TreeIndex(tree)
        self.warm(index)
        index.apply_remove_subtree(777001)
        assert 777001 not in index
        # Revive the same ids, preorder, exactly like the undo journal.
        index.apply_add_leaf(a, "b", nid=777001)
        index.apply_add_leaf(777001, "c", nid=777002)
        assert_matches_fresh(index, tree)
        self.assert_parent_slots_consistent(index, tree)
        assert index.label(777001) == "b"

    def test_randomised_remove_readd_cycles(self):
        for seed in range(8):
            rng = random.Random(7_000 + seed)
            tree = random_tree(rng, LABELS, size=14)
            index = TreeIndex(tree)
            self.warm(index)
            for _ in range(6):
                nodes = [n for n in tree.node_ids() if n != tree.root]
                if not nodes:
                    break
                victim = rng.choice(nodes)
                parent = tree.parent(victim)
                spec = [(n, tree.parent(n), tree.label(n))
                        for n in tree.descendants(victim, include_self=True)]
                index.apply_remove_subtree(victim)
                if rng.random() < 0.5:
                    # Revive the identical subtree into the freed run.
                    for nid, par, label in spec:
                        index.apply_add_leaf(par, label, nid=nid)
                else:
                    # Or re-point fresh growth and a move at the region.
                    fresh_leaf = index.apply_add_leaf(parent, rng.choice(LABELS))
                    movers = [n for n in tree.node_ids()
                              if n not in (tree.root, fresh_leaf)]
                    if movers:
                        try:
                            index.apply_move(rng.choice(movers), fresh_leaf)
                        except TreeError:
                            pass
                tree.validate()
                assert index.fresh
            assert_matches_fresh(index, tree)
            self.assert_parent_slots_consistent(index, tree)

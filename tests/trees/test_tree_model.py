"""Unit tests for the data-tree substrate (Definition 2.1)."""

import pytest

from repro.errors import TreeError
from repro.trees import (
    DataTree,
    branch,
    build,
    copy_subtree,
    from_dict,
    graft_at_root,
    leaf,
    parse_tree,
    prune_to_union,
    relabel_outside,
    remap_ids,
    restrict_labels,
    swap_ids,
    to_dict,
    to_literal,
    to_xml,
)
from repro.trees.ops import fresh_label_for


class TestConstruction:
    def test_root_exists(self):
        tree = DataTree()
        assert tree.size == 1
        assert tree.parent(tree.root) is None

    def test_add_child_and_labels(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b")
        assert tree.label(a) == "a"
        assert tree.parent(b) == a
        assert tree.children(a) == (b,)

    def test_add_path(self):
        tree = DataTree()
        deep = tree.add_path(tree.root, ["a", "b", "c"])
        assert tree.path_labels(deep) == ("a", "b", "c")

    def test_explicit_id_collision_rejected(self):
        tree = DataTree()
        tree.add_child(tree.root, "a", nid=5000)
        with pytest.raises(TreeError):
            tree.add_child(tree.root, "b", nid=5000)

    def test_builder_and_literal_agree(self):
        built = build(branch("a", leaf("b"), branch("c", leaf("d"))))
        parsed = parse_tree("a(b, c(d))")
        assert built.canonical_shape() == parsed.canonical_shape()

    def test_pinned_ids_do_not_collide_with_fresh(self):
        tree = build(branch("a", branch("b"), nid=777001),
                     branch("a", branch("b", nid=777002)))
        tree.validate()
        assert 777001 in tree and 777002 in tree


class TestNavigation:
    def test_preorder_covers_all(self):
        tree = parse_tree("a(b(c), d)")
        assert len(list(tree.node_ids())) == tree.size

    def test_ancestors_and_depth(self):
        tree = DataTree()
        deep = tree.add_path(tree.root, ["a", "b", "c"])
        assert tree.depth(deep) == 3
        labels = [tree.label(n) for n in tree.ancestors(deep)]
        assert labels == ["b", "a", tree.label(tree.root)]

    def test_path_labels_excludes_root(self):
        tree = DataTree("myroot")
        deep = tree.add_path(tree.root, ["x", "y"])
        assert tree.path_labels(deep) == ("x", "y")
        assert tree.path_labels(tree.root) == ()

    def test_is_ancestor(self):
        tree = DataTree()
        a = tree.add_child(tree.root, "a")
        b = tree.add_child(a, "b")
        assert tree.is_ancestor(a, b)
        assert not tree.is_ancestor(b, a)


class TestMutation:
    def test_remove_subtree(self):
        tree = parse_tree("a(b(c), d)")
        target = next(n.nid for n in tree.nodes() if n.label == "b")
        tree.remove_subtree(target)
        tree.validate()
        assert sorted(n.label for n in tree.nodes()) == ["a", "d", "root"]

    def test_cannot_remove_root(self):
        tree = DataTree()
        with pytest.raises(TreeError):
            tree.remove_subtree(tree.root)

    def test_move_preserves_ids(self):
        tree = parse_tree("a(b), c")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        c = next(n.nid for n in tree.nodes() if n.label == "c")
        tree.move(b, c)
        tree.validate()
        assert tree.parent(b) == c

    def test_move_under_own_subtree_rejected(self):
        tree = parse_tree("a(b)")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        with pytest.raises(TreeError):
            tree.move(a, b)

    def test_relabel_fresh_changes_identity(self):
        tree = parse_tree("a(b)")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        new_id = tree.relabel_fresh(a)
        tree.validate()
        assert new_id != a and a not in tree
        assert tree.label(new_id) == "a"

    def test_relabel_fresh_keeps_children(self):
        tree = parse_tree("a(b, c)")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        new_id = tree.relabel_fresh(a, "x")
        assert sorted(tree.label(k) for k in tree.children(new_id)) == ["b", "c"]


class TestCopiesAndIdentity:
    def test_copy_is_same_instance(self):
        tree = parse_tree("a(b(c))")
        assert tree.copy().same_instance(tree)

    def test_same_instance_detects_id_change(self):
        tree = parse_tree("a")
        clone = tree.copy()
        a = next(n.nid for n in clone.nodes() if n.label == "a")
        clone.relabel_fresh(a)
        assert not clone.same_instance(tree)

    def test_canonical_shape_ignores_ids_and_order(self):
        one = parse_tree("a(b, c)")
        two = parse_tree("a(c, b)")
        assert one.canonical_shape() == two.canonical_shape()

    def test_swap_ids(self):
        tree = parse_tree("a(b), a")
        outer = [n.nid for n in tree.nodes() if n.label == "a"]
        swapped = swap_ids(tree, outer[0], outer[1])
        assert swapped.label(outer[0]) == "a"
        kids = {swapped.label(k) for k in swapped.children(outer[1])}
        assert kids == {"b"}

    def test_swap_requires_equal_labels(self):
        tree = parse_tree("a, b")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        with pytest.raises(TreeError):
            swap_ids(tree, a, b)

    def test_remap_collision_detected(self):
        tree = parse_tree("a, b")
        ids = [n.nid for n in tree.nodes() if n.label in "ab"]
        with pytest.raises(TreeError):
            remap_ids(tree, {ids[0]: ids[1]})


class TestOps:
    def test_copy_subtree_fresh(self):
        src = parse_tree("a(b(c))")
        dst = DataTree()
        a = next(n.nid for n in src.nodes() if n.label == "a")
        mapping = copy_subtree(src, a, dst, dst.root, fresh=True)
        assert set(mapping) == {n.nid for n in src.nodes() if n.label in "abc"}
        assert all(old != new for old, new in mapping.items())
        dst.validate()

    def test_graft_at_root(self):
        base = parse_tree("a")
        extra = parse_tree("b(c)")
        graft_at_root(base, extra, fresh=False)
        base.validate()
        assert sorted(base.label(c) for c in base.children(base.root)) == ["a", "b"]

    def test_prune_to_union(self):
        tree = parse_tree("a(b(c), d), e")
        c = next(n.nid for n in tree.nodes() if n.label == "c")
        pruned = prune_to_union(tree, [c])
        assert sorted(n.label for n in pruned.nodes()) == ["a", "b", "c", "root"]

    def test_relabel_outside(self):
        tree = parse_tree("a(b)")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        result = relabel_outside(tree, {a})
        labels = sorted(n.label for n in result.nodes())
        assert labels == ["a", "root", "z"]

    def test_restrict_labels(self):
        tree = parse_tree("a(b, q)")
        result = restrict_labels(tree, {"a", "b"})
        assert sorted(n.label for n in result.nodes()) == ["a", "b", "root", "z"]

    def test_fresh_label_avoids_used(self):
        assert fresh_label_for({"a"}) == "z"
        assert fresh_label_for({"z"}) == "z_"
        assert fresh_label_for({"z", "z_"}) == "z__"


class TestSerialization:
    def test_dict_roundtrip(self):
        tree = parse_tree("a(b(c), d)")
        assert from_dict(to_dict(tree)).same_instance(tree)

    def test_literal_roundtrip(self):
        tree = parse_tree("a(b, c(d))")
        again = parse_tree(to_literal(tree))
        assert again.canonical_shape() == tree.canonical_shape()

    def test_literal_with_ids_roundtrip(self):
        tree = parse_tree("a(b)")
        again = parse_tree(to_literal(tree, with_ids=True))
        original = {n for n in tree.nodes() if n.nid != tree.root}
        restored = {n for n in again.nodes() if n.nid != again.root}
        assert original == restored

    def test_xml_rendering_mentions_ids(self):
        tree = parse_tree("a")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        assert f'id="{a}"' in to_xml(tree)

    def test_validate_catches_corruption(self):
        tree = parse_tree("a(b)")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        tree._parent[b] = b  # simulate corruption
        with pytest.raises(TreeError):
            tree.validate()


class TestCachesAndVersioning:
    def test_version_bumps_on_every_mutation(self):
        tree = parse_tree("a(b), c")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        c = next(n.nid for n in tree.nodes() if n.label == "c")
        v = tree.version
        tree.add_child(a, "x")
        assert tree.version > v
        v = tree.version
        tree.move(b, c)
        assert tree.version > v
        v = tree.version
        tree.relabel_fresh(c, "y")
        assert tree.version > v

    def test_children_tuple_cached_and_invalidated(self):
        tree = parse_tree("a(b)")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        first = tree.children(a)
        assert tree.children(a) is first  # cached tuple, no re-allocation
        x = tree.add_child(a, "x")
        after = tree.children(a)
        assert after is not first and x in after

    def test_children_cache_invalidated_by_move_and_remove(self):
        tree = parse_tree("a(b), c")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        c = next(n.nid for n in tree.nodes() if n.label == "c")
        tree.children(a)
        tree.children(c)
        tree.move(b, c)
        assert tree.children(a) == ()
        assert tree.children(c) == (b,)
        tree.remove_subtree(b)
        assert tree.children(c) == ()

    def test_hash_stable_and_invalidated(self):
        tree = parse_tree("a(b)")
        h1 = hash(tree)
        assert hash(tree) == h1  # cached path
        tree.add_child(tree.root, "c")
        h2 = hash(tree)
        assert hash(tree) == h2
        # equal instances must hash equal (copy preserves ids and shape)
        assert hash(tree.copy()) == h2 and tree.copy() == tree

    def test_canonical_shape_cache_survives_copy(self):
        tree = parse_tree("a(b, c)")
        shape = tree.canonical_shape()
        clone = tree.copy()
        assert clone.canonical_shape() == shape
        clone.add_child(clone.root, "d")
        assert clone.canonical_shape() != shape
        assert tree.canonical_shape() == shape  # original untouched

    def test_deep_chain_shape_has_no_recursion_limit(self):
        import sys

        tree = DataTree()
        tree.add_path(tree.root, ["a"] * (sys.getrecursionlimit() + 100))
        shape = tree.canonical_shape()
        assert shape[0] == "root"

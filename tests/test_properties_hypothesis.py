"""Hypothesis property tests on the core invariants.

Strategy: generate random patterns / trees / constraint sets and assert the
semantic laws the paper's machinery rests on — monotonicity of positive
queries, soundness of containment, reflexivity of validity, mirror symmetry
of the two constraint types, certificate soundness of every engine verdict.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import UpdateConstraint, ConstraintType
from repro.constraints.validity import is_valid, satisfies, violation_of
from repro.implication import implies
from repro.instance import implies_on
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
)
from repro.xpath import contained, evaluate_ids, parse
from repro.xpath.canonical import smallest_model

LABELS = ["a", "b"]
SPECS = [
    FragmentSpec(False, False, False),
    FragmentSpec(True, False, False),
    FragmentSpec(False, True, False),
    FragmentSpec(True, True, True),
]

seeds = st.integers(min_value=0, max_value=10_000)
spec_idx = st.integers(min_value=0, max_value=len(SPECS) - 1)

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_pattern_parse_roundtrip(seed, idx):
    rng = random.Random(seed)
    pattern = random_pattern(rng, LABELS, SPECS[idx], spine=rng.randint(1, 4))
    assert parse(str(pattern)) == pattern


@given(seed=seeds, idx=spec_idx)
@RELAXED
def test_smallest_model_membership(seed, idx):
    rng = random.Random(seed)
    pattern = random_pattern(rng, LABELS, SPECS[idx], spine=rng.randint(1, 3))
    model = smallest_model(pattern)
    assert model.output in evaluate_ids(pattern, model.tree)


@given(seed=seeds)
@RELAXED
def test_query_monotone_under_grafting(seed):
    """Adding a sibling branch at the root never removes an answer."""
    from repro.trees.ops import graft_at_root

    rng = random.Random(seed)
    pattern = random_pattern(rng, LABELS, SPECS[3], spine=rng.randint(1, 3))
    tree = random_tree(rng, LABELS, size=5)
    baseline = evaluate_ids(pattern, tree)
    grown = tree.copy()
    graft_at_root(grown, random_tree(rng, LABELS, size=3), fresh=True)
    assert baseline <= evaluate_ids(pattern, grown)


@given(seed=seeds)
@RELAXED
def test_containment_transfers_to_data(seed):
    rng = random.Random(seed)
    p = random_pattern(rng, LABELS, SPECS[3], spine=rng.randint(1, 3))
    q = random_pattern(rng, LABELS, SPECS[3], spine=rng.randint(1, 3))
    if contained(p, q):
        tree = random_tree(rng, LABELS + ["z"], size=6)
        assert evaluate_ids(p, tree) <= evaluate_ids(q, tree)


@given(seed=seeds)
@RELAXED
def test_identity_pair_valid_for_anything(seed):
    rng = random.Random(seed)
    constraints = random_constraints(rng, LABELS, SPECS[3], count=3,
                                     types="mixed")
    tree = random_tree(rng, LABELS, size=5)
    assert is_valid(tree, tree, constraints)


@given(seed=seeds)
@RELAXED
def test_mirror_symmetry_of_types(seed):
    """(I,J) ⊨ (q,↑) iff (J,I) ⊨ (q,↓) — the time-reversal duality."""
    rng = random.Random(seed)
    pattern = random_pattern(rng, LABELS, SPECS[3], spine=rng.randint(1, 3))
    before = random_tree(rng, LABELS, size=4)
    after = random_tree(rng, LABELS, size=4)
    up = UpdateConstraint(pattern, ConstraintType.NO_REMOVE)
    down = UpdateConstraint(pattern, ConstraintType.NO_INSERT)
    assert satisfies(before, after, up) == satisfies(after, before, down)


@given(seed=seeds)
@RELAXED
def test_deletion_only_updates_satisfy_no_insert(seed):
    rng = random.Random(seed)
    before = random_tree(rng, LABELS, size=6)
    after = before.copy()
    victims = [n for n in after.node_ids() if n != after.root]
    if victims:
        after.remove_subtree(rng.choice(victims))
    pattern = random_pattern(rng, LABELS, SPECS[3], spine=rng.randint(1, 3))
    down = UpdateConstraint(pattern, ConstraintType.NO_INSERT)
    assert violation_of(before, after, down) is None


@given(seed=seeds)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_implication_verdicts_carry_sound_certificates(seed):
    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, 2)]
    premises = random_constraints(rng, LABELS, spec, count=2,
                                  types=rng.choice(["up", "down", "mixed"]),
                                  spine=2)
    kind = ConstraintType.NO_REMOVE if rng.random() < 0.5 else ConstraintType.NO_INSERT
    conclusion = UpdateConstraint(
        random_pattern(rng, LABELS, spec, spine=2), kind)
    result = implies(premises, conclusion)
    if result.counterexample is not None:
        assert result.verify() == [], (str(premises), str(conclusion))
    # premises always imply their own members
    for member in premises:
        again = implies(premises, member)
        assert not again.is_refuted, str(member)


@given(seed=seeds)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_instance_verdicts_carry_sound_certificates(seed):
    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, 1)]
    current = random_tree(rng, LABELS, size=4)
    types = rng.choice(["up", "down"])
    premises = random_constraints(rng, LABELS, spec, count=2, types=types,
                                  spine=2)
    kind = ConstraintType.NO_REMOVE if types == "up" else ConstraintType.NO_INSERT
    conclusion = UpdateConstraint(random_pattern(rng, LABELS, spec, spine=2), kind)
    result = implies_on(premises, current, conclusion)
    if result.counterexample is not None:
        assert result.verify() == [], (str(premises), str(conclusion))


@given(seed=seeds)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_reasoner_agrees_with_legacy_implies(seed):
    """A compiled, memoising session answers exactly like the free function."""
    from repro import Reasoner

    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, 3)]
    premises = random_constraints(rng, LABELS, spec, count=rng.randint(1, 3),
                                  types=rng.choice(["up", "down", "mixed"]),
                                  spine=2)
    reasoner = Reasoner(premises)
    for _ in range(3):  # repeated queries exercise the memo path too
        kind = rng.choice(list(ConstraintType))
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=2), kind)
        legacy = implies(premises, conclusion)
        session = reasoner.implies(conclusion)
        cached = reasoner.implies(conclusion)
        assert session.answer is legacy.answer, (str(premises), str(conclusion))
        assert session.engine == legacy.engine
        assert cached.answer is session.answer
        assert cached.conclusion is conclusion  # re-anchored on the query


@given(seed=seeds)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bound_reasoner_agrees_with_legacy_implies_on(seed):
    """Per-tree caching never changes an instance-based verdict."""
    from repro import Reasoner

    rng = random.Random(seed)
    spec = SPECS[rng.randint(0, 1)]
    types = rng.choice(["up", "down", "mixed"])
    premises = random_constraints(rng, LABELS, spec, count=2, types=types,
                                  spine=2)
    current = random_tree(rng, LABELS, size=4)
    bound = Reasoner(premises).bind(current)
    for _ in range(2):
        kind = rng.choice(list(ConstraintType))
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=2), kind)
        legacy = implies_on(premises, current, conclusion)
        session = bound.implies_on(conclusion)
        assert session.answer is legacy.answer, (str(premises), str(conclusion))
        assert session.engine == legacy.engine


@given(seed=seeds)
@RELAXED
def test_general_implication_implies_instance_based(seed):
    """The paper: general implication entails instance-based implication."""
    rng = random.Random(seed)
    spec = SPECS[1]
    types = rng.choice(["up", "down"])
    premises = random_constraints(rng, LABELS, spec, count=2, types=types,
                                  spine=2)
    kind = ConstraintType.NO_REMOVE if types == "up" else ConstraintType.NO_INSERT
    conclusion = UpdateConstraint(random_pattern(rng, LABELS, spec, spine=2), kind)
    if implies(premises, conclusion).is_implied:
        current = random_tree(rng, LABELS, size=4)
        assert implies_on(premises, current, conclusion).is_implied

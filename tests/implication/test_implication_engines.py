"""General implication engines (Table 1): unit tests and cross-validation.

Every NOT_IMPLIED certificate any engine produces is re-checked with the
independent validity checker; every IMPLIED verdict on a tiny instance is
challenged by the brute-force oracle.
"""

import pytest

from repro.bruteforce import oracle_implies
from repro.constraints import ConstraintSet, constraint_set, no_insert, no_remove
from repro.errors import FragmentError
from repro.implication import (
    Answer,
    implies,
    implies_by_intersection,
    implies_child_only,
    implies_linear,
    implies_linear_one_type,
    implies_one_type,
    implies_single,
)


def assert_refutation_certified(result):
    assert result.is_refuted
    assert result.counterexample is not None, result
    assert result.verify() == [], result.verify()


class TestTheorem31:
    """Single-constraint implication is query equivalence (Theorem 3.1)."""

    def test_equivalent_ranges_imply(self):
        result = implies_single(no_remove("/a[/b][/c]"), no_remove("/a[/c][/b]"))
        assert result.is_implied

    @pytest.mark.parametrize("q1,q2", [
        ("/a/b", "//b"),       # q1 strictly contained in q2
        ("//b", "/a/b"),       # q2 strictly contained in q1
        ("/a[/b]", "/a[/c]"),  # incomparable
        ("/a/b/c", "/a//c"),
    ])
    def test_inequivalent_ranges_refuted_with_certificate(self, q1, q2):
        for builder in (no_remove, no_insert):
            result = implies_single(builder(q1), builder(q2))
            assert_refutation_certified(result)

    def test_opposite_types_never_imply(self):
        result = implies_single(no_remove("/a"), no_insert("/a"))
        assert_refutation_certified(result)
        result = implies_single(no_insert("/a"), no_remove("/a"))
        assert_refutation_certified(result)


class TestOneTypeEngine:
    def test_example21_implication(self):
        """{c1, c2} ⊨ (/patient[/visit][/clinicalTrial], ↓) — Section 2.1."""
        premises = constraint_set(("/patient[/visit]", "down"),
                                  ("/patient[/clinicalTrial]", "down"))
        result = implies_one_type(premises,
                                  no_insert("/patient[/visit][/clinicalTrial]"))
        assert result.is_implied

    def test_subset_intersection_required(self):
        premises = constraint_set(("/patient[/visit]", "down"))
        result = implies_one_type(premises,
                                  no_insert("/patient[/visit][/clinicalTrial]"))
        assert_refutation_certified(result)

    def test_descendant_interplay(self):
        premises = constraint_set(("//a//c", "up"), ("//c", "up"))
        assert implies_one_type(premises, no_remove("//a//c")).is_implied
        result = implies_one_type(premises, no_remove("//c//a"))
        assert_refutation_certified(result)

    def test_conclusion_weaker_than_any_premise_not_implied(self):
        # q(I) growing for /a/b does not make //b grow.
        premises = constraint_set(("/a/b", "up"))
        result = implies_one_type(premises, no_remove("//b"))
        assert_refutation_certified(result)

    def test_rejects_mixed_premises(self):
        premises = constraint_set(("/a", "up"), ("/b", "down"))
        with pytest.raises(FragmentError):
            implies_one_type(premises, no_remove("/a"))

    def test_empty_premises_never_imply(self):
        result = implies_one_type(ConstraintSet([]), no_remove("/a"))
        assert_refutation_certified(result)

    @pytest.mark.parametrize("ctype", ["up", "down"])
    def test_self_implication(self, ctype):
        premises = constraint_set(("/a[/b]//c", ctype))
        conclusion = next(iter(premises))
        assert implies_one_type(premises, conclusion).is_implied


class TestIntersectionEngine:
    def test_agrees_with_canonical_engine(self, rng):
        from repro.workloads import FragmentSpec, random_constraints, random_pattern

        for frag in (FragmentSpec(descendant=False),
                     FragmentSpec(wildcard=False)):
            for _ in range(15):
                premises = random_constraints(rng, ["a", "b"], frag,
                                              count=2, types="up", spine=2)
                conclusion = no_remove(random_pattern(rng, ["a", "b"], frag, spine=2))
                one = implies_by_intersection(premises, conclusion)
                two = implies_one_type(premises, conclusion)
                assert one.answer == two.answer, (str(premises), str(conclusion))

    def test_reports_subset(self):
        premises = constraint_set(("/a[/b]", "down"), ("/a[/c]", "down"),
                                  ("/a[/d]", "down"))
        result = implies_by_intersection(premises, no_insert("/a[/b][/c]"))
        assert result.is_implied
        assert len(result.details["subset"]) == 2

    def test_rejects_full_fragment(self):
        premises = constraint_set(("/a[/b]//*", "up"))
        with pytest.raises(FragmentError):
            implies_by_intersection(premises, no_remove("/a[/b]//*"))


class TestSameTypeTheorem41:
    def test_opposite_type_premises_ignored_without_descendant(self):
        premises = constraint_set(("/a[/b]", "up"), ("/a[/c]", "down"),
                                  ("/a[/c]", "up"))
        conclusion = no_remove("/a[/b][/c]")
        full = implies_child_only(premises, conclusion)
        filtered = implies_one_type(premises.of_type(conclusion.type), conclusion)
        assert full.answer == filtered.answer == Answer.IMPLIED

    def test_refutation_certificate_respects_all_premises(self):
        premises = constraint_set(("/a[/b]", "up"), ("/a", "down"))
        result = implies_child_only(premises, no_remove("/a[/b][/c]"))
        assert result.is_refuted
        if result.counterexample is not None:
            assert result.verify() == []

    def test_rejects_descendant(self):
        premises = constraint_set(("//a", "up"), ("//b", "down"))
        with pytest.raises(FragmentError):
            implies_child_only(premises, no_remove("//a"))


class TestLinearEngines:
    def test_example_41_mixed_interaction(self):
        """Example 4.1: the same-type property fails with '//'."""
        premises = constraint_set(
            ("//a//c", "up"), ("//b//c", "up"), ("//a//b//c", "down"),
            ("//a//b//a//c", "up"), ("//b//a//b//c", "up"),
        )
        conclusion = no_remove("//b//a//c")
        assert implies_linear(premises, conclusion).is_implied
        up_only = implies_linear(premises.of_type(conclusion.type), conclusion)
        assert_refutation_certified(up_only)

    def test_claim_engine_matches_fixpoint_on_one_type(self, rng):
        from repro.workloads import FragmentSpec, random_constraints, random_pattern

        spec = FragmentSpec(predicates=False)
        for _ in range(25):
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types="up", spine=3)
            conclusion = no_remove(random_pattern(rng, ["a", "b"], spec, spine=3))
            claim = implies_linear_one_type(premises, conclusion)
            fixpoint = implies_linear(premises, conclusion)
            assert claim.answer == fixpoint.answer, (str(premises), str(conclusion))

    def test_fixpoint_certificates_check_out(self, rng):
        from repro.workloads import FragmentSpec, random_constraints, random_pattern

        spec = FragmentSpec(predicates=False)
        refuted = 0
        for _ in range(30):
            premises = random_constraints(rng, ["a", "b"], spec, count=3,
                                          types="mixed", spine=2)
            conclusion = no_remove(random_pattern(rng, ["a", "b"], spec, spine=2))
            result = implies_linear(premises, conclusion)
            if result.is_refuted:
                refuted += 1
                assert result.counterexample is not None
                assert result.verify() == [], (str(premises), str(conclusion),
                                               result.verify())
        assert refuted > 0  # the workload must exercise the certificate path

    def test_rejects_predicates(self):
        premises = constraint_set(("/a[/b]", "up"))
        with pytest.raises(FragmentError):
            implies_linear(premises, no_remove("/a"))


class TestDispatcher:
    def test_routes_by_fragment(self):
        linear = implies(constraint_set(("//a", "up"), ("//b", "down")),
                         no_remove("//a"))
        assert linear.engine == "linear-record-fixpoint"
        child_only = implies(constraint_set(("/a[/b]", "up"), ("/a", "down")),
                             no_remove("/a[/b]"))
        assert child_only.engine == "same-type-thm41"
        single = implies(constraint_set(("/a[/b]//c", "up")), no_remove("/a[/b]//c"))
        assert single.engine == "canonical-one-type"

    def test_cross_type_shortcut(self):
        result = implies(constraint_set(("/a", "up")), no_insert("/a"))
        assert_refutation_certified(result)

    def test_hybrid_sound_implication(self):
        premises = constraint_set(("/a[/b]//c", "down"), ("/a", "up"))
        result = implies(premises, no_insert("/a[/b]//c"))
        assert result.is_implied

    def test_hybrid_refutation_or_unknown_never_lies(self):
        premises = constraint_set(("/a[/b]//c", "down"), ("//c", "up"))
        result = implies(premises, no_insert("//b//c"))
        assert result.answer in (Answer.NOT_IMPLIED, Answer.UNKNOWN)
        if result.counterexample is not None:
            assert result.verify() == []

    def test_require_decision_raises_on_unknown(self):
        from repro.errors import UnsupportedProblemError

        premises = constraint_set(("/a[/b]//c", "up"), ("/a[/b]", "down"),
                                  ("//c", "up"))
        conclusion = no_remove("/a[/b]//c[/d]")
        outcome = implies(premises, conclusion)
        if outcome.is_unknown:
            with pytest.raises(UnsupportedProblemError):
                implies(premises, conclusion, require_decision=True)


class TestOracleCrossValidation:
    """Engines vs exhaustive enumeration on tiny universes."""

    @pytest.mark.parametrize("types", ["up", "down"])
    def test_one_type_engine_against_oracle(self, rng, types):
        from repro.workloads import FragmentSpec, random_constraints, random_pattern

        spec = FragmentSpec(wildcard=False)
        builder = no_remove if types == "up" else no_insert
        for _ in range(10):
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types=types, spine=2)
            conclusion = builder(random_pattern(rng, ["a", "b"], spec, spine=2))
            result = implies_one_type(premises, conclusion)
            if result.is_implied:
                oracle = oracle_implies(premises, conclusion, max_nodes=3,
                                        budget=120000)
                assert not oracle.refuted, (str(premises), str(conclusion),
                                            oracle.counterexample)
            else:
                assert result.verify() == []

    def test_mixed_linear_engine_against_oracle(self, rng):
        from repro.workloads import FragmentSpec, random_constraints, random_pattern

        spec = FragmentSpec(predicates=False, wildcard=False)
        for _ in range(8):
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types="mixed", spine=2)
            conclusion = no_remove(random_pattern(rng, ["a", "b"], spec, spine=2))
            result = implies_linear(premises, conclusion)
            if result.is_implied:
                oracle = oracle_implies(premises, conclusion, max_nodes=3,
                                        budget=120000)
                assert not oracle.refuted, (str(premises), str(conclusion),
                                            oracle.counterexample)
            else:
                assert result.verify() == []

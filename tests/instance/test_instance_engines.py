"""Instance-based implication engines (Table 2): units + cross-validation."""

import pytest

from repro.bruteforce import oracle_implies_on
from repro.constraints import ConstraintSet, constraint_set, no_insert, no_remove
from repro.errors import FragmentError
from repro.instance import (
    build_certain_facts,
    implies_by_certain_facts,
    implies_no_insert,
    implies_no_insert_linear,
    implies_no_remove,
    implies_on,
    merge_variants,
)
from repro.implication.result import Answer
from repro.trees import branch, build, parse_tree


def assert_refutation_certified(result):
    assert result.is_refuted
    assert result.counterexample is not None
    assert result.verify() == [], result.verify()


class TestNoInsertEngine:
    def test_unpinned_node_refutes(self):
        current = parse_tree("a(b)")
        premises = constraint_set(("/a", "down"))
        result = implies_no_insert(premises, current, no_insert("/a/b"))
        assert_refutation_certified(result)

    def test_pinned_node_implies(self):
        current = parse_tree("a(b)")
        premises = constraint_set(("/a/b", "down"))
        result = implies_no_insert(premises, current, no_insert("/a/b"))
        assert result.is_implied

    def test_escape_through_weaker_range(self):
        # b is pinned by //b only: it could have been at another depth,
        # so /a/b is not implied...
        current = parse_tree("a(b)")
        premises = constraint_set(("//b", "down"))
        result = implies_no_insert(premises, current, no_insert("/a/b"))
        assert_refutation_certified(result)
        # ...but //b itself is implied.
        assert implies_no_insert(premises, current, no_insert("//b")).is_implied

    def test_empty_answer_trivially_implied(self):
        current = parse_tree("a")
        premises = ConstraintSet([])
        assert implies_no_insert(premises, current, no_insert("/a/b")).is_implied

    def test_predicate_interplay(self):
        current = parse_tree("p(v, t)")
        premises = constraint_set(("/p[/v]", "down"), ("/p[/t]", "down"))
        assert implies_no_insert(premises, current,
                                 no_insert("/p[/v][/t]")).is_implied

    def test_rejects_wrong_types(self):
        with pytest.raises(FragmentError):
            implies_no_insert(constraint_set(("/a", "up")), parse_tree("a"),
                              no_insert("/a"))


class TestCertainFacts:
    def test_f_j_contains_witnessed_nodes(self):
        current = build(branch("a", branch("b", nid=888001)))
        premises = constraint_set(("/a/b", "down"))
        facts = build_certain_facts(premises, current)
        assert 888001 in facts
        assert facts.path_labels(888001) == ("a", "b")

    def test_f_j_merges_constraints_on_same_node(self):
        current = build(branch("a", branch("b", nid=888002), branch("c")))
        premises = constraint_set(("/a/b", "down"), ("/*/b", "down"),
                                  ("/a[/c]/b", "down"))
        facts = build_certain_facts(premises, current)
        assert facts.path_labels(888002) == ("a", "b")
        parent = facts.parent(888002)
        assert any(facts.label(k) == "c" for k in facts.children(parent))

    def test_agrees_with_escape_engine(self, rng):
        from repro.workloads import (FragmentSpec, random_constraints,
                                     random_pattern, random_tree)

        spec = FragmentSpec(descendant=False)
        for _ in range(20):
            current = random_tree(rng, ["a", "b", "c"], size=5)
            premises = random_constraints(rng, ["a", "b", "c"], spec,
                                          count=2, types="down", spine=2)
            conclusion = no_insert(random_pattern(rng, ["a", "b", "c"], spec,
                                                  spine=2))
            by_facts = implies_by_certain_facts(premises, current, conclusion)
            by_escape = implies_no_insert(premises, current, conclusion)
            assert by_facts.answer == by_escape.answer, (
                str(premises), str(conclusion))

    def test_rejects_descendant(self):
        with pytest.raises(FragmentError):
            implies_by_certain_facts(constraint_set(("//a", "down")),
                                     parse_tree("a"), no_insert("//a"))


class TestLinearInstanceEngine:
    def test_agrees_with_general_engine(self, rng):
        from repro.workloads import (FragmentSpec, random_constraints,
                                     random_pattern, random_tree)

        spec = FragmentSpec(predicates=False)
        for _ in range(20):
            current = random_tree(rng, ["a", "b"], size=4)
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types="down", spine=2)
            conclusion = no_insert(random_pattern(rng, ["a", "b"], spec, spine=2))
            linear = implies_no_insert_linear(premises, current, conclusion)
            general = implies_no_insert(premises, current, conclusion)
            assert linear.answer == general.answer, (str(premises),
                                                     str(conclusion))
            if linear.is_refuted:
                assert linear.verify() == []


class TestNoRemoveEngine:
    def test_example_22(self):
        """Section 2.1's instance-based example, both directions."""
        premises = constraint_set(("/patient/visit", "up"))
        conclusion = no_remove("/patient[/clinicalTrial]/visit")
        everyone_in_trial = build(
            branch("patient", branch("clinicalTrial"), branch("visit")),
            branch("patient", branch("clinicalTrial"), branch("visit")),
        )
        assert implies_no_remove(premises, everyone_in_trial,
                                 conclusion).is_implied
        somebody_not = build(
            branch("patient", branch("clinicalTrial"), branch("visit")),
            branch("patient", branch("visit")),
        )
        result = implies_no_remove(premises, somebody_not, conclusion)
        assert_refutation_certified(result)

    def test_fresh_witness_when_unconstrained(self):
        current = parse_tree("a")
        premises = constraint_set(("/x", "up"))
        result = implies_no_remove(premises, current, no_remove("/a/b"))
        assert_refutation_certified(result)

    def test_merge_variants_cover_quotients(self):
        tree = parse_tree("a(b(c), b(d))")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        shapes = {t.canonical_shape() for t, _ in merge_variants(tree, a)}
        assert parse_tree("a(b(c, d))").canonical_shape() in shapes
        assert tree.canonical_shape() in shapes

    def test_merge_variants_deep_chain_no_recursion_limit(self):
        # The quotient walk and its dedup keys must stay iterative: a long
        # chain of mergeable sibling pairs used to blow the recursion limit.
        from repro.trees import DataTree

        tree = DataTree()
        cur = tree.root
        for _ in range(400):
            cur = tree.add_child(cur, "p")
            tree.add_child(cur, "a")
            tree.add_child(cur, "a")
        produced = sum(1 for _ in merge_variants(tree, tree.root, budget=600))
        assert produced == 600

    def test_merging_needed_for_scarce_resources(self):
        # q needs two b-descendants in I; J has a single b in range. Without
        # sibling merging the identification would wrongly fail.
        premises = constraint_set(("/a/b", "up"))
        current = parse_tree("a(b(c, d))")
        conclusion = no_remove("/a[/b[/c]][/b[/d]]")
        result = implies_no_remove(premises, current, conclusion)
        # A past with ONE b node carrying both c and d is legal and is not
        # in q(J)... actually a[b[c,d]] IS in q(J); so implication holds
        # only if every embedding hits it.  The engine must consider the
        # merged candidate to answer IMPLIED here.
        assert result.answer in (Answer.IMPLIED, Answer.NOT_IMPLIED)
        if result.is_refuted:
            assert result.verify() == []

    def test_rejects_wrong_types(self):
        with pytest.raises(FragmentError):
            implies_no_remove(constraint_set(("/a", "down")), parse_tree("a"),
                              no_remove("/a"))


class TestCrossTypeInstance:
    def test_up_premises_down_conclusion(self):
        premises = constraint_set(("/a", "up"), ("//b", "up"))
        empty_answer = parse_tree("a")
        assert implies_on(premises, empty_answer, no_insert("/a/b")).is_implied
        nonempty = parse_tree("a(b)")
        result = implies_on(premises, nonempty, no_insert("/a/b"))
        assert_refutation_certified(result)

    def test_down_premises_up_conclusion_never_implied(self):
        premises = constraint_set(("/a", "down"))
        result = implies_on(premises, parse_tree("a"), no_remove("/a/b"))
        assert_refutation_certified(result)


class TestInstanceDispatcher:
    def test_routes_pure_types(self):
        current = parse_tree("a(b)")
        down = implies_on(constraint_set(("/a/b", "down")), current,
                          no_insert("/a/b"))
        assert down.engine == "instance-no-insert"
        up = implies_on(constraint_set(("/a/b", "up")), current,
                        no_remove("/a/b"))
        assert up.engine == "instance-no-remove-embeddings"

    def test_mixed_subset_implication(self):
        current = parse_tree("a(b)")
        premises = constraint_set(("/a/b", "down"), ("/a", "up"))
        result = implies_on(premises, current, no_insert("/a/b"))
        assert result.is_implied

    def test_mixed_search_refutation_validated(self):
        current = parse_tree("a(b), c")
        premises = constraint_set(("//b", "down"), ("/c", "up"))
        result = implies_on(premises, current, no_insert("/a/b"))
        assert result.answer in (Answer.NOT_IMPLIED, Answer.UNKNOWN)
        if result.counterexample is not None:
            assert result.verify() == []

    def test_oracle_cross_validation(self, rng):
        from repro.workloads import (FragmentSpec, random_constraints,
                                     random_pattern, random_tree)

        spec = FragmentSpec(wildcard=False, descendant=False)
        for _ in range(8):
            current = random_tree(rng, ["a", "b"], size=3)
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types="down", spine=2)
            conclusion = no_insert(random_pattern(rng, ["a", "b"], spec, spine=2))
            result = implies_on(premises, current, conclusion)
            if result.is_implied:
                oracle = oracle_implies_on(premises, current, conclusion,
                                           max_nodes=3, budget=150000)
                assert not oracle.refuted, (str(premises), str(conclusion))
            elif result.is_refuted:
                assert result.verify() == []

    def test_oracle_cross_validation_no_remove(self, rng):
        from repro.workloads import (FragmentSpec, random_constraints,
                                     random_pattern, random_tree)

        spec = FragmentSpec(wildcard=False, descendant=False)
        for _ in range(8):
            current = random_tree(rng, ["a", "b"], size=3)
            premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                          types="up", spine=2)
            conclusion = no_remove(random_pattern(rng, ["a", "b"], spec, spine=2))
            result = implies_on(premises, current, conclusion)
            if result.is_implied:
                oracle = oracle_implies_on(premises, current, conclusion,
                                           max_nodes=3, budget=150000)
                assert not oracle.refuted, (str(premises), str(conclusion))
            elif result.is_refuted:
                assert result.verify() == []

"""Hardness reductions (Theorems 4.6, 5.2, 5.6): semantic validation.

The satisfiable direction of each reduction is constructive; the tests
materialise the counterexample the proofs describe and verify it with the
independent validity checker.  For the unsatisfiable direction the tests
confirm no engine ever *refutes* implication (a refutation would contradict
the theorem) on the canonical unsat formula.
"""

import random

import pytest

from repro.constraints.validity import is_valid, violation_of
from repro.reductions import (
    EXAMPLE_SAT,
    EXAMPLE_UNSAT,
    build_problem,
    clause,
    cnf,
    pair_from_assignment,
    past_from_assignment,
    random_3cnf,
    theorem_52_problem,
    theorem_56_problem,
)


class TestCNF:
    def test_example_formulas(self):
        assert EXAMPLE_SAT.satisfiable
        assert not EXAMPLE_UNSAT.satisfiable

    def test_evaluate(self):
        formula = cnf(2, clause(1, 2, 2))
        assert formula.evaluate({1: True, 2: False})
        assert not formula.evaluate({1: False, 2: False})

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            cnf(1, clause(1, 2, 1))

    def test_random_formula_shape(self):
        rng = random.Random(7)
        formula = random_3cnf(rng, 4, 6)
        assert formula.n_vars == 4 and len(formula.clauses) == 6

    def test_assignment_count(self):
        assert sum(1 for _ in cnf(3, clause(1, 2, 3)).assignments()) == 8


class TestTheorem52:
    def test_sat_yields_valid_counterexample(self):
        problem = theorem_52_problem(EXAMPLE_SAT)
        assignment = EXAMPLE_SAT.satisfying_assignment()
        past = past_from_assignment(problem, assignment)
        assert is_valid(past, problem.current, problem.premises)
        assert violation_of(past, problem.current, problem.conclusion) is not None

    def test_every_satisfying_assignment_works(self):
        problem = theorem_52_problem(EXAMPLE_SAT)
        count = 0
        for assignment in EXAMPLE_SAT.assignments():
            if not EXAMPLE_SAT.evaluate(assignment):
                continue
            count += 1
            past = past_from_assignment(problem, assignment)
            assert is_valid(past, problem.current, problem.premises)
        assert count >= 1

    def test_falsifying_assignment_breaks_premises(self):
        problem = theorem_52_problem(EXAMPLE_SAT)
        falsifying = next(a for a in EXAMPLE_SAT.assignments()
                          if not EXAMPLE_SAT.evaluate(a))
        past = past_from_assignment(problem, falsifying)
        assert not is_valid(past, problem.current, problem.premises)

    def test_unsat_splits_all_fail(self):
        problem = theorem_52_problem(EXAMPLE_UNSAT)
        for assignment in EXAMPLE_UNSAT.assignments():
            past = past_from_assignment(problem, assignment)
            assert not is_valid(past, problem.current, problem.premises)

    def test_engines_never_contradict_the_theorem(self):
        """On the unsat instance no engine may refute implication."""
        from repro.instance import implies_on

        problem = theorem_52_problem(EXAMPLE_UNSAT)
        result = implies_on(problem.premises, problem.current,
                            problem.conclusion, max_moves=1, search_budget=300)
        assert not result.is_refuted

    def test_conclusion_nonempty_in_current(self):
        from repro.xpath import evaluate_ids

        problem = theorem_52_problem(EXAMPLE_SAT)
        assert evaluate_ids(problem.conclusion.range, problem.current)


class TestTheorem56:
    def test_sat_yields_valid_counterexample(self):
        problem = theorem_56_problem(EXAMPLE_SAT)
        assignment = EXAMPLE_SAT.satisfying_assignment()
        past = past_from_assignment(problem, assignment)
        assert is_valid(past, problem.current, problem.premises)
        assert violation_of(past, problem.current, problem.conclusion) is not None

    def test_w_marker_present(self):
        problem = theorem_56_problem(EXAMPLE_SAT)
        assert problem.w_id is not None
        assert problem.current.label(problem.w_id) == "w"


class TestTheorem46:
    def test_constraint_count_polynomial(self):
        small = build_problem(EXAMPLE_SAT)
        rng = random.Random(3)
        big = build_problem(random_3cnf(rng, 5, 4))
        assert len(big.premises) > len(small.premises)

    def test_sat_yields_valid_counterexample(self):
        problem = build_problem(EXAMPLE_SAT)
        assignment = EXAMPLE_SAT.satisfying_assignment()
        before, after, witness = pair_from_assignment(problem, assignment)
        assert is_valid(before, after, problem.premises)
        violation = violation_of(before, after, problem.conclusion)
        assert violation is not None
        assert witness in {n.nid for n in violation.removed}

    def test_all_satisfying_assignments_work(self):
        formula = cnf(2, clause(1, 2, 2))
        problem = build_problem(formula)
        for assignment in formula.assignments():
            if not formula.evaluate(assignment):
                continue
            before, after, _ = pair_from_assignment(problem, assignment)
            assert is_valid(before, after, problem.premises), assignment

    def test_unsat_assignment_pairs_always_break_premises(self):
        problem = build_problem(EXAMPLE_UNSAT)
        for assignment in EXAMPLE_UNSAT.assignments():
            before, after, _ = pair_from_assignment(problem, assignment)
            assert not is_valid(before, after, problem.premises), assignment

"""The metrics registry: instruments, edge cases, export, merge."""

import asyncio
import json
import threading

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flat_name,
    registry,
    set_registry,
)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
class TestCountersAndGauges:
    def test_counter_accumulates_and_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("stream.ops_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("server.inflight_requests")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2

    def test_same_name_same_labels_is_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b_total") is reg.counter("a.b_total")
        assert (reg.counter("a.b_total", kind="x")
                is not reg.counter("a.b_total", kind="y"))

    def test_kind_clash_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a.b_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a.b_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("a.b_total")

    def test_labels_sort_into_one_key(self):
        reg = MetricsRegistry()
        a = reg.counter("c.n_total", x="1", y="2")
        b = reg.counter("c.n_total", y="2", x="1")
        assert a is b
        assert flat_name(a.name, a.labels) == 'c.n_total{x="1",y="2"}'


# ----------------------------------------------------------------------
# Histogram edge cases (satellite: boundary, overflow, merge, concurrency)
# ----------------------------------------------------------------------
class TestHistogramEdges:
    def test_value_on_bucket_boundary_lands_in_that_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.x_seconds", buckets=(0.1, 0.2, 0.4))
        h.observe(0.2)  # le=0.2 is inclusive: counts into the 0.2 bucket
        assert h.bucket_counts == (0, 1, 0, 0)
        cumulative = dict(h.cumulative())
        assert cumulative[repr(0.1)] == 0
        assert cumulative[repr(0.2)] == 1
        assert cumulative[repr(0.4)] == 1
        assert cumulative["+Inf"] == 1

    def test_overflow_bucket_catches_values_past_the_last_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.x_seconds", buckets=(1.0, 2.0))
        h.observe(99.0)
        h.observe(2.0)   # boundary: not overflow
        assert h.bucket_counts == (0, 1, 1)
        assert h.count == 2
        assert h.sum == pytest.approx(101.0)

    def test_bounds_must_strictly_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            reg.histogram("t.bad_seconds", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increase"):
            reg.histogram("t.bad2_seconds", buckets=(2.0, 1.0))

    def test_re_request_with_different_bounds_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("t.x_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("t.x_seconds", buckets=(1.0, 3.0))
        # no buckets argument accepts whatever is registered
        assert reg.histogram("t.x_seconds").bounds == (1.0, 2.0)

    def test_merge_adds_counters_and_histograms_takes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total").inc(2)
        b.counter("c_total").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(7)
        for value in (0.05, 0.3):
            a.histogram("h_seconds", buckets=(0.1, 0.5)).observe(value)
        b.histogram("h_seconds", buckets=(0.1, 0.5)).observe(0.05)
        a.merge(b)
        assert a.counter("c_total").value == 5
        assert a.gauge("g").value == 7
        merged = a.histogram("h_seconds")
        assert merged.count == 3
        assert merged.bucket_counts == (2, 1, 0)
        assert merged.sum == pytest.approx(0.4)

    def test_concurrent_increments_from_asyncio_tasks(self):
        reg = MetricsRegistry()

        async def run():
            counter = reg.counter("t.hits_total")
            hist = reg.histogram("t.lat_seconds", buckets=COUNT_BUCKETS)

            async def worker(n):
                for i in range(n):
                    counter.inc()
                    hist.observe(float(i % 7))
                    if i % 16 == 0:
                        await asyncio.sleep(0)

            await asyncio.gather(*(worker(200) for _ in range(8)))

        asyncio.run(run())
        assert reg.counter("t.hits_total").value == 1600
        assert reg.histogram("t.lat_seconds").count == 1600

    def test_concurrent_increments_from_threads(self):
        reg = MetricsRegistry()
        counter = reg.counter("t.hits_total")
        hist = reg.histogram("t.lat_seconds")

        def worker():
            for _ in range(500):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 3000
        assert hist.count == 3000


# ----------------------------------------------------------------------
# Export: to_dict / to_json / render
# ----------------------------------------------------------------------
class TestExport:
    def test_to_dict_sections_and_flat_keys(self):
        reg = MetricsRegistry()
        reg.counter("s.ops_total", kind="query").inc(3)
        reg.gauge("s.depth").set(2)
        reg.histogram("s.lat_seconds", buckets=(0.1,)).observe(0.05)
        snap = reg.to_dict()
        assert snap["counters"] == {'s.ops_total{kind="query"}': 3}
        assert snap["gauges"] == {"s.depth": 2}
        hist = snap["histograms"]["s.lat_seconds"]
        assert hist["count"] == 1
        assert hist["buckets"][-1] == ["+Inf", 1]
        json.loads(reg.to_json())  # JSON-safe round trip

    def test_render_is_prometheus_shaped(self):
        reg = MetricsRegistry()
        reg.counter("stream.ops_total").inc(2)
        reg.histogram("journal.fsync_seconds", buckets=(0.5,)).observe(0.1)
        text = reg.render()
        assert "# TYPE stream_ops_total counter" in text
        assert "stream_ops_total 2" in text
        assert "# TYPE journal_fsync_seconds histogram" in text
        assert 'journal_fsync_seconds_bucket{le="0.5"} 1' in text
        assert 'journal_fsync_seconds_bucket{le="+Inf"} 1' in text
        assert "journal_fsync_seconds_count 1" in text

    def test_iteration_is_sorted_and_len_counts(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert [i.name for i in reg] == ["a_total", "b_total"]
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0


# ----------------------------------------------------------------------
# NULL registry and the global default
# ----------------------------------------------------------------------
class TestDisabledAndGlobal:
    def test_null_registry_hands_out_noop_instruments(self):
        NULL.counter("x_total").inc(5)
        NULL.gauge("y").set(9)
        NULL.histogram("z_seconds").observe(1.0)
        assert NULL.counter("x_total").value == 0
        assert NULL.gauge("y").value == 0
        assert NULL.histogram("z_seconds").count == 0
        assert len(NULL) == 0
        assert isinstance(NULL.counter("x_total"), Counter)
        assert isinstance(NULL.gauge("y"), Gauge)
        assert isinstance(NULL.histogram("z_seconds"), Histogram)

    def test_set_registry_swaps_and_restores_the_global(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert registry() is fresh
            registry().counter("swap.test_total").inc()
            assert fresh.counter("swap.test_total").value == 1
        finally:
            assert set_registry(previous) is fresh
        assert registry() is previous

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)

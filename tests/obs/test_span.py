"""Spans and trace ids: timing histograms, contextvar propagation."""

import asyncio
import time

from repro.obs import (
    MetricsRegistry,
    new_trace_id,
    span,
    trace_id,
    tracing,
)


class TestSpan:
    def test_span_times_into_name_seconds_histogram(self):
        reg = MetricsRegistry()
        with span("journal.fsync", registry=reg) as s:
            time.sleep(0.002)
        hist = reg.histogram("journal.fsync_seconds")
        assert hist.count == 1
        assert s.seconds >= 0.002
        assert hist.sum == s.seconds

    def test_span_records_even_when_the_block_raises(self):
        reg = MetricsRegistry()
        try:
            with span("work", registry=reg):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert reg.histogram("work_seconds").count == 1

    def test_span_labels_reach_the_histogram(self):
        reg = MetricsRegistry()
        with span("fleet.check", registry=reg, backend="numpy"):
            pass
        assert reg.histogram("fleet.check_seconds", backend="numpy").count == 1


class TestTracing:
    def test_no_trace_by_default(self):
        assert trace_id() is None

    def test_new_trace_ids_are_unique_and_prefixed(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(t.startswith("t-") and len(t) == 14 for t in ids)

    def test_tracing_installs_and_restores(self):
        with tracing("t-abc"):
            assert trace_id() == "t-abc"
            with tracing("t-inner"):
                assert trace_id() == "t-inner"
            assert trace_id() == "t-abc"
            with tracing(None):  # None clears the inherited id
                assert trace_id() is None
        assert trace_id() is None

    def test_span_carries_the_current_trace(self):
        reg = MetricsRegistry()
        with tracing("t-123"):
            with span("op", registry=reg) as s:
                pass
        assert s.trace == "t-123"

    def test_trace_is_task_local_in_asyncio(self):
        async def run():
            seen = {}

            async def worker(tid):
                with tracing(tid):
                    await asyncio.sleep(0.001)
                    seen[tid] = trace_id()

            await asyncio.gather(worker("t-a"), worker("t-b"))
            return seen

        seen = asyncio.run(run())
        assert seen == {"t-a": "t-a", "t-b": "t-b"}

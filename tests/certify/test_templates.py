"""Template algebra unit tests: holes, guards, codecs, canonical form.

The load-bearing surface is the split documented in
:mod:`repro.certify.templates`: binding-domain and subtree-label checks
are **soundness-bearing** (the certifier's label-disjointness argument
transfers to an instantiation only because the guard enforces the hole
bounds), while a :class:`NodeHole` anchor is a usability precondition.
These tests pin both halves, plus the wire codec (patterns as XPath
text) and the canonical form that keys structurally-equal templates
together.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.certify.templates import (
    LabelHole,
    NodeHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    TemplateRemove,
    UpdateTemplate,
    bindings_from_wire,
    bindings_to_wire,
    sample_bindings,
)
from repro.errors import CertifyError
from repro.stream.ops import AddLeaf, Move, RemoveSubtree
from repro.trees import branch, build
from repro.xpath.parser import parse


def ward() -> "DataTree":
    """patient(visit, note), patient(visit) with pinned ids."""
    return build(
        branch("patient",
               branch("visit", nid=7),
               branch("note", nid=8),
               nid=5),
        branch("patient", branch("visit", nid=9), nid=6),
    )


ANNOTATE = UpdateTemplate("annotate", (
    TemplateAdd(NodeHole("p", parse("/patient")),
                LabelHole("l", frozenset({"note", "memo"}))),
))


# ----------------------------------------------------------------------
# Hole and template validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_label_hole_needs_a_domain(self):
        with pytest.raises(CertifyError, match="empty"):
            LabelHole("l", frozenset())

    def test_subtree_hole_needs_labels(self):
        with pytest.raises(CertifyError, match="declares no"):
            SubtreeHole("s", frozenset())

    def test_holes_need_names(self):
        with pytest.raises(CertifyError, match="non-empty name"):
            NodeHole("")

    def test_template_needs_ops(self):
        with pytest.raises(CertifyError, match="no operations"):
            UpdateTemplate("empty", ())

    def test_one_name_one_declaration(self):
        """The same hole name must mean the same hole everywhere."""
        with pytest.raises(CertifyError, match="two different"):
            UpdateTemplate("clash", (
                TemplateAdd(NodeHole("x"), "note"),
                TemplateRemove(SubtreeHole("x", frozenset({"note"}))),
            ))

    def test_shared_hole_is_one_hole(self):
        tpl = UpdateTemplate("twice", (
            TemplateAdd(NodeHole("p"), "note"),
            TemplateAdd(NodeHole("p"), "memo"),
        ))
        assert [h.name for h in tpl.holes()] == ["p"]


# ----------------------------------------------------------------------
# Instantiation
# ----------------------------------------------------------------------
class TestInstantiate:
    def test_yields_concrete_ops_with_unpinned_ids(self):
        ops = ANNOTATE.instantiate({"p": 5, "l": "note"})
        assert ops == (AddLeaf(5, "note"),)
        assert ops[0].nid is None

    def test_shared_hole_fills_every_position(self):
        tpl = UpdateTemplate("pair", (
            TemplateAdd(NodeHole("p"), "note"),
            TemplateAdd(NodeHole("p"), "memo"),
        ))
        assert tpl.instantiate({"p": 6}) == (AddLeaf(6, "note"),
                                             AddLeaf(6, "memo"))

    def test_mixed_kinds(self):
        tpl = UpdateTemplate("mixed", (
            TemplateMove(SubtreeHole("s", frozenset({"visit"})),
                         NodeHole("d")),
            TemplateRemove(SubtreeHole("s", frozenset({"visit"}))),
        ))
        assert tpl.instantiate({"s": 7, "d": 6}) == (Move(7, 6),
                                                     RemoveSubtree(7))

    @pytest.mark.parametrize("bindings, why", [
        ({"p": 5}, "unbound"),
        ({"p": 5, "l": "note", "zz": 1}, "binding names no hole"),
        ({"p": 5, "l": "visit"}, "outside"),
        ({"p": "five", "l": "note"}, "takes a node id"),
        ({"p": True, "l": "note"}, "takes a node id"),
        ({"p": 5, "l": 8}, "takes a label"),
    ])
    def test_domain_violations_raise(self, bindings, why):
        with pytest.raises(CertifyError, match=why):
            ANNOTATE.instantiate(bindings)


# ----------------------------------------------------------------------
# The guard
# ----------------------------------------------------------------------
class TestGuard:
    def test_passing_binding(self):
        assert ANNOTATE.guard_errors({"p": 5, "l": "note"}, ward()) is None

    def test_missing_node(self):
        assert "not in the document" in ANNOTATE.guard_errors(
            {"p": 404, "l": "note"}, ward())

    def test_anchor_mismatch_is_refused(self):
        # Node 7 exists but is a visit, not a patient.
        assert "anchor" in ANNOTATE.guard_errors({"p": 7, "l": "note"},
                                                 ward())

    def test_descendant_anchor_matches_any_depth(self):
        tpl = UpdateTemplate("deep", (
            TemplateAdd(NodeHole("p", parse("//visit")), "note"),))
        doc = ward()
        assert tpl.guard_errors({"p": 7}, doc) is None
        assert tpl.guard_errors({"p": 9}, doc) is None
        assert "anchor" in tpl.guard_errors({"p": 5}, doc)

    def test_subtree_label_bound_is_enforced(self):
        """The soundness-bearing check: content outside the declared set."""
        tpl = UpdateTemplate("drop", (
            TemplateRemove(SubtreeHole("s", frozenset({"visit"}))),))
        doc = ward()
        assert tpl.guard_errors({"s": 7}, doc) is None
        # Node 5's subtree contains 'patient', 'visit' and 'note'.
        assert "outside hole" in tpl.guard_errors({"s": 5}, doc)

    def test_root_is_immovable(self):
        tpl = UpdateTemplate("drop", (TemplateRemove(NodeHole("s")),))
        doc = ward()
        assert "root" in tpl.guard_errors({"s": doc.root}, doc)

    def test_move_into_own_subtree_is_refused(self):
        tpl = UpdateTemplate("mv", (
            TemplateMove(NodeHole("s"), NodeHole("d")),))
        assert "inside the moved subtree" in tpl.guard_errors(
            {"s": 5, "d": 7}, ward())


# ----------------------------------------------------------------------
# Canonical form and keys
# ----------------------------------------------------------------------
class TestCanonical:
    def test_anchor_spelling_does_not_split_keys(self):
        """Predicate order and nesting sugar spell the same program."""
        a = UpdateTemplate("t", (
            TemplateAdd(NodeHole("p", parse("/patient[/visit][/note/x]")),
                        "memo"),))
        b = UpdateTemplate("t", (
            TemplateAdd(NodeHole("p", parse("/patient[/note[/x]][/visit]")),
                        "memo"),))
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_is_idempotent_and_stable(self):
        canon = ANNOTATE.canonical()
        assert canon.canonical() is canon
        assert canon.canonical_key() == ANNOTATE.canonical_key()

    def test_different_domains_key_apart(self):
        other = UpdateTemplate("annotate", (
            TemplateAdd(NodeHole("p", parse("/patient")),
                        LabelHole("l", frozenset({"note"}))),))
        assert other.canonical_key() != ANNOTATE.canonical_key()


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------
ROUND_TRIPPERS = [
    ANNOTATE,
    UpdateTemplate("moves", (
        TemplateMove(SubtreeHole("s", frozenset({"visit", "note"})),
                     NodeHole("d", parse("//patient"))),
        TemplateRemove(7),
        TemplateAdd(5, "note"),
    )),
    UpdateTemplate("plain", (TemplateAdd(NodeHole("p"), "note"),)),
]


class TestWire:
    @pytest.mark.parametrize("template", ROUND_TRIPPERS,
                             ids=lambda t: t.name)
    def test_template_round_trips_through_json(self, template):
        wire = json.loads(json.dumps(template.to_dict()))
        back = UpdateTemplate.from_dict(wire)
        assert back == template
        assert back.canonical_key() == template.canonical_key()

    @pytest.mark.parametrize("data", [
        {"name": "x"},
        {"name": "x", "ops": [{"op": "teleport", "node": 1}]},
        {"name": "x", "ops": [{"op": "add-leaf", "parent": "five",
                               "label": "note"}]},
        {"name": "x", "ops": [{"op": "add-leaf",
                               "parent": {"hole": "wat", "name": "p"},
                               "label": "note"}]},
        {"name": "x", "ops": [{"op": "move", "node": 1,
                               "new_parent": {"hole": "subtree",
                                              "name": "s",
                                              "labels": ["a"]}}]},
    ])
    def test_malformed_wire_raises_certify_error(self, data):
        with pytest.raises(CertifyError):
            UpdateTemplate.from_dict(data)

    def test_bindings_round_trip(self):
        bindings = {"p": 5, "l": "note"}
        assert bindings_from_wire(bindings_to_wire(bindings)) == bindings

    def test_bindings_reject_non_scalar_values(self):
        with pytest.raises(CertifyError, match="node ids or labels"):
            bindings_from_wire({"p": [5]})
        with pytest.raises(CertifyError, match="node ids or labels"):
            bindings_from_wire({"p": True})


# ----------------------------------------------------------------------
# The seeded sampler
# ----------------------------------------------------------------------
class TestSampler:
    def test_samples_pass_the_guard_and_apply_cleanly(self):
        doc = ward()
        rng = random.Random(20070611)
        for _ in range(10):
            drawn = sample_bindings(ANNOTATE, doc, rng)
            assert drawn is not None
            assert ANNOTATE.guard_errors(drawn, doc) is None
            assert drawn["p"] in (5, 6)
            assert drawn["l"] in ("note", "memo")

    def test_deterministic_for_a_seed(self):
        doc = ward()
        a = [sample_bindings(ANNOTATE, doc, random.Random(3))
             for _ in range(5)]
        b = [sample_bindings(ANNOTATE, doc, random.Random(3))
             for _ in range(5)]
        assert a == b

    def test_dry_hole_returns_none(self):
        tpl = UpdateTemplate("dry", (
            TemplateAdd(NodeHole("p", parse("/pharmacy")), "note"),))
        assert sample_bindings(tpl, ward(), random.Random(0)) is None

    def test_structurally_conflicting_draws_are_filtered(self):
        """remove-then-move of the same hole can never apply; the
        sampler must notice via its scratch replay, not hand it out."""
        tpl = UpdateTemplate("conflict", (
            TemplateRemove(SubtreeHole("s", frozenset({"visit"}))),
            TemplateMove(SubtreeHole("s", frozenset({"visit"})), 5),
        ))
        assert sample_bindings(tpl, ward(), random.Random(1)) is None

"""Certifier tests: verdicts, discharge accounting, and the witness duty.

The contract under test is asymmetric by design.  ``CERTIFIED`` is a
*static* promise (no search runs, ``attempts`` stays 0) built from kind
monotonicity and label disjointness over the PR 6 impact signatures.
``REJECTED`` must put its money down: every rejection ships a
:class:`~repro.certify.TemplateCounterexample` whose instantiation
**replays** to a real commit rejection through an uncertified
:class:`~repro.stream.engine.StreamEnforcer` — the search never lies.
``UNKNOWN`` is the honest residue of a bounded search and is treated as
not-certifiable everywhere downstream.
"""

from __future__ import annotations

import pytest

from repro.certify import (
    CertifyVerdict,
    LabelHole,
    NodeHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    TemplateRemove,
    UpdateTemplate,
    certify,
    discharge_pairs,
)
from repro.constraints import constraint_set
from repro.constraints.validity import Violation
from repro.obs import MetricsRegistry
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import Begin, Commit
from repro.xpath.parser import parse

#: No insertion may create a /patient/visit match; no removal may
#: destroy a /patient[/clinicalTrial] match.
POLICY = constraint_set(
    ("/patient/visit", "down"),
    ("/patient[/clinicalTrial]", "up"),
)

ANNOTATE = UpdateTemplate("annotate", (
    TemplateAdd(NodeHole("p", parse("//patient")),
                LabelHole("l", frozenset({"note", "memo"}))),
))


class TestCertified:
    def test_disjoint_labels_certify_without_search(self):
        outcome = certify(ANNOTATE, POLICY)
        assert outcome.verdict is CertifyVerdict.CERTIFIED
        assert outcome.certified
        assert outcome.attempts == 0, "the static phase must not search"
        assert outcome.pairs == 2 and outcome.discharged == 2
        assert outcome.counterexample is None

    def test_certificate_carries_per_pair_reasons(self):
        cert = certify(ANNOTATE, POLICY).certificate
        assert cert is not None
        assert cert.template_key == ANNOTATE.canonical_key()
        # The add is kind-insensitive to the NO_REMOVE constraint and
        # label-disjoint from the NO_INSERT one.
        assert cert.reasons() == {"kind": 1, "labels": 1}

    def test_kind_monotonicity_alone_suffices(self):
        """An add can never violate a NO_REMOVE-only policy — even when
        the inserted label sits squarely in the constraint's alphabet."""
        up_only = constraint_set(("/patient[/visit]", "up"))
        tpl = UpdateTemplate("spam", (
            TemplateAdd(NodeHole("p"), "visit"),))
        outcome = certify(tpl, up_only)
        assert outcome.certified
        assert outcome.certificate.reasons() == {"kind": 1}

    def test_bounded_subtree_move_certifies_by_disjointness(self):
        tpl = UpdateTemplate("shuffle", (
            TemplateMove(SubtreeHole("s", frozenset({"note", "memo"})),
                         NodeHole("d")),))
        outcome = certify(tpl, POLICY)
        assert outcome.certified
        assert outcome.certificate.reasons() == {"labels": 2}

    def test_discharge_pairs_split_is_exhaustive(self):
        tpl = UpdateTemplate("mix", (
            TemplateAdd(NodeHole("p"), "visit"),        # hits the down
            TemplateRemove(SubtreeHole("s", frozenset({"note"}))),
        ))
        discharged, open_pairs = discharge_pairs(tpl, POLICY)
        assert len(discharged) + len(open_pairs) == len(tpl.ops) * 2
        assert [(at, str(c.range)) for at, c in open_pairs] == \
            [(0, "/patient/visit")]


class TestRejected:
    def test_violating_add_is_rejected_with_a_witness(self):
        tpl = UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p", parse("/patient")), "visit"),))
        outcome = certify(tpl, POLICY)
        assert outcome.verdict is CertifyVerdict.REJECTED
        assert not outcome.certified
        assert outcome.attempts >= 1
        assert outcome.counterexample is not None
        assert outcome.counterexample.violations

    def test_counterexample_replays_to_a_real_violation(self):
        """The witness duty: instantiate the rejected template on the
        shipped document and the commit *actually* fails, with
        first-class :class:`Violation` witnesses — not a static guess."""
        tpl = UpdateTemplate("purge", (
            TemplateRemove(NodeHole("s")),))
        outcome = certify(tpl, POLICY)
        assert outcome.verdict is CertifyVerdict.REJECTED
        ce = outcome.counterexample
        enforcer = StreamEnforcer(POLICY, ce.document.copy(),
                                  analysis=False)
        enforcer.apply(Begin(tpl.name))
        for op in tpl.instantiate(ce.bindings):
            enforcer.apply(op)
        decision = enforcer.apply(Commit())
        assert decision.rejected
        assert decision.violations
        assert all(isinstance(v, Violation) for v in decision.violations)
        assert decision.violations == ce.violations

    def test_rejection_is_deterministic(self):
        """Same seed, same budget → bit-identical witness and bindings
        (journal recovery re-certifies and must reproduce the verdict)."""
        tpl = UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p"), "visit"),))
        a = certify(tpl, POLICY, seed=99)
        b = certify(tpl, POLICY, seed=99)
        assert a.verdict is b.verdict is CertifyVerdict.REJECTED
        assert a.attempts == b.attempts
        # Witness node ids are freshly allocated per call; the *shape*
        # and the violation story must reproduce exactly.
        assert (a.counterexample.document.canonical_shape()
                == b.counterexample.document.canonical_shape())
        assert (sorted(a.counterexample.bindings)
                == sorted(b.counterexample.bindings))
        assert (len(a.counterexample.violations)
                == len(b.counterexample.violations))

    def test_multi_op_interaction_is_caught(self):
        """Each op alone is harmless; the *sequence* removes a trial and
        re-adds a visit — both constraints only trip in combination with
        the right witness, which the search must find."""
        tpl = UpdateTemplate("churn", (
            TemplateRemove(SubtreeHole("s",
                                       frozenset({"clinicalTrial"}))),
            TemplateAdd(NodeHole("p", parse("/patient")), "visit"),
        ))
        outcome = certify(tpl, POLICY)
        assert outcome.verdict is CertifyVerdict.REJECTED
        assert outcome.counterexample.violations


class TestUnknown:
    def test_exhausted_budget_is_unknown_not_certified(self):
        tpl = UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p"), "visit"),))
        outcome = certify(tpl, POLICY, max_bindings=0)
        assert outcome.verdict is CertifyVerdict.UNKNOWN
        assert not outcome.certified
        assert outcome.attempts == 0
        assert outcome.certificate is None
        assert outcome.counterexample is None
        assert outcome.undischarged

    def test_tight_budget_degrades_to_unknown_never_certified(self):
        """Shrinking ``max_bindings`` below what the witness needs loses
        the rejection — to UNKNOWN, the safe side — and the per-document
        cap keeps the total attempts bounded."""
        tpl = UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p"), "visit"),))
        loose = certify(tpl, POLICY, max_bindings=256)
        assert loose.verdict is CertifyVerdict.REJECTED
        tight = certify(tpl, POLICY, max_bindings=1, random_documents=2)
        assert tight.verdict in (CertifyVerdict.REJECTED,
                                 CertifyVerdict.UNKNOWN)
        assert tight.attempts <= 1 * 20  # ≤ one binding per witness doc


class TestAccounting:
    def test_metrics_counters_track_verdicts(self):
        m = MetricsRegistry()
        certify(ANNOTATE, POLICY, metrics=m)
        bad = UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p"), "visit"),))
        certify(bad, POLICY, metrics=m)
        certify(bad, POLICY, max_bindings=0, metrics=m)
        assert m.counter("certify.certified_total").value == 1
        assert m.counter("certify.rejected_total").value == 1
        assert m.counter("certify.unknown_total").value == 1

    def test_wire_stats_are_int_pairs(self):
        outcome = certify(UpdateTemplate("intrude", (
            TemplateAdd(NodeHole("p"), "visit"),)), POLICY)
        stats = dict(outcome.wire_stats())
        assert stats["certify.certified"] == 0
        assert stats["certify.rejected"] == 1
        assert stats["certify.attempts"] == outcome.attempts
        assert stats["certify.witness_violations"] >= 1
        assert all(isinstance(v, int) and not isinstance(v, bool)
                   for v in stats.values())

    def test_wildcard_outputs_are_refused(self):
        from repro.errors import NotConcreteError
        with pytest.raises(NotConcreteError):
            certify(ANNOTATE, constraint_set(("/patient/*", "down")))

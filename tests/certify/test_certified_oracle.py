"""The bit-identical oracle: certified hot path ≡ uncertified replay.

The whole point of :meth:`~repro.stream.engine.StreamEnforcer.
apply_certified` is that skipping the mask work changes *nothing*
observable: for any certified template and any guard-passing binding,
its decisions, audit trail, counters (minus the ``certified``
accounting) and final document are exactly those of replaying
``[Begin(name), *instantiate(bindings), Commit]`` through an uncertified
enforcer — before, between, and after ordinary per-op traffic.  These
Hypothesis suites drive both engines in lockstep on seeded random
documents and templates and compare everything.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.certify import (
    LabelHole,
    NodeHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    TemplateRemove,
    UpdateTemplate,
    certify,
    sample_bindings,
)
from repro.constraints import constraint_set
from repro.errors import CertifyError, StreamError
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import AddLeaf, Begin, Commit
from repro.trees.tree import fresh_id
from repro.workloads import random_tree

import pytest

RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

#: Labels the constraints range over.
HOT = ["a", "b", "c"]
#: Labels certified templates confine themselves to (disjoint from HOT).
COLD = ["x", "y"]

POLICY = constraint_set(
    ("/a/b", "down"),
    ("/a[/c]", "up"),
    ("/b", "down"),
)


def build_document(rng: random.Random) -> "DataTree":
    """A random HOT-labelled tree with a few COLD nodes grafted on, so
    subtree holes have material to move and remove."""
    tree = random_tree(rng, HOT, size=rng.randint(2, 12))
    nodes = list(tree.node_ids())
    for _ in range(rng.randint(2, 5)):
        parent = rng.choice(nodes)
        nodes.append(tree.add_child(parent, rng.choice(COLD)))
    return tree


def build_template(rng: random.Random) -> UpdateTemplate:
    """A random template whose every op is label-confined to COLD."""
    cold = frozenset(COLD)
    ops: list = []
    for at in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.5:
            ops.append(TemplateAdd(NodeHole(f"p{at}"),
                                   LabelHole(f"l{at}", cold)))
        elif roll < 0.8:
            ops.append(TemplateMove(SubtreeHole(f"s{at}", cold),
                                    NodeHole(f"d{at}")))
        else:
            ops.append(TemplateRemove(SubtreeHole(f"s{at}", cold)))
    return UpdateTemplate(f"tpl{rng.randrange(1 << 16)}", tuple(ops))


def certified_pair(seed: int):
    """(template, document, bindings) with the template certified, or
    None when the draw has no guard-passing binding on the document."""
    rng = random.Random(seed)
    template = build_template(rng)
    assert certify(template, POLICY).certified, \
        "COLD-confined templates must always certify against POLICY"
    document = build_document(rng)
    bindings = sample_bindings(template, document, rng)
    if bindings is None:
        return None
    return template, document, bindings


def pinned_ops(template: UpdateTemplate, bindings) -> tuple:
    """The instantiation with fresh-leaf ids pinned up front — node ids
    come from a global allocator, so the bit-identical comparison feeds
    BOTH engines the same concrete sequence (exactly what the durable
    service does at its journal boundary)."""
    return tuple(AddLeaf(op.parent, op.label, nid=fresh_id())
                 if isinstance(op, AddLeaf) and op.nid is None else op
                 for op in template.instantiate(bindings))


def uncertified_bracket(enforcer: StreamEnforcer,
                        template: UpdateTemplate, ops) -> list:
    return [enforcer.apply(op)
            for op in (Begin(template.name), *ops, Commit())]


def audit_lines(enforcer: StreamEnforcer) -> list[str]:
    return [str(d) for d in enforcer.audit]


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_certified_decisions_and_state_are_bit_identical(seed):
    drawn = certified_pair(seed)
    if drawn is None:
        return
    template, document, bindings = drawn
    fast = StreamEnforcer(POLICY, document.copy(), analysis=False)
    slow = StreamEnforcer(POLICY, document.copy(), analysis=False)

    ops = pinned_ops(template, bindings)
    fast_decisions = fast.apply_certified(template, bindings, ops=ops)
    slow_decisions = uncertified_bracket(slow, template, ops)

    assert fast_decisions == slow_decisions
    assert fast.tree == slow.tree
    assert audit_lines(fast) == audit_lines(slow)
    fast_stats = dict(fast.stats.wire_pairs())
    slow_stats = dict(slow.stats.wire_pairs())
    assert fast_stats.pop("certified") == len(template.ops)
    assert slow_stats.pop("certified") == 0
    assert fast_stats == slow_stats


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_certified_between_ordinary_traffic(seed):
    """Interleave: per-op edits, a whole uncertified transaction, the
    certified bracket, more per-op edits — streams stay in lockstep."""
    drawn = certified_pair(seed)
    if drawn is None:
        return
    template, document, bindings = drawn
    rng = random.Random(seed ^ 0xBEEF)
    fast = StreamEnforcer(POLICY, document.copy(), analysis=False)
    slow = StreamEnforcer(POLICY, document.copy(), analysis=False)

    def both(op):
        return fast.apply(op), slow.apply(op)

    def pinned_add(label):
        # Pinned ids here too: each engine would otherwise draw its own
        # fresh id from the global allocator and the trees would drift.
        return AddLeaf(root, label, nid=fresh_id())

    root = document.root
    for _ in range(rng.randint(0, 3)):
        a, b = both(pinned_add(rng.choice(HOT + COLD)))
        assert a == b
    for op in (Begin(), pinned_add("x"), Commit()):
        a, b = both(op)
        assert a == b
    # The certified bracket may no longer pass its guard on the evolved
    # document (an earlier random edit cannot invalidate COLD subtrees
    # it did not touch, but id-bound draws can collide) — both sides
    # must then agree there is nothing to compare.
    if template.guard_errors(bindings, fast.tree) is not None:
        return
    ops = pinned_ops(template, bindings)
    assert (fast.apply_certified(template, bindings, ops=ops)
            == uncertified_bracket(slow, template, ops))
    for _ in range(rng.randint(1, 3)):
        a, b = both(pinned_add(rng.choice(HOT)))
        assert a == b
    assert fast.tree == slow.tree
    assert audit_lines(fast) == audit_lines(slow)


@given(seed=st.integers(min_value=0, max_value=5_000))
@RELAXED
def test_guard_failure_leaves_no_trace(seed):
    """A refused binding is a no-op: document, audit, counters, txn ids
    all exactly as before — the next submission sees a pristine stream."""
    drawn = certified_pair(seed)
    if drawn is None:
        return
    template, document, bindings = drawn
    enforcer = StreamEnforcer(POLICY, document.copy(), analysis=False)
    enforcer.apply(AddLeaf(document.root, "x"))
    before_tree = enforcer.tree.copy()
    before_audit = audit_lines(enforcer)
    before_stats = enforcer.stats.wire_pairs()

    bad = dict(bindings)
    first = next(iter(sorted(bad)))
    bad[first] = 999_999 if isinstance(bad[first], int) else "zz_offside"
    with pytest.raises(CertifyError):
        enforcer.apply_certified(template, bad)

    assert enforcer.tree == before_tree
    assert audit_lines(enforcer) == before_audit
    assert enforcer.stats.wire_pairs() == before_stats
    # ...and a good binding still runs cleanly afterwards.
    if template.guard_errors(bindings, enforcer.tree) is None:
        decisions = enforcer.apply_certified(template, bindings)
        assert all(d.accepted for d in decisions)


def test_certified_refused_inside_an_open_transaction():
    doc = random_tree(random.Random(0), HOT, size=4)
    template = UpdateTemplate("late", (
        TemplateAdd(NodeHole("p"), LabelHole("l", frozenset(COLD))),))
    assert certify(template, POLICY).certified
    enforcer = StreamEnforcer(POLICY, doc.copy(), analysis=False)
    enforcer.apply(Begin())
    with pytest.raises(StreamError, match="bracket"):
        enforcer.apply_certified(template, {"p": doc.root, "l": "x"})
    enforcer.apply(Commit())
    decisions = enforcer.apply_certified(template,
                                         {"p": doc.root, "l": "x"})
    assert [d.accepted for d in decisions] == [True, True, True]

"""The Section 3 substrates: regexes, DTDs, regular keys, XICs, the chase."""

import pytest

from repro.constraints import constraint_set, no_insert, no_remove
from repro.keys import (
    AttributedTree,
    DTD,
    RegularInclusion,
    RegularKey,
    annotation_is_consistent,
    any_of,
    check_all,
    consistent_annotations,
    encode_pair,
    encode_constraints,
    flat_star_dtd,
    pair_satisfies_encoding,
    pattern_closure,
    reg,
    seq,
    star,
    sym,
)
from repro.trees import parse_tree
from repro.workloads import FragmentSpec, random_constraints, random_tree, random_valid_pair
from repro.xic import chase_implication, constraint_to_xic, id_discipline, satisfies
from repro.xpath import parse
from repro.xpath.ast import Axis, Pred


ALPHABET = ("a", "b", "c", "z")


class TestRegex:
    @pytest.mark.parametrize("regex,word,accept", [
        (sym("a"), ("a",), True),
        (sym("a"), ("b",), False),
        (seq(sym("a"), sym("b")), ("a", "b"), True),
        (star(sym("a")), (), True),
        (star(sym("a")), ("a", "a", "a"), True),
        (star(any_of("a", "b")), ("a", "b", "a"), True),
        (star(any_of("a", "b")), ("c",), False),
        (seq(sym("a"), star(any_of()), sym("b")), ("a", "z", "z", "b"), True),
        (seq(sym("a"), star(any_of()), sym("b")), ("a",), False),
    ])
    def test_matching(self, regex, word, accept):
        assert regex.matches(word, ALPHABET) is accept

    def test_reg_of_linear_pattern(self):
        regex = reg(parse("/a//b/*"))
        assert regex.matches(("a", "z", "b", "c"), ALPHABET)
        assert not regex.matches(("a", "b"), ALPHABET)

    def test_reg_rejects_predicates(self):
        from repro.errors import FragmentError

        with pytest.raises(FragmentError):
            reg(parse("/a[/b]"))


class TestDTD:
    def test_flat_star_dtd_conformance(self):
        dtd = flat_star_dtd("root", ["a", "b"])
        assert dtd.conforms(parse_tree("a(b(a)), b"))

    def test_unknown_type_rejected(self):
        dtd = flat_star_dtd("root", ["a"])
        problems = dtd.check(parse_tree("a(q)"))
        assert problems

    def test_content_model_violation(self):
        dtd = DTD("root", alphabet=("root", "a", "b"))
        dtd.define("root", seq(sym("a"), sym("b")))
        dtd.define("a", star(any_of()))
        dtd.define("b", star(any_of()))
        assert dtd.conforms(parse_tree("a, b"))
        assert not dtd.conforms(parse_tree("b, a"))


class TestRegularConstraints:
    def test_key_violation_detection(self):
        tree = parse_tree("a, a")
        ids = [n.nid for n in tree.nodes() if n.label == "a"]
        doc = AttributedTree(tree, {ids[0]: 1, ids[1]: 1})
        key = RegularKey("k", seq(sym("a")))
        assert key.violations(doc, ("a",))

    def test_inclusion_violation_detection(self):
        tree = parse_tree("a, b")
        a = next(n.nid for n in tree.nodes() if n.label == "a")
        b = next(n.nid for n in tree.nodes() if n.label == "b")
        doc = AttributedTree(tree, {a: 1, b: 2})
        inclusion = RegularInclusion("fk", seq(sym("a")), seq(sym("b")))
        assert inclusion.violations(doc, ("a", "b"))
        doc.id_attr[b] = 1
        assert not inclusion.violations(doc, ("a", "b"))


class TestEncoding:
    """Example 3.1: pair validity ⇔ encoded-document satisfaction."""

    def test_equivalence_on_random_pairs(self, rng):
        spec = FragmentSpec(predicates=False)
        premises = random_constraints(rng, ["a", "b"], spec, count=2,
                                      types="mixed", spine=2)
        from repro.constraints.validity import is_valid

        for _ in range(15):
            tree = random_tree(rng, ["a", "b"], size=4)
            before, after = random_valid_pair(rng, tree, premises)
            assert is_valid(before, after, premises)
            assert pair_satisfies_encoding(premises, before, after)

    def test_detects_invalid_pair(self):
        premises = constraint_set(("/a/b", "up"))
        before = parse_tree("a(b)")
        after = parse_tree("a")
        assert not pair_satisfies_encoding(premises, before, after)

    def test_witness_constraints(self):
        premises = constraint_set(("/a/b", "up"))
        conclusion = no_remove("/a/b")
        constraints = encode_constraints(premises, conclusion)
        names = {c.name for c in constraints}
        assert {"key-I", "key-J", "witness-in-range", "witness-escapes"} <= names
        before = parse_tree("a(b)")
        b = next(n.nid for n in before.nodes() if n.label == "b")
        after = before.copy()
        after.relabel_fresh(b)
        doc = encode_pair(before, after, witness=b)
        alphabet = ("I", "J", "witness", "Id", "a", "b", "z")
        problems = check_all(doc, alphabet, constraints)
        # The witness IS removed from q, so only the premise inclusion fails.
        assert any(p.startswith("up-0") for p in problems)
        assert not any("witness" in p for p in problems)


class TestAnnotations:
    def test_pattern_closure_contains_derived(self):
        preds = pattern_closure([parse("//a")], ["b"])
        rendered = {str(p) for p in preds}
        assert "//a" in rendered
        assert "/a" in rendered
        assert "/b[//a]" in rendered

    def test_annotation_consistency(self):
        child_b = Pred(Axis.CHILD, "b")
        desc_b = Pred(Axis.DESC, "b")
        universe = [child_b, desc_b]
        # {child b} implies {desc b}: including only the child is inconsistent.
        assert not annotation_is_consistent([child_b], universe)
        assert annotation_is_consistent([desc_b], universe)
        assert annotation_is_consistent([child_b, desc_b], universe)

    def test_consistent_annotation_enumeration(self):
        child_b = Pred(Axis.CHILD, "b")
        desc_b = Pred(Axis.DESC, "b")
        results = consistent_annotations([child_b, desc_b])
        as_sets = {frozenset(r) for r in results}
        assert frozenset() in as_sets
        assert frozenset([desc_b]) in as_sets
        assert frozenset([child_b]) not in as_sets
        assert frozenset([child_b, desc_b]) in as_sets


class TestXIC:
    def test_id_discipline_holds_on_encoding(self):
        before = parse_tree("a(b)")
        doc = encode_pair(before, before.copy())
        for constraint in id_discipline("I", "b"):
            assert satisfies(doc, constraint)

    def test_update_constraint_xic_semantics(self):
        constraint = no_remove("/a/b")
        xic = constraint_to_xic(constraint)
        assert not xic.is_bounded  # the paper's point: unbounded XICs
        before = parse_tree("a(b)")
        valid_doc = encode_pair(before, before.copy())
        assert satisfies(valid_doc, xic)
        after = before.copy()
        b = next(n.nid for n in after.nodes() if n.label == "b")
        after.relabel_fresh(b)
        broken_doc = encode_pair(before, after)
        assert not satisfies(broken_doc, xic)

    def test_no_insert_direction(self):
        constraint = no_insert("/a/b")
        xic = constraint_to_xic(constraint)
        before = parse_tree("a")
        after = parse_tree("a(b)")
        assert not satisfies(encode_pair(before, after), xic)
        assert satisfies(encode_pair(after, before), xic)


class TestChase:
    def test_example_33_divergence(self):
        premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
        result = chase_implication(premises, no_remove("/a/b/c/d"), max_steps=30)
        assert result.diverged
        # strictly growing fact counts — the paper's infinite regress
        assert all(x < y for x, y in zip(result.history, result.history[1:], strict=False))

    def test_saturation_on_easy_instances(self):
        premises = constraint_set(("/a/b", "up"))
        result = chase_implication(premises, no_remove("/a/b"), max_steps=30)
        assert result.status == "saturated"

    def test_record_engine_decides_where_chase_diverges(self):
        """The contrast the paper draws: our procedures terminate."""
        from repro.implication import implies

        premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
        result = implies(premises, no_remove("/a/b/c/d"))
        assert not result.is_unknown or result.answer is not None

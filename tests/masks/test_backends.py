"""Mask-backend unit tests: selection rules and the row-matrix algebra.

Selection (:func:`repro.masks.get_backend`) has three entry points — an
explicit name, the ``REPRO_MASK_BACKEND`` environment variable, and the
``auto`` default — with one asymmetry worth pinning: asking for numpy
*explicitly* on an interpreter where it cannot import is a loud
:class:`~repro.errors.MaskBackendError`, while ``auto`` degrades to
big-int — observably: each fallback bumps ``masks.backend_fallback_total``
and the first one logs a warning.  The algebra tests drive every backend through the
same pack/unpack/diff round-trips so the two representations can never
drift apart on the primitives the fleet check is built from.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.errors import MaskBackendError
from repro.masks import (
    BACKEND_ENV,
    BigIntBackend,
    available_backends,
    get_backend,
    numpy_available,
)
from repro.masks.bigint import byte_view, iter_slots, slots_of

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


def all_backends():
    backends = [BigIntBackend()]
    if numpy_available():
        from repro.masks.np_backend import NumpyBackend
        backends.append(NumpyBackend())
    return backends


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_bigint_always_available(self):
        backend = get_backend("bigint")
        assert backend.name == "bigint"
        assert "bigint" in available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(MaskBackendError, match="unknown mask backend"):
            get_backend("cupy")

    def test_name_is_normalised(self):
        assert get_backend("  BigInt ").name == "bigint"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bigint")
        assert get_backend().name == "bigint"
        monkeypatch.setenv(BACKEND_ENV, "no-such-backend")
        with pytest.raises(MaskBackendError):
            get_backend()

    def test_empty_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "")
        assert get_backend().name in ("bigint", "numpy")

    @needs_numpy
    def test_numpy_selected_when_available(self, monkeypatch):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("auto").name == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert get_backend().name == "numpy"
        assert available_backends() == ("bigint", "numpy")

    def test_explicit_numpy_raises_when_unimportable(self, monkeypatch):
        # Simulate an interpreter without the numpy kernel: a None entry
        # in sys.modules makes the import raise ImportError.
        monkeypatch.delitem(sys.modules, "repro.masks.np_backend",
                            raising=False)
        monkeypatch.setitem(sys.modules, "repro.masks.np_backend", None)
        with pytest.raises(MaskBackendError, match="unavailable"):
            get_backend("numpy")

    def test_auto_falls_back_and_counts_it(self, monkeypatch, caplog):
        import repro.masks as masks_pkg
        from repro.obs import registry

        monkeypatch.delitem(sys.modules, "repro.masks.np_backend",
                            raising=False)
        monkeypatch.setitem(sys.modules, "repro.masks.np_backend", None)
        monkeypatch.setattr(masks_pkg, "_fallback_logged", False)
        counter = registry().counter("masks.backend_fallback_total")
        before = counter.value
        with caplog.at_level("WARNING", logger="repro.masks"):
            assert get_backend("auto").name == "bigint"
            monkeypatch.delenv(BACKEND_ENV, raising=False)
            assert get_backend().name == "bigint"
        # Every fallback resolution counts; only the first one logs.
        assert counter.value == before + 2
        warnings = [r for r in caplog.records
                    if "falling back" in r.getMessage()]
        assert len(warnings) == 1
        assert BACKEND_ENV in warnings[0].getMessage()


# ----------------------------------------------------------------------
# Row-matrix algebra
# ----------------------------------------------------------------------
def random_rows(rng: random.Random, count: int, words: int) -> list[int]:
    limit = 1 << (words * 64)
    rows = [rng.randrange(limit) for _ in range(count)]
    rows[rng.randrange(count)] = 0          # always one empty row
    rows[rng.randrange(count)] = limit - 1  # and one saturated row
    return rows


@pytest.mark.parametrize("backend", all_backends(), ids=lambda b: b.name)
@pytest.mark.parametrize("words", [1, 2, 5])
def test_pack_unpack_roundtrip(backend, words):
    rng = random.Random(1009 * words)
    rows = random_rows(rng, 17, words)
    matrix = backend.pack_rows(rows, words)
    assert backend.unpack_rows(matrix) == rows
    for d, row in enumerate(rows):
        assert backend.row_int(matrix, d) == row


@pytest.mark.parametrize("backend", all_backends(), ids=lambda b: b.name)
def test_and_not_matches_bigint_arithmetic(backend):
    rng = random.Random(4093)
    words = 3
    a_rows = random_rows(rng, 11, words)
    b_rows = random_rows(rng, 11, words)
    a = backend.pack_rows(a_rows, words)
    b = backend.pack_rows(b_rows, words)
    diff = backend.and_not(a, b)
    expected = [x & ~y for x, y in zip(a_rows, b_rows)]
    assert backend.unpack_rows(diff) == expected
    assert backend.nonzero_rows(diff) == [i for i, row in enumerate(expected)
                                          if row]
    assert backend.popcount_rows(diff) == [row.bit_count()
                                           for row in expected]


@pytest.mark.parametrize("backend", all_backends(), ids=lambda b: b.name)
def test_overflowing_row_is_a_caller_bug(backend):
    with pytest.raises(OverflowError):
        backend.pack_rows([1 << 64], 1)


@needs_numpy
def test_backends_pack_identically():
    """The numpy matrix unpacks to exactly what big-int packed."""
    rng = random.Random(65537)
    from repro.masks.np_backend import NumpyBackend
    bigint, np_backend = BigIntBackend(), NumpyBackend()
    for words in (1, 4):
        rows = random_rows(rng, 23, words)
        assert (np_backend.unpack_rows(np_backend.pack_rows(rows, words))
                == bigint.unpack_rows(bigint.pack_rows(rows, words)))


# ----------------------------------------------------------------------
# Shared big-int helpers (relocated from repro.xpath.bitset)
# ----------------------------------------------------------------------
def test_slot_helpers_agree():
    rng = random.Random(8191)
    for _ in range(50):
        mask = rng.getrandbits(rng.randint(0, 200))
        reference = [b for b in range(mask.bit_length()) if mask >> b & 1]
        assert slots_of(mask) == reference
        assert list(iter_slots(mask)) == reference
        view = byte_view(mask)
        for slot in reference:
            assert view[slot >> 3] & (1 << (slot & 7))


def test_bitset_reexports_are_the_same_objects():
    """The relocation kept ``repro.xpath.bitset``'s public surface."""
    from repro.masks import bigint
    from repro.xpath import bitset

    assert bitset.iter_slots is bigint.iter_slots
    assert bitset.slots_of is bigint.slots_of
    assert bitset.byte_view is bigint.byte_view

"""Cross-backend fleet equivalence: numpy and big-int may never disagree.

Every property here builds the base trees **once** and hands each
backend (and the naive reference) its own ``copy()`` — copies preserve
node ids, while re-parsing "the same" fleet draws fresh ids from the
global counter and legitimately changes every checksum.

Three layers of agreement are pinned, on random fleets under random
policies with random epoch traffic (``txn_prob=0`` — epochs *are* the
fleet's transaction brackets):

1. **Masks** — ``answer_rows`` on random patterns, bit for bit.
2. **Decisions** — per-epoch edited/rejected/structural outcomes, the
   witness sets, and every checksum (fleet report, epoch report, running
   session checksum).
3. **Semantics** — both backends against a naive reference that replays
   each epoch on plain tree copies and asks
   :func:`~repro.constraints.explain_violations`, i.e. the paper's
   definition with no mask machinery at all.

Multi-epoch runs drive the incremental path: accepted epochs mutate the
adopted trees in place and the baselines re-sync through the
``EditDelta`` patch pipeline before the next batched check.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import explain_violations
from repro.errors import StreamError, TreeError
from repro.masks import FleetEvaluator, numpy_available
from repro.stream import AddLeaf, Begin, Commit, Move, RemoveSubtree
from repro.trees import DataTree
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_tree,
    random_update_stream,
)

LABELS = ["a", "b", "c"]
SPECS = [FragmentSpec(False, False, False), FragmentSpec(True, False, False),
         FragmentSpec(True, True, False), FragmentSpec(True, True, True)]
RELAXED = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


def build_fleet(rng: random.Random, *, docs: int | None = None):
    """One shared policy and the base trees (built once; copy per use)."""
    spec = rng.choice(SPECS)
    constraints = random_constraints(rng, LABELS, spec,
                                     count=rng.randint(1, 4), spine=2)
    docs = docs if docs is not None else rng.randint(1, 6)
    trees = [random_tree(rng, LABELS, size=rng.randint(1, 12))
             for _ in range(docs)]
    return spec, constraints, trees


def epoch_traffic(rng: random.Random, constraints, trees,
                  *, epochs: int) -> list[dict[int, list]]:
    """Per-epoch edit batches drawn from enforcement-aware streams.

    The per-document logs come from :func:`random_update_stream` (whose
    shadow replay has *per-op* rollback); chopping them into epochs
    deliberately desynchronises them from that shadow, so later ops may
    reference nodes a rejected epoch never created — exactly the
    structural-error traffic the fleet must survive.
    """
    logs = [random_update_stream(rng, tree, LABELS, constraints=constraints,
                                 ops=rng.randint(2, 8), txn_prob=0.0,
                                 violation_rate=0.5)
            for tree in trees]
    batches: list[dict[int, list]] = []
    for _ in range(epochs):
        batch: dict[int, list] = {}
        for d, log in enumerate(logs):
            if not log or rng.random() < 0.2:
                continue
            take = rng.randint(1, min(3, len(log)))
            batch[d], logs[d] = log[:take], log[take:]
        if batch:
            batches.append(batch)
    return batches


def apply_naive(tree: DataTree, ops) -> None:
    """Plain tree edits — raises TreeError exactly where the fleet does."""
    for op in ops:
        if isinstance(op, AddLeaf):
            tree.add_child(op.parent, op.label, nid=op.nid)
        elif isinstance(op, Move):
            if tree.parent(op.nid) is None:
                raise TreeError("cannot move the root")
            tree.move(op.nid, op.new_parent)
        else:
            if op.nid not in tree:
                raise TreeError(f"node {op.nid} not in tree")
            tree.remove_subtree(op.nid)


class NaiveFleet:
    """The reference semantics: copies, replays and explain_violations."""

    def __init__(self, constraints, trees):
        self.constraints = constraints
        self.base = [t.copy() for t in trees]    # baseline at adoption
        self.state = [t.copy() for t in trees]

    def submit_epoch(self, edits):
        rejected, structural = set(), set()
        for d, ops in edits.items():
            trial = self.state[d].copy()
            try:
                apply_naive(trial, ops)
            except TreeError:
                rejected.add(d)
                structural.add(d)
                continue
            if explain_violations(self.base[d], trial, self.constraints):
                rejected.add(d)
            else:
                self.state[d] = trial
        return rejected, structural


@RELAXED
@given(seed=st.integers(min_value=0, max_value=10_000))
@needs_numpy
def test_answer_rows_agree(seed):
    rng = random.Random(seed)
    spec, constraints, trees = build_fleet(rng)
    fleets = {name: FleetEvaluator(constraints, [t.copy() for t in trees],
                                   backend=name)
              for name in ("bigint", "numpy")}
    patterns = [c.range for c in constraints]
    patterns += [random_pattern(rng, LABELS, spec, spine=2)
                 for _ in range(4)]
    for pattern in patterns:
        assert (fleets["bigint"].answer_rows(pattern)
                == fleets["numpy"].answer_rows(pattern)), str(pattern)
    reports = {name: fleet.check() for name, fleet in fleets.items()}
    assert reports["bigint"].checksum == reports["numpy"].checksum
    assert reports["bigint"].violating == reports["numpy"].violating


@RELAXED
@given(seed=st.integers(min_value=0, max_value=10_000))
@needs_numpy
def test_epoch_decisions_and_checksums_agree(seed):
    rng = random.Random(seed)
    _, constraints, trees = build_fleet(rng)
    batches = epoch_traffic(rng, constraints, trees,
                            epochs=rng.randint(1, 4))
    fleets = {name: FleetEvaluator(constraints, [t.copy() for t in trees],
                                   backend=name)
              for name in ("bigint", "numpy")}
    for batch in batches:
        reports = {name: fleet.submit_epoch(dict(batch))
                   for name, fleet in fleets.items()}
        a, b = reports["bigint"], reports["numpy"]
        assert a.edited == b.edited
        assert a.rejected == b.rejected
        assert a.accepted == b.accepted
        assert dict(a.structural) == dict(b.structural)
        assert a.checksum == b.checksum
        assert {d: vs for d, vs in a.violations.items()} \
            == {d: vs for d, vs in b.violations.items()}
    assert fleets["bigint"].checksum == fleets["numpy"].checksum
    # The surviving states are identical trees, node ids included, and
    # the post-rollback fleet is clean on both backends.
    for d in range(len(trees)):
        assert fleets["bigint"].tree(d).same_instance(fleets["numpy"].tree(d))
    assert fleets["bigint"].check(force=True).ok \
        == fleets["numpy"].check(force=True).ok


@RELAXED
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend=st.sampled_from(["bigint", "numpy"]))
def test_fleet_matches_naive_reference(seed, backend):
    if backend == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    rng = random.Random(seed)
    _, constraints, trees = build_fleet(rng)
    batches = epoch_traffic(rng, constraints, trees,
                            epochs=rng.randint(1, 3))
    fleet = FleetEvaluator(constraints, [t.copy() for t in trees],
                           backend=backend)
    naive = NaiveFleet(constraints, trees)
    for batch in batches:
        report = fleet.submit_epoch(dict(batch))
        rejected, structural = naive.submit_epoch(batch)
        assert set(report.rejected) == rejected
        assert set(report.structural) == structural
        assert set(report.edited) == set(batch)
    for d in range(len(trees)):
        assert fleet.tree(d).same_instance(naive.state[d]), f"doc {d}"
        # Standing per-doc witnesses agree with the paper's definition.
        explained = explain_violations(naive.base[d], naive.state[d],
                                       constraints)
        assert len(fleet.violations(d)) == len(explained) == 0
    check = fleet.check(force=True)
    assert check.ok


# ----------------------------------------------------------------------
# Directed edge cases (deterministic)
# ----------------------------------------------------------------------
def small_fleet(backend="bigint"):
    trees = []
    for _ in range(3):
        t = DataTree()
        a = t.add_child(t.root, "a")
        t.add_child(a, "b")
        trees.append(t)
    return FleetEvaluator([("//b", "up")], trees, backend=backend), trees


def test_markers_are_stream_errors():
    fleet, _ = small_fleet()
    with pytest.raises(StreamError, match="transaction brackets"):
        fleet.submit_epoch({0: [Begin()]})
    with pytest.raises(StreamError):
        fleet.submit_epoch({1: [Commit()]})


def test_unknown_position_rejected():
    fleet, _ = small_fleet()
    with pytest.raises(ValueError, match="no document at position"):
        fleet.submit_epoch({7: [AddLeaf(0, "c")]})


def test_duplicate_tree_object_rejected():
    t = DataTree()
    t.add_child(t.root, "a")
    with pytest.raises(ValueError, match="appears twice"):
        FleetEvaluator([("//a", "up")], [t, t])


def test_empty_fleet_rejected():
    with pytest.raises(ValueError, match="at least one document"):
        FleetEvaluator([("//a", "up")], [])


def test_structural_error_rolls_back_applied_prefix():
    fleet, _ = small_fleet()
    before = fleet.tree(0).copy()
    root = fleet.tree(0).root
    report = fleet.submit_epoch(
        {0: [AddLeaf(root, "c"), RemoveSubtree(10 ** 9)]})
    assert report.rejected == (0,)
    assert report.structural[0].startswith("structural error")
    assert fleet.tree(0).same_instance(before)


def test_rollback_restores_pre_epoch_state_not_baseline():
    """An accepted epoch advances the rollback point."""
    fleet, _ = small_fleet()
    tree = fleet.tree(0)
    ok = fleet.submit_epoch({0: [AddLeaf(tree.root, "c")]})
    assert ok.rejected == ()
    grown = tree.copy()
    b_node = next(n for n in tree.node_ids() if tree.label(n) == "b")
    bad = fleet.submit_epoch({0: [RemoveSubtree(b_node)]})
    assert bad.rejected == (0,)
    assert bad.violations[0]  # a no-remove witness names the lost node
    assert fleet.tree(0).same_instance(grown)
    assert fleet.check(force=True).ok

"""Hypothesis equivalence: the fast path never changes a decision.

The acceptance contract of the static analyzer: for any seeded update
log — rejections, transaction brackets, failing commits and rollbacks
included — the decision stream of an analyzed :class:`StreamEnforcer` is
bit-identical to the same engine with the analyzer off, up to the
``independent`` witness itself; checksums and final documents agree too.
The fast path may only relabel work as zero-work, never alter a verdict.
"""

from __future__ import annotations

import random
from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream import StreamEnforcer, decision_checksum
from repro.trees.serialize import to_literal
from repro.workloads import (
    FragmentSpec,
    mostly_irrelevant_stream,
    random_constraints,
    random_tree,
    random_update_stream,
)

LABELS = ["a", "b", "c"]
SPECS = [
    FragmentSpec(False, False, False),
    FragmentSpec(True, False, False),
    FragmentSpec(True, True, False),
    FragmentSpec(True, True, True),
]

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def strip(decisions):
    """Decisions with the fast-path witness normalised away."""
    return [replace(d, independent=False) for d in decisions]


@given(seed=st.integers(min_value=0, max_value=10_000),
       idx=st.integers(min_value=0, max_value=len(SPECS) - 1))
@RELAXED
def test_fastpath_decisions_bit_identical_to_full_checking(seed, idx):
    rng = random.Random(seed)
    base = random_tree(rng, LABELS, size=rng.randint(2, 18))
    constraints = random_constraints(rng, LABELS, SPECS[idx],
                                     count=rng.randint(1, 4),
                                     types="mixed", spine=2)
    ops = random_update_stream(rng, base, LABELS, constraints=constraints,
                               ops=rng.randint(5, 20),
                               violation_rate=rng.choice([0.0, 0.3, 0.6]),
                               txn_prob=0.25)
    fast_tree, full_tree = base.copy(), base.copy()
    fast = StreamEnforcer(constraints, fast_tree)
    full = StreamEnforcer(constraints, full_tree, analysis=False)
    fast_out = fast.submit(ops)
    full_out = full.submit(ops)

    # Same verdicts, witnesses, txn brackets and notes, entry for entry.
    assert strip(fast_out) == strip(full_out)
    # Same audit trails and checksums (the checksum ignores the witness).
    assert strip(fast.audit.entries) == strip(full.audit.entries)
    assert decision_checksum(fast_out) == decision_checksum(full_out)
    # Same final document, node ids included.
    assert to_literal(fast_tree, with_ids=True) == \
        to_literal(full_tree, with_ids=True)
    # Counters agree; only the analyzed run may claim zero-work ops.
    assert (fast.stats.accepted, fast.stats.rejected) == \
        (full.stats.accepted, full.stats.rejected)
    assert full.stats.independent == 0
    assert fast.stats.independent == sum(1 for d in fast_out if d.independent)
    # The witness is only ever raised on accepted, violation-free entries.
    assert all(d.accepted and not d.violations
               for d in fast_out if d.independent)


def test_mostly_irrelevant_traffic_actually_takes_the_fast_path():
    rng = random.Random(20070611)
    base = random_tree(rng, LABELS, size=60)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    constraints = random_constraints(rng, LABELS, spec, count=4,
                                     types="mixed", spine=2)
    log = mostly_irrelevant_stream(rng, base, LABELS,
                                   constraints=constraints,
                                   ops=80, irrelevant_rate=0.95)
    fast_tree = base.copy()
    fast = StreamEnforcer(constraints, fast_tree)
    decisions = fast.submit(log)

    independent = [d for d in decisions if d.independent]
    assert len(independent) >= len(log) // 2  # the path is exercised
    assert fast.stats.independent == len(independent)

    full_tree = base.copy()
    full_out = StreamEnforcer(constraints, full_tree,
                              analysis=False).submit(log)
    assert strip(decisions) == strip(full_out)
    assert decision_checksum(decisions) == decision_checksum(full_out)
    assert to_literal(fast_tree, with_ids=True) == \
        to_literal(full_tree, with_ids=True)

"""Unit tests for :mod:`repro.analysis` — signatures, index, analyzer.

The soundness argument the tests pin down: patterns in XP{/,[],//,*} are
monotone under single edits, so a ``NO_REMOVE`` constraint can only be
broken by edits that destroy matches (move, remove-subtree) and a
``NO_INSERT`` constraint only by edits that create them (add-leaf, move);
an op whose label and region intersect no signature cannot change any
verdict.  The engine-level tests check the fast path raises the
``independent`` witness without ever changing a decision.
"""

from __future__ import annotations

from repro.analysis import (
    KIND_ADD,
    KIND_MOVE,
    KIND_REMOVE,
    IndependenceAnalyzer,
    IndependenceIndex,
    impact_signature,
)
from repro.constraints import no_insert, no_remove
from repro.stream import (
    AddLeaf,
    Begin,
    Commit,
    Move,
    RemoveSubtree,
    StreamEnforcer,
)
from repro.trees import DataTree, TreeIndex
from repro.trees.node import fresh_id
from repro.xpath.ast import Axis


def sample():
    """root -> a1(b1), c1(a2, d1): two ``a`` anchors, one nested deeper."""
    tree = DataTree()
    a1 = tree.add_child(tree.root, "a")
    b1 = tree.add_child(a1, "b")
    c1 = tree.add_child(tree.root, "c")
    a2 = tree.add_child(c1, "a")
    d1 = tree.add_child(c1, "d")
    return tree, a1, b1, c1, a2, d1


class TestImpactSignature:
    def test_kinds_follow_monotonicity(self):
        assert impact_signature(no_remove("/a/b")).kinds == \
            frozenset((KIND_MOVE, KIND_REMOVE))
        assert impact_signature(no_insert("/a/b")).kinds == \
            frozenset((KIND_ADD, KIND_MOVE))

    def test_concrete_label_alphabet(self):
        sig = impact_signature(no_remove("//a/b"))
        assert sig.labels == frozenset(("a", "b"))
        assert not sig.is_top
        assert (sig.first_axis, sig.first_label) == (Axis.DESC, "a")

    def test_wildcard_anywhere_lifts_labels_to_top(self):
        sig = impact_signature(no_remove("/a/*"))
        assert sig.labels is None and sig.is_top
        assert (sig.first_axis, sig.first_label) == (Axis.CHILD, "a")
        assert "⊤" in str(sig)

    def test_child_axis_region_is_the_matching_root_children(self):
        tree, a1, b1, c1, a2, d1 = sample()
        index = TreeIndex(tree)
        assert impact_signature(no_remove("/a/b")).region_anchors(index) \
            == [a1]
        # A wildcard first step anchors at every root child.
        assert impact_signature(no_remove("/*/b")).region_anchors(index) \
            == [a1, c1]

    def test_desc_axis_region_is_the_minimal_label_cover(self):
        tree, a1, b1, c1, a2, d1 = sample()
        a3 = tree.add_child(b1, "a")  # nested under a1 — covered by it
        index = TreeIndex(tree)
        anchors = impact_signature(no_remove("//a/b")).region_anchors(index)
        assert sorted(anchors) == sorted([a1, a2])
        assert a3 not in anchors

    def test_desc_wildcard_region_is_the_whole_tree(self):
        tree = sample()[0]
        index = TreeIndex(tree)
        assert impact_signature(no_remove("//*")).region_anchors(index) is None


class TestIndependenceIndex:
    def test_lookup_gates_on_kind_and_label(self):
        index = IndependenceIndex([no_remove("/a/b")])
        assert len(index) == 1
        # NO_REMOVE is insensitive to pure insertion …
        assert index.lookup(KIND_ADD, "b") == ()
        # … but sensitive to removal and relocation of its labels.
        assert len(index.lookup(KIND_REMOVE, "b")) == 1
        assert len(index.lookup(KIND_MOVE, "a")) == 1
        assert index.lookup(KIND_REMOVE, "zzz") == ()

    def test_top_signatures_survive_every_label(self):
        index = IndependenceIndex([no_insert("/a/*")])
        for label in ("a", "b", "never-seen"):
            assert len(index.lookup(KIND_ADD, label)) == 1
        # The anchor label of a ⊤ signature still feeds the subtree probes.
        assert "a" in index.probe_labels

    def test_candidates_deduplicate_across_labels(self):
        index = IndependenceIndex([no_remove("/a/b")])
        assert len(index.candidates(KIND_REMOVE, ["a", "b", "a"])) == 1
        assert index.candidates(KIND_REMOVE, ["zzz"]) == ()

    def test_stats_expose_the_compiled_shape(self):
        index = IndependenceIndex([no_remove("/a/b"), no_insert("/a/*")])
        stats = index.stats()
        assert stats["signatures"] == 2
        assert stats["wildcard"] == 1
        assert stats["keys"] > 0
        assert "2 signatures" in repr(index)


class TestAnalyzerVerdicts:
    def analyzer_for(self, constraints, tree):
        return IndependenceAnalyzer(IndependenceIndex(constraints),
                                    TreeIndex(tree))

    def test_noise_edits_are_independent(self):
        tree, a1, b1, c1, a2, d1 = sample()
        az = self.analyzer_for([no_remove("/a/b")], tree)
        assert az.independent(AddLeaf(parent=b1, label="zzz"))
        assert az.independent(RemoveSubtree(nid=d1))

    def test_region_hits_are_dependent(self):
        tree, a1, b1, c1, a2, d1 = sample()
        az = self.analyzer_for([no_remove("/a/b")], tree)
        # Removing or relocating inside the anchored /a subtree.
        assert not az.independent(RemoveSubtree(nid=b1))
        assert not az.independent(Move(nid=b1, new_parent=c1))
        # Moving a matching label *into* the region is just as dependent.
        assert not az.independent(Move(nid=a2, new_parent=b1))
        # The same subtree shuffled entirely outside the region is not.
        assert az.independent(Move(nid=a2, new_parent=d1))
        # a2 carries an alphabet label but sits outside the /a region.
        assert az.independent(RemoveSubtree(nid=a2))

    def test_anchor_minting_adds_are_dependent_for_no_insert(self):
        tree, a1, b1, c1, a2, d1 = sample()
        az = self.analyzer_for([no_insert("/a/b")], tree)
        # A fresh /a root child mints a new anchor: dependent.
        assert not az.independent(AddLeaf(parent=tree.root, label="a"))
        # A "b" inside the existing anchored region: dependent.
        assert not az.independent(AddLeaf(parent=a1, label="b"))
        # The same label outside every anchor subtree: independent.
        assert az.independent(AddLeaf(parent=c1, label="b"))

    def test_desc_anchors_probe_the_moved_subtree(self):
        tree, a1, b1, c1, a2, d1 = sample()
        az = self.analyzer_for([no_remove("//a/b")], tree)
        # c1's subtree contains an "a" anchor — removing it is dependent.
        assert not az.independent(RemoveSubtree(nid=c1))
        # d1's subtree contains no anchor and no alphabet label.
        assert az.independent(RemoveSubtree(nid=d1))

    def test_markers_and_unknown_nodes_are_never_independent(self):
        tree = sample()[0]
        az = self.analyzer_for([no_remove("/a/b")], tree)
        assert not az.independent(Begin())
        assert not az.independent(Commit())
        assert not az.independent(AddLeaf(parent=10**9, label="zzz"))
        assert not az.independent(RemoveSubtree(nid=10**9))
        assert not az.independent(Move(nid=10**9, new_parent=10**9 + 1))


class TestEngineFastPath:
    def test_fast_path_counts_and_witnesses(self):
        tree, a1, b1, c1, a2, d1 = sample()
        stream = StreamEnforcer([no_remove("/a/b")], tree.copy())
        assert stream.analyzer is not None
        ok = stream.apply(AddLeaf(parent=c1, label="zzz", nid=fresh_id()))
        assert ok.accepted and ok.independent and not ok.violations
        bad = stream.apply(RemoveSubtree(nid=b1))
        assert bad.rejected and not bad.independent and bad.violations
        assert stream.stats.independent == 1

    def test_disabled_analysis_never_raises_the_witness(self):
        tree, a1, b1, c1, a2, d1 = sample()
        stream = StreamEnforcer([no_remove("/a/b")], tree.copy(),
                                analysis=False)
        assert stream.analyzer is None
        ok = stream.apply(AddLeaf(parent=c1, label="zzz", nid=fresh_id()))
        assert ok.accepted and not ok.independent
        assert stream.stats.independent == 0

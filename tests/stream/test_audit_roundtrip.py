"""The audit trail survives the wire: every op codec-round-trips.

The durable server journals each accepted submission as
``op_to_dict(op)`` records and recovery replays them with
``op_from_dict`` — so the audit trail is only as trustworthy as the op
codecs.  These tests drive a real enforcement stream (transactions,
rejections, pinned ids, the lot), push every audited operation through
the codec pair, and require the replayed trail to be *bit-for-bit* the
original: same ops, same verdicts, same violation witnesses, same
rendering.
"""

from __future__ import annotations

import json

import pytest

from repro.constraints import constraint_set
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import (
    AddLeaf,
    Begin,
    Commit,
    Move,
    RemoveSubtree,
    Rollback,
    op_from_dict,
    op_to_dict,
)
from repro.trees.tree import DataTree

POLICY = constraint_set(("/patient[/clinicalTrial]", "up"),
                        ("/patient[/visit]", "down"))

ALL_OPS = [
    AddLeaf(5, "note"),
    AddLeaf(5, "note", nid=91),
    Move(7, 1),
    RemoveSubtree(7),
    Begin(),
    Commit(),
    Rollback(),
]


def fresh_doc() -> DataTree:
    doc = DataTree(root_id=1)
    doc.add_child(1, "patient", nid=5)
    doc.add_child(5, "visit", nid=7)
    doc.add_child(5, "clinicalTrial", nid=8)
    return doc


def enforcer() -> StreamEnforcer:
    return StreamEnforcer(POLICY, fresh_doc())


# A workload covering every decision shape: plain accepts, a rejection
# with violation witnesses, a committed bracket, a rolled-back bracket.
WORKLOAD = [
    AddLeaf(5, "note", nid=50),
    RemoveSubtree(8),              # rejected: clinicalTrial is protected
    Begin(),
    AddLeaf(5, "visit", nid=51),
    AddLeaf(5, "note", nid=52),
    Commit(),
    Begin(),
    AddLeaf(5, "note", nid=53),
    Rollback(),
    Move(7, 1),
]


class TestOpCodecs:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: type(op).__name__)
    def test_every_op_round_trips_exactly(self, op):
        wire = op_to_dict(op)
        assert op_from_dict(wire) == op
        # and the wire form is honest JSON: stable under a dump/load trip
        assert op_from_dict(json.loads(json.dumps(wire))) == op

    def test_unpinned_and_pinned_addleaf_stay_distinct(self):
        assert "nid" not in op_to_dict(AddLeaf(5, "x"))
        assert op_to_dict(AddLeaf(5, "x", nid=9))["nid"] == 9

    def test_markers_carry_no_payload(self):
        assert op_to_dict(Begin()) == {"op": "begin"}
        assert op_to_dict(Commit()) == {"op": "commit"}
        assert op_to_dict(Rollback()) == {"op": "rollback"}

    def test_codec_rejects_what_it_never_wrote(self):
        with pytest.raises(ValueError):
            op_from_dict({"op": "warp-core"})
        with pytest.raises(ValueError):
            op_from_dict({"op": "add-leaf"})  # missing required fields
        with pytest.raises(ValueError):
            op_from_dict({"op": "move", "nid": 1, "bogus": 2})


class TestTrailRoundTrip:
    def submit_all(self, stream, ops):
        for op in ops:
            stream.apply(op)

    def test_replaying_the_codec_trip_reproduces_the_trail(self):
        """ops -> wire -> ops -> a fresh enforcer = the identical trail."""
        live = enforcer()
        self.submit_all(live, WORKLOAD)
        wire_ops = [op_to_dict(d.op) for d in live.audit]
        replayed = enforcer()
        self.submit_all(replayed, [op_from_dict(w) for w in wire_ops])

        assert len(replayed.audit) == len(live.audit)
        for ours, theirs in zip(live.audit, replayed.audit):
            assert theirs.op == ours.op
            assert (theirs.seq, theirs.accepted, theirs.pending,
                    theirs.txn) == (ours.seq, ours.accepted, ours.pending,
                                    ours.txn)
            assert ([str(v) for v in theirs.violations]
                    == [str(v) for v in ours.violations])
        assert replayed.audit.render() == live.audit.render()

    def test_rejection_witnesses_survive_the_trip(self):
        live = enforcer()
        self.submit_all(live, WORKLOAD)
        rejected = live.audit.rejections()
        assert rejected, "the workload must exercise a rejection"
        replayed = enforcer()
        self.submit_all(replayed,
                        [op_from_dict(op_to_dict(d.op)) for d in live.audit])
        again = replayed.audit.rejections()
        assert [str(d) for d in again] == [str(d) for d in rejected]
        assert all(d.violations for d in again)

    def test_txn_markers_keep_their_bracket_ids(self):
        live = enforcer()
        self.submit_all(live, WORKLOAD)
        replayed = enforcer()
        self.submit_all(replayed,
                        [op_from_dict(op_to_dict(d.op)) for d in live.audit])
        assert ([d.txn for d in replayed.audit]
                == [d.txn for d in live.audit])
        # the workload has two distinct brackets on the trail
        brackets = {d.txn for d in live.audit if d.txn is not None}
        assert len(brackets) == 2

    def test_compacted_trail_still_round_trips_its_suffix(self):
        """Compaction forgets the prefix but not the numbering: replaying
        the retained suffix onto a checkpoint-equivalent stream yields
        the same rendered suffix."""
        live = enforcer()
        self.submit_all(live, WORKLOAD)
        total = len(live.audit)
        suffix_before = live.audit.render()
        dropped = live.audit.compact(keep_last=3)
        assert dropped == total - 3
        assert len(live.audit) == total  # length counts the forgotten
        assert live.audit.render() == "\n".join(
            suffix_before.splitlines()[-3:])
        # entries still round-trip through the codec after compaction
        for decision in live.audit:
            assert op_from_dict(op_to_dict(decision.op)) == decision.op

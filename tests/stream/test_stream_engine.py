"""Unit tests for the online enforcement engine's semantics.

The contract: after every submitted entry the live document satisfies the
constraint set relative to the opening baseline, rejected edits leave no
trace in the document (only in the audit trail), and transaction brackets
are all-or-nothing.
"""

from __future__ import annotations

import pytest

from repro import Reasoner, constraint_set
from repro.errors import StreamError
from repro.stream import AddLeaf, Move, RemoveSubtree, StreamEnforcer
from repro.trees import branch, build
from repro.trees.node import Node


def hospital():
    """patient(clinicalTrial, visit(prescription)), patient(visit)."""
    return build(
        branch("patient",
               branch("clinicalTrial", nid=9001),
               branch("visit", branch("prescription", nid=9003), nid=9002),
               nid=9000),
        branch("patient", branch("visit", nid=9102), nid=9100),
    )


POLICY = constraint_set(
    ("/patient", "down"),
    ("/patient[/clinicalTrial]", "up"),
    ("//prescription", "up"),
)


class TestAutocommit:
    def test_valid_op_is_applied_and_accepted(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        decision = stream.apply(AddLeaf(9002, "prescription", nid=9500))
        assert decision.accepted and not decision.pending
        assert 9500 in doc
        assert stream.is_valid()

    def test_violating_op_is_rejected_and_rolled_back(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        decision = stream.apply(RemoveSubtree(9001))
        assert decision.rejected
        assert len(decision.violations) == 1
        violation = decision.violations[0]
        assert Node(9000, "patient") in violation.removed
        assert doc.same_instance(before)
        assert stream.is_valid()

    def test_structural_error_is_rejected_without_witnesses(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        decision = stream.apply(Move(9000, 9002))  # into its own subtree
        assert decision.rejected and not decision.violations
        assert "structural error" in decision.note
        missing = stream.apply(RemoveSubtree(424242))
        assert missing.rejected and "structural error" in missing.note
        assert doc.same_instance(before)

    def test_witness_identity_not_isomorphism(self):
        # Removing the prescription and inserting a fresh one elsewhere is
        # still a violation: constraints speak about (id, label) nodes.
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        stream.apply(RemoveSubtree(9003))
        stream.apply(AddLeaf(9102, "prescription", nid=9600))
        decision = stream.commit()
        assert decision.rejected
        (violation,) = decision.violations
        assert violation.removed == frozenset({Node(9003, "prescription")})


class TestTransactions:
    def test_commit_keeps_a_valid_bracket(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin("transfer")
        stream.apply(Move(9002, 9100))
        stream.apply(AddLeaf(9100, "visit", nid=9700))
        decision = stream.commit()
        assert decision.accepted
        assert doc.parent(9002) == 9100 and 9700 in doc
        assert stream.stats.committed == 1

    def test_failing_commit_rolls_back_everything(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        ok = stream.apply(Move(9002, 9100))        # fine on its own
        assert ok.accepted and ok.pending
        bad = stream.apply(RemoveSubtree(9002))    # drops the prescription
        assert bad.rejected and bad.pending
        decision = stream.commit()
        assert decision.rejected and decision.violations
        assert doc.same_instance(before)
        assert stream.stats.rolled_back == 1

    def test_explicit_rollback_restores_the_document(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        stream.apply(RemoveSubtree(9102))
        stream.apply(AddLeaf(9000, "visit", nid=9800))
        decision = stream.rollback()
        assert decision.accepted
        assert doc.same_instance(before)

    def test_remove_then_rollback_revives_identical_subtree(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        stream.apply(RemoveSubtree(9002))  # visit with nested prescription
        assert 9002 not in doc and 9003 not in doc
        stream.rollback()
        assert doc.same_instance(before)
        # The revived nodes answer queries exactly as before.
        assert stream.is_valid() and not stream.violations()

    def test_protocol_errors_raise(self):
        stream = StreamEnforcer(POLICY, hospital())
        with pytest.raises(StreamError):
            stream.commit()
        with pytest.raises(StreamError):
            stream.rollback()
        stream.begin()
        with pytest.raises(StreamError):
            stream.begin()


class TestStreamSurface:
    def test_foreign_mutation_is_detected(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        doc.add_child(doc.root, "intruder")
        with pytest.raises(StreamError):
            stream.apply(AddLeaf(9000, "visit"))

    def test_engines_agree(self):
        import random

        from repro.workloads import random_update_stream

        rng = random.Random(20070611)
        doc = hospital()
        ops = random_update_stream(rng, doc, ["patient", "visit"],
                                   constraints=POLICY, ops=20,
                                   violation_rate=0.4)
        bit = StreamEnforcer(POLICY, doc.copy(), engine="bitset")
        ind = StreamEnforcer(POLICY, doc.copy(), engine="indexed")
        for op in ops:
            a = bit.apply(op)
            b = ind.apply(op)
            assert (a.accepted, a.pending, list(a.violations)) == \
                   (b.accepted, b.pending, list(b.violations))
        assert bit.tree.same_instance(ind.tree)

    def test_open_stream_from_sessions(self):
        doc = hospital()
        reasoner = Reasoner(POLICY)
        stream = reasoner.open_stream(doc.copy())
        assert stream.constraints is reasoner.premises
        bound = reasoner.bind(doc)
        private = bound.open_stream()
        private.apply(AddLeaf(9002, "prescription"))
        # The binding keeps answering: the stream took a private copy.
        assert bound.implies_on(list(POLICY)[0]).answer is not None
        consuming = bound.open_stream(copy=False)
        consuming.apply(AddLeaf(9002, "prescription", nid=9900))
        assert 9900 in doc
        with pytest.raises(ValueError):
            bound.implies_on(list(POLICY)[0])

    def test_audit_and_stats_accounting(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.apply(AddLeaf(9002, "prescription", nid=9910))
        stream.apply(RemoveSubtree(9001))
        stream.begin()
        stream.apply(AddLeaf(9100, "visit", nid=9911))
        stream.commit()
        stats = stream.stats
        assert stats.ops == 3
        assert stats.accepted == 2 and stats.rejected == 1
        assert stats.transactions == stats.committed == 1
        assert len(stream.audit) == 5  # 3 ops + begin + commit
        assert len(stream.audit.rejections()) == 1
        assert "REJECTED" in stream.audit.render()

"""The shard runner: sequential and multiprocess runs are bit-comparable."""

from __future__ import annotations

import pickle
import random

from repro.stream import StreamJob, run_sharded, run_stream
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_tree,
    random_update_stream,
)

LABELS = ["a", "b", "c"]


def make_jobs(count: int, seed: int = 20070611) -> list[StreamJob]:
    rng = random.Random(seed)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    jobs = []
    for i in range(count):
        tree = random_tree(rng, LABELS, size=rng.randint(6, 14))
        constraints = random_constraints(rng, LABELS, spec, count=3,
                                         types="mixed", spine=2)
        ops = random_update_stream(rng, tree, LABELS,
                                   constraints=constraints, ops=15,
                                   violation_rate=0.4)
        jobs.append(StreamJob.build(constraints, tree, ops, name=f"doc{i}"))
    return jobs


def test_jobs_and_reports_pickle():
    job = make_jobs(1)[0]
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job
    report = run_stream(job)
    assert pickle.loads(pickle.dumps(report)) == report


def test_sequential_and_sharded_runs_agree():
    jobs = make_jobs(3)
    sequential = run_sharded(jobs, workers=1)
    sharded = run_sharded(jobs, workers=2)
    assert sequential == sharded
    assert [r.name for r in sharded] == ["doc0", "doc1", "doc2"]


def test_rerunning_a_job_is_deterministic():
    job = make_jobs(1)[0]
    first, second = run_stream(job), run_stream(job)
    assert first == second
    assert first.decision_checksum == second.decision_checksum
    assert first.document_digest == second.document_digest


def test_reports_reflect_enforcement():
    reports = run_sharded(make_jobs(2), workers=1)
    for report in reports:
        assert report.ops > 0
        assert report.accepted + report.rejected == report.ops
        assert report.final_size > 0

"""The intra-document planner: every shard order replays bit-identically.

:func:`partition_document` may only promote an op into a reorderable
batch when the static analyzer proved it independent, it was accepted,
and its whole pre-edit footprint lives inside one root child's subtree —
so replaying the plan through :func:`run_partitioned` in *any* shard
order must reproduce the sequential decision stream and final document
exactly, node ids and ``independent`` witnesses included.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import no_remove
from repro.stream import (
    AddLeaf,
    Begin,
    Commit,
    StreamEnforcer,
    partition_document,
    run_partitioned,
)
from repro.stream.ops import MARKERS
from repro.stream.shard import SHARD_ORDERS
from repro.trees import DataTree
from repro.trees.node import fresh_id
from repro.trees.serialize import to_literal
from repro.workloads import (
    FragmentSpec,
    mostly_irrelevant_stream,
    random_constraints,
    random_tree,
    random_update_stream,
)

LABELS = ["a", "b", "c"]


def make_workload(seed, *, size=40, ops=40, irrelevant=True):
    rng = random.Random(seed)
    spec = FragmentSpec(predicates=True, descendant=True, wildcard=False)
    base = random_tree(rng, LABELS, size=size)
    constraints = random_constraints(rng, LABELS, spec, count=3,
                                     types="mixed", spine=2)
    if irrelevant:
        log = mostly_irrelevant_stream(rng, base, LABELS,
                                       constraints=constraints,
                                       ops=ops, irrelevant_rate=0.9)
    else:
        log = random_update_stream(rng, base, LABELS,
                                   constraints=constraints, ops=ops,
                                   violation_rate=0.3, txn_prob=0.2)
    return base, constraints, log


def test_partition_covers_the_whole_log_exactly_once():
    base, constraints, log = make_workload(20070611)
    part = partition_document(constraints, base, log)
    batched = [seq for batch in part.batches for seq in batch]
    assert sorted(batched + list(part.boundaries)) == list(range(len(log)))
    assert part.ops == len(log)
    assert part.shard_local == len(batched)
    for batch in part.batches:
        assert list(batch) == sorted(batch)  # intra-batch log order kept
        for seq in batch:
            assert part.plans[seq].shard is not None
            assert part.plans[seq].independent
    for seq in part.boundaries:
        assert part.plans[seq].shard is None
    schedule = part.schedule()
    assert sorted(seq for seg in schedule for seq in seg) == \
        list(range(len(log)))
    firsts = [seg[0] for seg in schedule]
    assert firsts == sorted(firsts)  # segments interleave back in log order


def test_planning_does_not_touch_the_document():
    base, constraints, log = make_workload(7)
    before = to_literal(base, with_ids=True)
    partition_document(constraints, base, log)
    assert to_literal(base, with_ids=True) == before


def test_every_shard_order_reproduces_the_sequential_stream():
    base, constraints, log = make_workload(20070611)
    seq_tree = base.copy()
    sequential = StreamEnforcer(constraints, seq_tree).submit(log)
    doc = to_literal(seq_tree, with_ids=True)
    part = partition_document(constraints, base, log)
    assert part.shard_local > 0  # the reordering path is actually exercised
    for order in SHARD_ORDERS:
        tree = base.copy()
        decisions = run_partitioned(constraints, tree, log,
                                    partition=part, shard_order=order)
        assert decisions == sequential
        assert to_literal(tree, with_ids=True) == doc


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_partitioned_replay_matches_sequential_on_random_logs(seed):
    base, constraints, log = make_workload(seed, size=14, ops=12,
                                           irrelevant=bool(seed % 2))
    seq_tree = base.copy()
    sequential = StreamEnforcer(constraints, seq_tree).submit(log)
    doc = to_literal(seq_tree, with_ids=True)
    for order in SHARD_ORDERS:
        tree = base.copy()
        decisions = run_partitioned(constraints, tree, log,
                                    shard_order=order)
        assert decisions == sequential
        assert to_literal(tree, with_ids=True) == doc


def test_markers_and_dependent_ops_are_boundaries():
    base, constraints, log = make_workload(3, irrelevant=False)
    part = partition_document(constraints, base, log)
    for plan in part.plans:
        if isinstance(plan.op, MARKERS):
            assert plan.shard is None
        if not plan.independent:
            assert plan.shard is None


def test_txn_brackets_split_batches():
    tree = DataTree()
    h1 = tree.add_child(tree.root, "h")
    h2 = tree.add_child(tree.root, "h")
    constraints = [no_remove("/q")]
    log = [AddLeaf(parent=h1, label="n", nid=fresh_id()),
           Begin(),
           AddLeaf(parent=h2, label="n", nid=fresh_id()),
           Commit(),
           AddLeaf(parent=h1, label="n", nid=fresh_id())]
    part = partition_document(constraints, tree, log)
    assert part.boundaries == (1, 3)
    assert part.batches == ((0,), (2,), (4,))
    assert part.schedule() == ((0,), (1,), (2,), (3,), (4,))


def test_run_partitioned_validates_its_inputs():
    base, constraints, log = make_workload(11)
    with pytest.raises(ValueError):
        run_partitioned(constraints, base.copy(), log, shard_order="spiral")
    part = partition_document(constraints, base, log)
    with pytest.raises(ValueError):
        run_partitioned(constraints, base.copy(), log[:-1], partition=part)

"""Hypothesis equivalence: incremental enforcement vs recompute-from-scratch.

The acceptance contract of :mod:`repro.stream`: for random seeded update
logs, the engine's per-entry verdicts and witnesses — produced against one
live delta-maintained snapshot — must match a reference replay that works
on full copies and re-runs :func:`repro.constraints.validity.
explain_violations` from scratch on every prefix, including across
rejected operations, failing commits and explicit rollbacks.  The final
state must also agree with :func:`check_sequence` on the (baseline, final)
pair.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import check_sequence, explain_violations
from repro.errors import TreeError
from repro.stream import AddLeaf, Begin, Commit, Move, Rollback, StreamEnforcer
from repro.workloads import (
    FragmentSpec,
    random_constraints,
    random_tree,
    random_update_stream,
)

LABELS = ["a", "b", "c"]
SPECS = [
    FragmentSpec(False, False, False),
    FragmentSpec(True, False, False),
    FragmentSpec(True, True, False),
    FragmentSpec(True, True, True),
]

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def naive_step(state, base, constraints, op, txn_backup):
    """Reference semantics for one log entry, on full copies.

    Returns ``(kind, violations, new_state, new_txn_backup)`` where
    ``kind`` mirrors the engine's decision surface.
    """
    if isinstance(op, Begin):
        return "begin", (), state, state.copy()
    if isinstance(op, Commit):
        violations = explain_violations(base, state, constraints)
        if violations:
            assert txn_backup is not None
            return "commit-reject", tuple(violations), txn_backup, None
        return "commit-ok", (), state, None
    if isinstance(op, Rollback):
        assert txn_backup is not None
        return "rollback", (), txn_backup, None
    candidate = state.copy()
    try:
        if isinstance(op, AddLeaf):
            candidate.add_child(op.parent, op.label, nid=op.nid)
        elif isinstance(op, Move):
            candidate.move(op.nid, op.new_parent)
        else:
            candidate.remove_subtree(op.nid)
    except TreeError:
        return "structural", (), state, txn_backup
    violations = explain_violations(base, candidate, constraints)
    if txn_backup is not None:
        return "pending", tuple(violations), candidate, txn_backup
    if violations:
        return "rejected", tuple(violations), state, txn_backup
    return "accepted", (), candidate, txn_backup


@given(seed=st.integers(min_value=0, max_value=10_000),
       idx=st.integers(min_value=0, max_value=len(SPECS) - 1))
@RELAXED
def test_verdicts_and_witnesses_match_recompute_on_every_prefix(seed, idx):
    rng = random.Random(seed)
    start = random_tree(rng, LABELS, size=rng.randint(2, 18))
    constraints = random_constraints(rng, LABELS, SPECS[idx],
                                     count=rng.randint(1, 4),
                                     types="mixed", spine=2)
    ops = random_update_stream(rng, start, LABELS, constraints=constraints,
                               ops=rng.randint(5, 20),
                               violation_rate=rng.choice([0.0, 0.3, 0.6]),
                               txn_prob=0.25)
    base = start.copy()
    engine = StreamEnforcer(constraints, start.copy())
    state = base.copy()
    txn_backup = None
    for op in ops:
        decision = engine.apply(op)
        kind, violations, state, txn_backup = naive_step(
            state, base, constraints, op, txn_backup)
        # Verdict agreement, entry by entry.
        if kind == "begin":
            assert decision.accepted and not decision.pending
        elif kind == "commit-ok":
            assert decision.accepted and not decision.violations
        elif kind == "commit-reject":
            assert decision.rejected
            assert list(decision.violations) == list(violations)
        elif kind == "rollback":
            assert decision.accepted
        elif kind == "structural":
            assert decision.rejected and not decision.violations
            assert "structural error" in decision.note
        elif kind == "pending":
            assert decision.pending
            assert decision.accepted == (not violations)
            assert list(decision.violations) == list(violations)
        elif kind == "rejected":
            assert decision.rejected and not decision.pending
            assert list(decision.violations) == list(violations)
        else:
            assert kind == "accepted"
            assert decision.accepted and not decision.pending
            assert not decision.violations
        # State agreement on every prefix (incl. mid-transaction).
        assert engine.tree.same_instance(state)
        # Incremental cumulative check == from-scratch on the live state.
        assert (engine.violations()
                == explain_violations(base, state, constraints))
    # The generator always closes its brackets.
    assert not engine.in_transaction and txn_backup is None
    # Final state agrees with the sequence checker's data-oriented notion.
    expected = [(0, 1, v)
                for v in explain_violations(base, engine.tree, constraints)]
    got = check_sequence([base, engine.tree], constraints, pairwise=False)
    assert {(i, j, v) for i, j, v in got} == set(expected)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_replaying_one_log_is_deterministic(seed):
    """Same log, two engines (and two substrates): identical behaviour."""
    rng = random.Random(seed)
    start = random_tree(rng, LABELS, size=rng.randint(2, 15))
    constraints = random_constraints(rng, LABELS, SPECS[2],
                                     count=3, types="mixed", spine=2)
    ops = random_update_stream(rng, start, LABELS, constraints=constraints,
                               ops=12, violation_rate=0.4)
    first = StreamEnforcer(constraints, start.copy())
    second = StreamEnforcer(constraints, start.copy(), engine="indexed")
    for op in ops:
        a, b = first.apply(op), second.apply(op)
        assert (a.accepted, a.pending, list(a.violations)) == \
               (b.accepted, b.pending, list(b.violations))
    assert first.tree.same_instance(second.tree)
    assert first.stats == second.stats

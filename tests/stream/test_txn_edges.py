"""Transaction and delta-log edge cases of the enforcement stream.

The corners the main engine suite leaves open: structurally-rejected and
violation-rejected ops *inside* a bracket after earlier accepted ops,
``Begin`` colliding with an open bracket (and the bracket surviving the
error), ``rollback()`` on an empty journal, and consumers syncing past
the :data:`repro.trees.index.DELTA_LOG_CAP` horizon, where
``deltas_since`` gives up and masks must rebuild from scratch.
"""

from __future__ import annotations

import pytest

from repro import constraint_set
from repro.constraints.validity import BaselineValidity
from repro.errors import StreamError
from repro.stream import AddLeaf, Begin, Move, RemoveSubtree, StreamEnforcer
from repro.trees import branch, build
from repro.trees.index import DELTA_LOG_CAP, TreeIndex
from repro.xpath.bitset import BitsetEvaluator
from repro.xpath.parser import parse


def hospital():
    return build(
        branch("patient",
               branch("clinicalTrial", nid=9001),
               branch("visit", branch("prescription", nid=9003), nid=9002),
               nid=9000),
        branch("patient", branch("visit", nid=9102), nid=9100),
    )


POLICY = constraint_set(
    ("/patient", "down"),
    ("/patient[/clinicalTrial]", "up"),
    ("//prescription", "up"),
)


class TestMidTransactionRejections:
    def test_structural_rejection_after_accepted_op_keeps_the_bracket(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        ok = stream.apply(AddLeaf(9002, "prescription", nid=9500))
        assert ok.accepted and ok.pending
        bad = stream.apply(Move(9000, 9002))  # into its own subtree
        assert bad.rejected and not bad.pending
        assert "structural error" in bad.note and bad.txn is not None
        # The bracket survives: the earlier edit is still pending and a
        # valid commit keeps exactly it.
        decision = stream.commit()
        assert decision.accepted
        assert 9500 in doc and doc.parent(9000) != 9002
        stats = stream.stats
        assert stats.ops == 2 and stats.accepted == 1 and stats.rejected == 1
        assert stats.committed == 1

    def test_violation_rejected_pending_op_can_be_compensated(self):
        # A mid-bracket op that breaks the policy stays applied (pending);
        # if a later op restores validity, the commit keeps all of them.
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        bad = stream.apply(RemoveSubtree(9003))  # drops the prescription
        assert bad.rejected and bad.pending and bad.violations
        fix = stream.apply(AddLeaf(9002, "prescription", nid=9003))
        assert fix.accepted and fix.pending
        decision = stream.commit()
        assert decision.accepted
        assert 9003 in doc and stream.is_valid()
        assert stream.stats.accepted == 2 and stream.stats.rejected == 0

    def test_violation_after_accepted_op_rolls_back_everything_on_commit(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        assert stream.apply(Move(9002, 9100)).accepted
        assert stream.apply(RemoveSubtree(9001)).rejected  # trial gone
        decision = stream.commit()
        assert decision.rejected and decision.violations
        assert doc.same_instance(before)
        assert stream.stats.rejected == 2 and stream.stats.accepted == 0


class TestBracketProtocol:
    def test_begin_while_open_raises_and_leaves_the_bracket_intact(self):
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin("outer")
        stream.apply(AddLeaf(9002, "prescription", nid=9600))
        with pytest.raises(StreamError):
            stream.apply(Begin("inner"))
        assert stream.in_transaction
        decision = stream.commit()
        assert decision.accepted and 9600 in doc
        assert stream.stats.transactions == 1 and stream.stats.committed == 1

    def test_rollback_with_empty_journal_is_a_clean_no_op(self):
        doc = hospital()
        before = doc.copy()
        stream = StreamEnforcer(POLICY, doc)
        stream.begin()
        decision = stream.rollback()
        assert decision.accepted and "0 op(s) rolled back" in decision.note
        assert doc.same_instance(before)
        stats = stream.stats
        assert stats.rolled_back == 1 and stats.ops == 0
        assert not stream.in_transaction
        # The stream is fully usable afterwards.
        assert stream.apply(AddLeaf(9000, "visit")).accepted

    def test_commit_with_empty_journal_commits_nothing(self):
        stream = StreamEnforcer(POLICY, hospital())
        stream.begin()
        decision = stream.commit()
        assert decision.accepted and "0 op(s) committed" in decision.note
        assert stream.stats.committed == 1 and stream.stats.accepted == 0


class TestDeltaLogHorizon:
    def test_deltas_since_past_the_horizon_returns_none(self):
        index = TreeIndex(hospital())
        start = index.revision
        for _ in range(DELTA_LOG_CAP + 5):
            index.apply_add_leaf(9000, "visit")
        assert index.deltas_since(start) is None
        assert index.deltas_since(index.revision) == []
        assert len(index.deltas_since(index.revision - 3)) == 3

    def test_stale_masks_past_the_horizon_rebuild_correctly(self):
        # Warm a predicate mask, let the index run past the delta log's
        # reach between queries, and check the answers still match a cold
        # evaluator: the memo must detect the horizon and rebuild.
        tree = hospital()
        ctx = BitsetEvaluator.for_tree(tree)
        pattern = parse("/patient[/visit]")
        assert ctx.evaluate_ids(pattern) == {9000, 9100}
        for i in range(DELTA_LOG_CAP + 8):
            ctx.apply_add_leaf(9102, "prescription", nid=20000 + i)
        fresh = BitsetEvaluator.for_tree(tree)
        assert ctx.evaluate_ids(pattern) == fresh.evaluate_ids(pattern)
        removed = parse("//prescription")
        assert ctx.evaluate_ids(removed) == fresh.evaluate_ids(removed)

    def test_enforcer_baseline_masks_survive_the_horizon(self):
        # Force the enforcer's delta-maintained baseline masks past the
        # horizon by editing through its context without a violations()
        # sync in between, then compare to an independent checker.
        doc = hospital()
        stream = StreamEnforcer(POLICY, doc)
        assert stream.is_valid()
        for i in range(DELTA_LOG_CAP + 8):
            stream.context.apply_add_leaf(9002, "note", nid=30000 + i)
        violations = stream.violations()
        reference = BaselineValidity(POLICY, doc).violations(doc)
        # Both sides see the same (zero) violations: "note" leaves touch
        # no range, and the rebuilt masks must agree with a cold checker.
        assert violations == list(reference) == []
        # And a real violation is still caught after the rebuild.
        decision = stream.apply(RemoveSubtree(9001))
        assert decision.rejected and decision.violations

"""Every worked example and figure of the paper, as executable assertions.

Index: Figure 2 + Example 2.1, the Section 2.1 implication claims, the
instance-based claim, Figure 3 (Theorem 3.1), Example 3.1 (keys encoding),
Example 3.3 (chase divergence), Example 4.1 (type interaction), Table 1 / 2
engine coverage, Examples 6.1/6.2 (relative constraints).
"""

from repro.constraints import (
    constraint_set,
    immutable,
    no_insert,
    no_remove,
    satisfies_relative,
)
from repro.constraints.validity import is_valid, violation_of
from repro.implication import implies, implies_single
from repro.instance import implies_on
from repro.keys import pair_satisfies_encoding
from repro.trees import branch, build
from repro.xic import chase_implication
from repro.xpath import parse


class TestFigure2Example21:
    """Figure 2's pair is valid for c1, c2 and violates c3 at visit n7."""

    def test_validity_claims(self, figure2_instances):
        before, after = figure2_instances
        c1 = no_insert("/patient[/visit]")
        c2 = immutable("/patient[/clinicalTrial]")
        c3 = no_remove("/patient/visit")
        assert violation_of(before, after, c1) is None
        assert all(violation_of(before, after, c) is None for c in c2)
        violation = violation_of(before, after, c3)
        assert violation is not None
        assert {n.nid for n in violation.removed} == {700107}

    def test_implication_claim(self):
        """{c1, c2} ⊨ (/patient[/visit][/clinicalTrial], ↓) — Section 2.1."""
        premises = constraint_set(
            ("/patient[/visit]", "down"),
            ("/patient[/clinicalTrial]", "up"),
            ("/patient[/clinicalTrial]", "down"),
        )
        result = implies(premises, no_insert("/patient[/visit][/clinicalTrial]"))
        assert result.is_implied

    def test_conclusion_not_implied_by_c1_alone(self):
        premises = constraint_set(("/patient[/visit]", "down"))
        result = implies(premises, no_insert("/patient[/visit][/clinicalTrial]"))
        assert result.is_refuted
        assert result.verify() == []


class TestSection21InstanceClaim:
    """{c3} ⊨_J (/patient[/clinicalTrial]/visit, ↑) but {c3} ⊭ the same."""

    def _premises(self):
        return constraint_set(("/patient/visit", "up"))

    def _conclusion(self):
        return no_remove("/patient[/clinicalTrial]/visit")

    def test_instance_based_implied(self):
        current = build(
            branch("patient", branch("clinicalTrial"), branch("visit")),
            branch("patient", branch("clinicalTrial"), branch("visit")),
        )
        result = implies_on(self._premises(), current, self._conclusion())
        assert result.is_implied

    def test_patient_without_trial_breaks_it(self):
        current = build(
            branch("patient", branch("clinicalTrial"), branch("visit")),
            branch("patient", branch("visit")),
        )
        result = implies_on(self._premises(), current, self._conclusion())
        assert result.is_refuted and result.verify() == []

    def test_general_implication_fails(self):
        result = implies(self._premises(), self._conclusion())
        assert result.is_refuted and result.verify() == []


class TestFigure3:
    """Theorem 3.1: implication between single constraints ⇔ equivalence."""

    def test_interchange_construction(self):
        from repro.implication import build_interchange_counterexample

        certificate = build_interchange_counterexample(parse("//b"), parse("/a/b"))
        assert certificate is not None
        assert certificate.check(constraint_set(("//b", "up")),
                                 no_remove("/a/b")) == []

    def test_both_directions_match_equivalence(self):
        from repro.xpath import equivalent

        pairs = [("/a/b", "//b"), ("/a[/b]", "/a[/b]"), ("/a/b/c", "/a//c")]
        for q1, q2 in pairs:
            result = implies_single(no_remove(q1), no_remove(q2))
            assert result.is_implied == equivalent(parse(q1), parse(q2))


class TestExample31:
    """The DTD + regular keys encoding captures pair validity."""

    def test_encoding_equivalence_on_figure2(self, figure2_instances):
        before, after = figure2_instances
        premises = constraint_set(("//visit", "down"), ("//patient", "up"))
        direct = is_valid(before, after, premises)
        encoded = pair_satisfies_encoding(premises, before, after)
        assert direct == encoded

    def test_encoding_detects_violation(self, figure2_instances):
        before, after = figure2_instances
        premises = constraint_set(("//visit", "up"))  # n7 was removed
        assert not is_valid(before, after, premises)
        assert not pair_satisfies_encoding(premises, before, after)


class TestExample33:
    """The chase diverges on (c1, c2) ⊢ (/a/b/c/d, ↑); our engines decide."""

    def test_divergence(self):
        premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
        outcome = chase_implication(premises, no_remove("/a/b/c/d"), max_steps=25)
        assert outcome.diverged
        assert outcome.history[-1] > outcome.history[0]

    def test_engine_terminates_on_the_same_instance(self):
        premises = constraint_set(("/a/b/c", "up"), ("/a/b[c]", "down"))
        result = implies(premises, no_remove("/a/b/c/d"))
        # the hybrid engine must return a sound verdict (here: refutation
        # or unknown, never an unsound 'implied')
        if result.is_refuted:
            assert result.verify() == []


class TestExample41:
    """Cross-type interaction for linear paths."""

    PREMISES = constraint_set(
        ("//a//c", "up"), ("//b//c", "up"), ("//a//b//c", "down"),
        ("//a//b//a//c", "up"), ("//b//a//b//c", "up"),
    )
    CONCLUSION = no_remove("//b//a//c")

    def test_full_set_implies(self):
        assert implies(self.PREMISES, self.CONCLUSION).is_implied

    def test_no_remove_constraints_alone_do_not(self):
        up_only = self.PREMISES.of_type(self.CONCLUSION.type)
        result = implies(up_only, self.CONCLUSION)
        assert result.is_refuted and result.verify() == []

    def test_dropping_the_no_insert_constraint_breaks_it(self):
        from repro.constraints import ConstraintSet

        without = ConstraintSet(
            c for c in self.PREMISES if str(c.range) != "//a//b//c")
        result = implies(without, self.CONCLUSION)
        assert result.is_refuted and result.verify() == []


class TestExamples6x:
    def test_example_61(self):
        from repro.constraints import example_61

        constraints, c, c3, _ = example_61()
        assert implies_single(c3, c).is_refuted

    def test_example_62(self):
        from repro.constraints import example_62

        constraint, sequence = example_62()
        for one, two in zip(sequence, sequence[1:], strict=False):
            assert satisfies_relative(one, two, constraint)
        assert not satisfies_relative(sequence[0], sequence[-1], constraint)


class TestTableCoverage:
    """Each Table 1 / Table 2 cell dispatches to a documented engine."""

    def test_table1_cells(self):
        cells = [
            (constraint_set(("/a[/b]", "up")), no_remove("/a[/b]"),
             "canonical-one-type"),
            (constraint_set(("/a[/b]", "up"), ("/a", "down")),
             no_remove("/a[/b]"), "same-type-thm41"),
            (constraint_set(("//a", "up"), ("//b", "down")), no_remove("//a"),
             "linear-record-fixpoint"),
            (constraint_set(("/a[/b]//c", "up"), ("//c", "down")),
             no_remove("/a[/b]//c"), "hybrid-nexptime-cell"),
        ]
        for premises, conclusion, engine in cells:
            assert implies(premises, conclusion).engine == engine

    def test_table2_cells(self):
        from repro.trees import parse_tree

        current = parse_tree("a(b)")
        cells = [
            (constraint_set(("/a/b", "down")), no_insert("/a/b"),
             "instance-no-insert"),
            (constraint_set(("/a/b", "up")), no_remove("/a/b"),
             "instance-no-remove-embeddings"),
            (constraint_set(("/a/b", "up")), no_insert("/a/b"),
             "instance-cross-type"),
            (constraint_set(("/a/b", "up"), ("/a", "down")), no_remove("/a/b"),
             "instance-hybrid"),
        ]
        for premises, conclusion, engine in cells:
            assert implies_on(premises, current, conclusion).engine == engine

"""The per-worker compiled-session cache behind :class:`ProcessExecutor`.

The cache is pinned by the pool initializer, so these tests drive the
worker-side functions directly (they run in-process here — the functions
are ordinary module-level callables) and then check that a pooled replay
still matches the inline reference bit for bit.
"""

from __future__ import annotations

import random

from repro import ConstraintService
from repro.constraints import no_insert, no_remove
from repro.service import ProcessExecutor, response_checksum
from repro.service.executors import (
    _implication_chunk,
    _pin_session_cache,
    _worker_session,
)
from repro.workloads import random_requests

import repro.service.executors as executors

LABELS = ["a", "b", "c"]


def teardown_function(_fn):
    # Tests below pin the module-level cache; restore the bypass default.
    executors._SESSION_CACHE = None


def test_unpinned_worker_compiles_per_call():
    executors._SESSION_CACHE = None
    wire = (no_remove("/a/b"),)
    assert _worker_session(wire) is not _worker_session(wire)


def test_pinned_worker_reuses_the_compiled_session():
    _pin_session_cache()
    wire = (no_remove("/a/b"), no_insert("/b/c"))
    session = _worker_session(wire)
    assert _worker_session(wire) is session
    # A fresh pickle-equivalent tuple hits the same entry (canonical keys).
    assert _worker_session((no_remove("/a/b"), no_insert("/b/c"))) is session


def test_cache_evicts_fifo_at_its_limit():
    _pin_session_cache(limit=2)
    first = _worker_session((no_remove("/a"),))
    second = _worker_session((no_remove("/b"),))
    assert _worker_session((no_remove("/a"),)) is first
    _worker_session((no_remove("/c"),))  # evicts the oldest entry
    assert len(executors._SESSION_CACHE) == 2
    assert _worker_session((no_remove("/b"),)) is second  # survivor kept


def test_chunks_answer_identically_with_and_without_the_cache():
    wire = (no_remove("/a/b"), no_insert("/b/c"))
    conclusions = (no_remove("/a/b"), no_remove("/c"), no_insert("/b/c"))
    executors._SESSION_CACHE = None
    cold = _implication_chunk((wire, conclusions))
    _pin_session_cache()
    warm_miss = _implication_chunk((wire, conclusions))
    warm_hit = _implication_chunk((wire, conclusions))
    as_dicts = [[v.to_dict() for v in out]
                for out in (cold, warm_miss, warm_hit)]
    assert as_dicts[0] == as_dicts[1] == as_dicts[2]


def test_pooled_replay_still_matches_inline_reference():
    import json

    from repro.service import request_from_dict

    rng = random.Random(20070611)
    requests = random_requests(rng, LABELS, constraint_sets=2, documents=1,
                               queries=6, tree_size=10, stream_ops=5)

    def reload():
        # Services adopt registered documents — each replay needs its own.
        return [request_from_dict(json.loads(json.dumps(r.to_dict())))
                for r in requests]

    inline_svc = ConstraintService()
    inline = [response_checksum(inline_svc.handle(r)) for r in reload()]
    with ProcessExecutor(workers=2, session_cache=2) as executor:
        svc = ConstraintService(executor=executor)
        pooled = [response_checksum(svc.handle(r)) for r in reload()]
    assert pooled == inline

"""Hostile bytes at the wire boundary: every one becomes a typed error.

``handle_json`` / ``handle_dict`` are the service's byte boundary — the
same surface the socket server feeds — and the contract is absolute:
*no* input, however malformed, may raise.  Garbage becomes an
:class:`~repro.service.protocol.ErrorResponse` with a machine-readable
``error`` kind and a message naming what was wrong, and the service
remains fully usable afterwards.

The table below is the regression corpus: one row per distinct way a
client got the envelope wrong in anger.
"""

from __future__ import annotations

import json

import pytest

from repro.constraints import constraint_set
from repro.service.protocol import (
    ErrorResponse,
    RegisterConstraints,
    request_from_dict,
    response_from_dict,
)
from repro.service.service import ConstraintService

BAD_PAYLOADS = [
    # (case id, raw JSON text, expected error kind, message fragment)
    ("not-json", "not json at all{{{", "ParseError", "bad JSON"),
    ("truncated-json", '{"request": "regi', "ParseError", "bad JSON"),
    ("json-array", "[1, 2, 3]", "ServiceError", "missing 'request' kind"),
    ("json-scalar", '"just a string"', "ServiceError", "missing 'request'"),
    ("json-number", "42", "ServiceError", "missing 'request'"),
    ("json-null", "null", "ServiceError", "missing 'request'"),
    ("empty-object", "{}", "ServiceError", "missing 'request' kind"),
    ("unknown-kind", '{"request": "no-such-kind"}',
     "ServiceError", "unknown request kind 'no-such-kind'"),
    ("kind-not-a-string", '{"request": 7}',
     "ServiceError", "unknown request kind"),
    ("missing-fields", '{"request": "register-constraints"}',
     "ServiceError", "malformed 'register-constraints'"),
    ("bad-constraint-type",
     '{"request": "register-constraints", "name": "p",'
     ' "constraints": [["/a", "bogus-type"]]}',
     "ServiceError", "bogus-type"),
    ("constraint-not-a-pair",
     '{"request": "register-constraints", "name": "p",'
     ' "constraints": [17]}',
     "ServiceError", "constraint"),
    ("unknown-op-kind",
     '{"request": "stream-submit", "document": "d", "constraints": "p",'
     ' "ops": [{"op": "warp-core"}]}',
     "ServiceError", "unknown stream operation"),
    ("op-missing-fields",
     '{"request": "stream-submit", "document": "d", "constraints": "p",'
     ' "ops": [{"op": "add-leaf"}]}',
     "ServiceError", "bad fields for stream op"),
    ("op-not-an-object",
     '{"request": "stream-submit", "document": "d", "constraints": "p",'
     ' "ops": ["add-leaf"]}',
     "ServiceError", "stream"),
    ("status-missing-document", '{"request": "stream-status"}',
     "ServiceError", "malformed 'stream-status'"),
    ("document-tree-garbage",
     '{"request": "register-document", "name": "d", "tree": 9}',
     "ServiceError", "malformed 'register-document'"),
]


@pytest.fixture(scope="module")
def service():
    svc = ConstraintService()
    yield svc
    svc.close()


class TestHandleJsonNeverRaises:
    @pytest.mark.parametrize(
        "payload,error,fragment",
        [case[1:] for case in BAD_PAYLOADS],
        ids=[case[0] for case in BAD_PAYLOADS])
    def test_garbage_in_typed_error_out(self, service, payload, error,
                                        fragment):
        reply = json.loads(service.handle_json(payload))
        assert reply["response"] == "error"
        assert reply["error"] == error
        assert fragment in reply["message"]

    def test_the_service_survives_the_whole_corpus(self, service):
        """After every row of garbage, normal service resumes untouched."""
        for _, payload, _, _ in BAD_PAYLOADS:
            service.handle_json(payload)
        policy = constraint_set(("/patient[/clinicalTrial]", "up"))
        reply = json.loads(service.handle_json(json.dumps(
            RegisterConstraints("p", tuple(policy)).to_dict())))
        assert reply["response"] == "ack"
        assert reply["registered"] == "constraints"
        assert (reply["name"], reply["size"]) == ("p", 1)


class TestDictBoundary:
    """The dict-level twin used in-process (and by the async service)."""

    def test_non_dict_payloads_error_cleanly(self, service):
        for payload in ([1], "x", 3.5, None, True):
            reply = service.handle_dict(payload)
            assert reply["response"] == "error"

    def test_request_from_dict_raises_only_repro_errors(self):
        from repro.errors import ReproError
        for payload in ({}, {"request": "nope"}, {"request": ["a"]},
                        {"request": "stream-submit", "ops": "zzz"}, []):
            with pytest.raises(ReproError):
                request_from_dict(payload)

    def test_response_from_dict_rejects_garbage_symmetrically(self):
        from repro.errors import ReproError
        for payload in ({}, {"response": "no-such"}, {"response": None},
                        {"response": "decisions"}, 7):
            with pytest.raises(ReproError):
                response_from_dict(payload)

    def test_error_response_round_trips(self):
        err = ErrorResponse(error="ServiceError", message="boom",
                            details={"k": 1})
        assert response_from_dict(err.to_dict()) == err

"""Wire-protocol unit tests: every request/response round-trips.

``request_from_dict(request.to_dict())`` (and the response twin) must
rebuild an object whose wire form is identical — the property a network
front end and the process workers rely on.  JSON-serialisability is part
of the contract: every dict form must survive ``json.dumps``/``loads``.
"""

from __future__ import annotations

import json

import pytest

from repro import ConstraintService
from repro.constraints import no_insert, no_remove
from repro.errors import ServiceError
from repro.service import (
    Ack,
    ErrorResponse,
    ImplicationQuery,
    InstanceQuery,
    QueryAnswers,
    RegisterConstraints,
    RegisterDocument,
    StreamDecisions,
    StreamSubmit,
    Verdict,
    WireDecision,
    WireViolation,
    request_from_dict,
    request_from_json,
    response_checksum,
    response_from_dict,
)
from repro.stream import AddLeaf, Begin, Commit, Move, RemoveSubtree, Rollback
from repro.stream.ops import op_from_dict, op_to_dict
from repro.trees import branch, build


def tree():
    return build(branch("patient", branch("clinicalTrial", nid=11), nid=10))


def roundtrip_request(request):
    wire = json.loads(json.dumps(request.to_dict()))
    rebuilt = request_from_dict(wire)
    assert rebuilt.to_dict() == request.to_dict()
    assert request_from_json(request.to_json()).to_dict() == request.to_dict()
    return rebuilt


def roundtrip_response(response):
    wire = json.loads(json.dumps(response.to_dict()))
    rebuilt = response_from_dict(wire)
    assert rebuilt.to_dict() == response.to_dict()
    assert response_checksum(rebuilt) == response_checksum(response)
    return rebuilt


class TestRequestRoundTrips:
    def test_register_constraints(self):
        req = RegisterConstraints(
            "policy", (no_insert("/patient[/visit]"),
                       no_remove("//clinicalTrial")), replace=True)
        back = roundtrip_request(req)
        assert back.constraints == req.constraints  # canonical equality

    def test_register_document_preserves_ids(self):
        req = RegisterDocument("ward", tree())
        back = roundtrip_request(req)
        assert back.tree.same_instance(req.tree)

    def test_implication_query(self):
        roundtrip_request(ImplicationQuery(
            "policy", (no_insert("/a[/b][//c]"), no_remove("/a")),
            fail_fast=True, require_decision=True))

    def test_instance_query(self):
        roundtrip_request(InstanceQuery(
            "policy", "ward", (no_insert("/a"),), max_moves=3,
            search_budget=77))

    def test_stream_submit_all_ops(self):
        req = StreamSubmit("ward", "policy", (
            Begin("bulk"), AddLeaf(10, "visit", nid=99), Move(11, 10),
            RemoveSubtree(99), Commit(), Begin(), Rollback()))
        back = roundtrip_request(req)
        assert back.ops == req.ops

    def test_unknown_kind_and_malformed_payloads(self):
        with pytest.raises(ServiceError):
            request_from_dict({"request": "no-such-kind"})
        with pytest.raises(ServiceError):
            request_from_dict({"no": "kind"})
        with pytest.raises(ServiceError):
            request_from_dict({"request": "implication"})  # missing fields


class TestOpCodec:
    def test_each_op_round_trips(self):
        ops = [AddLeaf(1, "x"), AddLeaf(1, "x", nid=7), Move(2, 3),
               RemoveSubtree(4), Begin(), Begin("named"), Commit(), Rollback()]
        for op in ops:
            assert op_from_dict(json.loads(json.dumps(op_to_dict(op)))) == op

    def test_bad_tags_raise(self):
        with pytest.raises(ValueError):
            op_from_dict({"op": "explode"})
        with pytest.raises(ValueError):
            op_from_dict({"op": "move", "nid": 1})  # missing new_parent


class TestResponseRoundTrips:
    def test_ack(self):
        roundtrip_response(Ack("document", "ward", 3))

    def test_query_answers_with_skips(self):
        roundtrip_response(QueryAnswers((
            Verdict("implied", "same-type-thm41", "reason text"),
            None,
            Verdict("not-implied", "cross-type", refuted=True))))

    def test_stream_decisions_with_violations(self):
        violation = WireViolation(no_remove("/patient"), ((10, "patient"),), ())
        decision = WireDecision(seq=0, op=RemoveSubtree(10), accepted=False,
                                violations=(violation,))
        back = roundtrip_response(StreamDecisions((decision,)))
        assert back.rejected_count == 1 and back.accepted_count == 0

    def test_error_response(self):
        roundtrip_response(ErrorResponse("ServiceError", "boom",
                                         details={"name": "ward"}))

    def test_unknown_kind_raises(self):
        with pytest.raises(ServiceError):
            response_from_dict({"response": "no-such-kind"})


class TestServiceWireSurface:
    def test_handle_json_end_to_end(self):
        svc = ConstraintService()
        svc.register_constraints("policy", [("/patient[/clinicalTrial]", "up")])
        svc.register_document("ward", tree())
        payload = StreamSubmit("ward", "policy",
                               (RemoveSubtree(11),)).to_json()
        reply = json.loads(svc.handle_json(payload))
        assert reply["response"] == "decisions"
        assert reply["decisions"][0]["accepted"] is False

    def test_handle_json_bad_json_is_an_error_response(self):
        reply = json.loads(ConstraintService().handle_json("{nope"))
        assert reply["response"] == "error" and reply["error"] == "ParseError"

    def test_service_errors_become_responses(self):
        svc = ConstraintService()
        reply = svc.handle(ImplicationQuery("ghost", (no_insert("/a"),)))
        assert isinstance(reply, ErrorResponse)
        assert reply.error == "ServiceError" and "ghost" in reply.message

    def test_duplicate_registration_needs_replace(self):
        svc = ConstraintService()
        svc.register_document("ward", tree())
        reply = svc.handle(RegisterDocument("ward", tree()))
        assert isinstance(reply, ErrorResponse)
        ok = svc.handle(RegisterDocument("ward", tree(), replace=True))
        assert isinstance(ok, Ack)

    def test_replacing_a_constraint_set_resets_its_live_streams(self):
        # A stream frozen on the old policy must not keep enforcing it
        # after the set is replaced: the next submission reopens the
        # stream under the new constraints (fresh baseline).
        svc = ConstraintService()
        svc.register_constraints("policy", [("/patient[/clinicalTrial]", "up")])
        svc.register_document("ward", tree())
        old = svc.enforcer("ward", "policy")
        assert old.apply(RemoveSubtree(11)).rejected  # trial is kept
        svc.register_constraints("policy", [("/patient", "down")],
                                 replace=True)
        fresh = svc.enforcer("ward", "policy")
        assert fresh is not old
        # Under the new policy removing the trial is legal.
        decision = svc.handle(StreamSubmit("ward", "policy",
                                           (RemoveSubtree(11),)))
        assert decision.decisions[0].accepted

    def test_one_stream_per_document_guard(self):
        from repro.errors import ServiceError as Err

        svc = ConstraintService()
        svc.register_constraints("p1", [("/patient", "down")])
        svc.register_constraints("p2", [("/patient", "up")])
        svc.register_document("ward", tree())
        svc.enforcer("ward", "p1")
        with pytest.raises(Err):
            svc.enforcer("ward", "p2")

"""Certified templates through the service layer: wire, store, executor.

Covers the two new protocol requests (``register-template`` /
``certified-submit``) end to end: JSON round-trips, the store's
certify-then-store gate (rejected and unknown templates are *never*
stored, so the hot path cannot be reached without a certificate), the
inline executor's decision surface (bit-identical to an uncertified
:class:`StreamSubmit` of the same bracket), the process executor's
automatic inline routing, and the metrics snapshot counters the issue
pins (``certify.certified_total`` / ``certify.rejected_total`` /
``stream.certified_ops_total``).
"""

from __future__ import annotations

import json

import pytest

from repro.certify import (
    LabelHole,
    NodeHole,
    TemplateAdd,
    UpdateTemplate,
)
from repro.constraints import constraint_set
from repro.errors import ServiceError
from repro.service.protocol import (
    Ack,
    CertifiedSubmit,
    ErrorResponse,
    MetricsRequest,
    RegisterConstraints,
    RegisterDocument,
    RegisterTemplate,
    StreamDecisions,
    StreamStatus,
    StreamSubmit,
    request_from_dict,
    response_checksum,
)
from repro.service.service import ConstraintService
from repro.stream.ops import AddLeaf, Begin, Commit
from repro.trees import branch, build
from repro.xpath.parser import parse

POLICY = constraint_set(
    ("/patient/visit", "down"),
    ("/patient[/clinicalTrial]", "up"),
)

ANNOTATE = UpdateTemplate("annotate", (
    TemplateAdd(NodeHole("p", parse("//patient")),
                LabelHole("l", frozenset({"note", "memo"}))),
))

INTRUDE = UpdateTemplate("intrude", (
    TemplateAdd(NodeHole("p"), "visit"),))


def ward():
    return build(
        branch("patient",
               branch("visit", nid=7),
               branch("clinicalTrial", nid=8),
               nid=5),
        branch("patient", branch("visit", nid=9), nid=6),
    )


def service_with_ward():
    svc = ConstraintService()
    svc.handle(RegisterConstraints("policy", tuple(POLICY)))
    svc.handle(RegisterDocument("ward", ward()))
    return svc


# ----------------------------------------------------------------------
# Wire round-trips
# ----------------------------------------------------------------------
class TestWire:
    def test_register_template_round_trips(self):
        request = RegisterTemplate("annotate", ANNOTATE, "policy",
                                   replace=True)
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = request_from_dict(wire)
        assert rebuilt.to_dict() == request.to_dict()
        assert rebuilt.template == ANNOTATE
        assert rebuilt.replace is True

    def test_certified_submit_round_trips(self):
        request = CertifiedSubmit("ward", "policy", "annotate",
                                  (("l", "note"), ("p", 5)))
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = request_from_dict(wire)
        assert rebuilt.to_dict() == request.to_dict()
        assert dict(rebuilt.bindings) == {"l": "note", "p": 5}

    def test_malformed_template_wire_is_a_value_error(self):
        wire = RegisterTemplate("annotate", ANNOTATE, "policy").to_dict()
        wire["template"] = {"name": "x", "ops": [{"op": "teleport"}]}
        with pytest.raises(ServiceError, match="malformed"):
            request_from_dict(wire)


# ----------------------------------------------------------------------
# Registration through the executor
# ----------------------------------------------------------------------
class TestRegistration:
    def test_certified_template_acks_with_the_verdict(self):
        svc = service_with_ward()
        ack = svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))
        assert isinstance(ack, Ack)
        stats = dict(ack.stats)
        assert stats["certify.certified"] == 1
        assert stats["certify.rejected"] == 0
        assert stats["certify.pairs"] == stats["certify.discharged"] == 2

    def test_rejected_template_ships_the_search_accounting(self):
        svc = service_with_ward()
        ack = svc.handle(RegisterTemplate("intrude", INTRUDE, "policy"))
        stats = dict(ack.stats)
        assert stats["certify.certified"] == 0
        assert stats["certify.rejected"] == 1
        assert stats["certify.attempts"] >= 1
        assert stats["certify.witness_violations"] >= 1
        # ...and the rejected template is NOT registered for submission.
        assert svc.store.templates() == []

    def test_duplicate_name_needs_replace(self):
        svc = service_with_ward()
        svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))
        err = svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))
        assert isinstance(err, ErrorResponse)
        ack = svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy",
                                          replace=True))
        assert isinstance(ack, Ack)

    def test_replacing_the_set_drops_its_templates(self):
        svc = service_with_ward()
        svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))
        svc.handle(RegisterConstraints(
            "policy", tuple(constraint_set(("/patient", "up"))),
            replace=True))
        assert svc.store.templates() == []
        response = svc.handle(CertifiedSubmit("ward", "policy", "annotate",
                                              (("l", "note"), ("p", 5))))
        assert isinstance(response, ErrorResponse)
        assert "unknown certified template" in response.message


# ----------------------------------------------------------------------
# Certified submission
# ----------------------------------------------------------------------
class TestCertifiedSubmit:
    def register(self, svc):
        svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))

    def test_decisions_match_an_uncertified_bracket(self, tmp_path):
        """A durable service pins the fresh leaf's id at the journal
        boundary, so the certified response is wire-for-wire identical
        to an uncertified submission of the same concrete bracket."""
        from repro.server.journal import ServerJournal
        from repro.service.store import DocumentStore

        def durable(root):
            store = DocumentStore()
            journal = ServerJournal(root)
            journal.recover(store)
            store.attach_journal(journal)
            return ConstraintService(store=store)

        def pinned_ward():
            # Root id pinned too: the two services must hold *identical*
            # documents for their pinned fresh-leaf ids to line up.
            from repro.trees.tree import DataTree
            doc = DataTree(root_id=1)
            doc.add_child(1, "patient", nid=5)
            doc.add_child(5, "visit", nid=7)
            doc.add_child(5, "clinicalTrial", nid=8)
            return doc

        fast, slow = durable(tmp_path / "fast"), durable(tmp_path / "slow")
        for svc in (fast, slow):
            svc.handle(RegisterConstraints("policy", tuple(POLICY)))
            svc.handle(RegisterDocument("ward", pinned_ward()))
        self.register(fast)
        response = fast.handle(CertifiedSubmit(
            "ward", "policy", "annotate", (("l", "note"), ("p", 5))))
        assert isinstance(response, StreamDecisions)
        assert [d.accepted for d in response.decisions] == [True] * 3
        nid = response.decisions[1].op.nid
        assert nid is not None
        twin = slow.handle(StreamSubmit("ward", "policy", (
            Begin("annotate"), AddLeaf(5, "note", nid=nid), Commit())))
        # Compare modulo the ``independent`` analyzer flag: the store's
        # uncertified enforcer runs the PR 6 analysis (which may stamp
        # ops independent), the certified path never does — the same
        # field :func:`repro.stream.shard.decision_checksum` excludes.
        def normalized(decisions):
            return [{**d.to_dict(), "independent": False}
                    for d in decisions.decisions]
        assert normalized(twin) == normalized(response)
        assert (fast.store.document("ward")
                == slow.store.document("ward"))

    def test_guard_failure_is_an_error_response_with_no_effect(self):
        svc = service_with_ward()
        self.register(svc)
        # Open the stream first so the before/after comparison is not
        # confounded by the lazy stream-open a submission triggers.
        svc.handle(StreamSubmit("ward", "policy", (AddLeaf(5, "note"),)))
        before = response_checksum(svc.handle(StreamStatus("ward")))
        response = svc.handle(CertifiedSubmit(
            "ward", "policy", "annotate", (("l", "note"), ("p", 404))))
        assert isinstance(response, ErrorResponse)
        assert response_checksum(svc.handle(StreamStatus("ward"))) == before

    def test_out_of_domain_label_is_refused(self):
        svc = service_with_ward()
        self.register(svc)
        response = svc.handle(CertifiedSubmit(
            "ward", "policy", "annotate", (("l", "visit"), ("p", 5))))
        assert isinstance(response, ErrorResponse)
        assert "domain" in response.message

    def test_wrong_set_is_refused(self):
        svc = service_with_ward()
        svc.handle(RegisterConstraints(
            "other", tuple(constraint_set(("/patient", "up")))))
        self.register(svc)
        response = svc.handle(CertifiedSubmit(
            "ward", "other", "annotate", (("l", "note"), ("p", 5))))
        assert isinstance(response, ErrorResponse)
        assert "certified against" in response.message

    def test_status_counts_certified_ops(self):
        svc = service_with_ward()
        self.register(svc)
        svc.handle(CertifiedSubmit("ward", "policy", "annotate",
                                   (("l", "note"), ("p", 5))))
        svc.handle(CertifiedSubmit("ward", "policy", "annotate",
                                   (("l", "memo"), ("p", 6))))
        status = svc.handle(StreamStatus("ward")).to_dict()
        assert dict(status["stats"])["certified"] == 2
        assert dict(status["stats"])["ops"] == 2

    def test_process_executor_routes_certified_inline(self):
        from repro.service.executors import ProcessExecutor
        svc = ConstraintService(executor=ProcessExecutor(workers=1))
        try:
            svc.handle(RegisterConstraints("policy", tuple(POLICY)))
            svc.handle(RegisterDocument("ward", ward()))
            ack = svc.handle(RegisterTemplate("annotate", ANNOTATE,
                                              "policy"))
            assert dict(ack.stats)["certify.certified"] == 1
            response = svc.handle(CertifiedSubmit(
                "ward", "policy", "annotate", (("l", "note"), ("p", 5))))
            assert isinstance(response, StreamDecisions)
            assert len(response.decisions) == 3
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Metrics exposure
# ----------------------------------------------------------------------
class TestMetrics:
    def test_snapshot_exposes_the_certify_counters(self):
        svc = service_with_ward()
        svc.handle(RegisterTemplate("annotate", ANNOTATE, "policy"))
        svc.handle(RegisterTemplate("intrude", INTRUDE, "policy"))
        svc.handle(CertifiedSubmit("ward", "policy", "annotate",
                                   (("l", "note"), ("p", 5))))
        snapshot = svc.handle(MetricsRequest()).to_dict()
        counters = snapshot["metrics"]["counters"]
        assert counters["certify.certified_total"] >= 1
        assert counters["certify.rejected_total"] >= 1
        assert counters["stream.certified_ops_total"] >= 1
        streams = dict(snapshot["streams"])
        assert dict(streams["ward"])["certified"] == 1

"""Hypothesis equivalence: every executor answers like direct calls.

The acceptance contract of :mod:`repro.service`: for any request
sequence, the response streams of :class:`InlineExecutor`,
:class:`ProcessExecutor` and :class:`AsyncService` are identical —
checksum-compared via :func:`response_checksum` — to a *direct* reference
replay that drives raw :class:`~repro.api.session.Reasoner` /
:class:`~repro.api.session.BoundReasoner` /
:class:`~repro.stream.engine.StreamEnforcer` objects with no service
layer at all.  Every request and response in the stream must additionally
round-trip through ``to_dict``/``from_dict``.
"""

from __future__ import annotations

import asyncio
import atexit
import json
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AsyncService, ConstraintService, Reasoner
from repro.analysis import IndependenceIndex
from repro.constraints import ConstraintSet
from repro.service import (
    Ack,
    ImplicationQuery,
    InstanceQuery,
    ProcessExecutor,
    QueryAnswers,
    RegisterConstraints,
    RegisterDocument,
    StreamDecisions,
    StreamSubmit,
    Verdict,
    WireDecision,
    request_from_dict,
    response_checksum,
    response_from_dict,
)
from repro.workloads import random_requests

LABELS = ["a", "b", "c"]

RELAXED = settings(max_examples=8, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

# One persistent pool for the whole module — ProcessExecutor is built to
# be shared across services (its only state is the pool).  Closed at exit
# so the pool does not linger into interpreter shutdown.
PROCESS = ProcessExecutor(workers=2)
atexit.register(PROCESS.close)


def reload(requests):
    """A private copy of the sequence via the wire (fresh trees: services
    *adopt* registered documents, so replays must not share them)."""
    return [request_from_dict(json.loads(json.dumps(r.to_dict())))
            for r in requests]


def checksums(responses):
    return [response_checksum(r) for r in responses]


def direct_replay(requests):
    """Reference semantics: raw sessions and streams, no service layer."""
    sets = {}
    sessions = {}
    docs = {}
    enforcers = {}
    out = []
    for request in requests:
        if isinstance(request, RegisterConstraints):
            sets[request.name] = ConstraintSet(request.constraints)
            sessions[request.name] = Reasoner(sets[request.name])
            stats = tuple(sorted(
                IndependenceIndex(sets[request.name]).stats().items()))
            out.append(Ack("constraints", request.name,
                           len(sets[request.name]), stats=stats))
        elif isinstance(request, RegisterDocument):
            docs[request.name] = request.tree
            out.append(Ack("document", request.name, request.tree.size))
        elif isinstance(request, ImplicationQuery):
            report = sessions[request.constraints].implies_all(
                request.conclusions, fail_fast=request.fail_fast,
                require_decision=request.require_decision)
            out.append(QueryAnswers(tuple(
                Verdict.of(r) if r is not None else None
                for r in report.results)))
        elif isinstance(request, InstanceQuery):
            bound = sessions[request.constraints].bind(docs[request.document])
            report = bound.implies_all(
                request.conclusions, fail_fast=request.fail_fast,
                require_decision=request.require_decision,
                max_moves=request.max_moves,
                search_budget=request.search_budget)
            out.append(QueryAnswers(tuple(
                Verdict.of(r) if r is not None else None
                for r in report.results)))
        elif isinstance(request, StreamSubmit):
            enforcer = enforcers.get(request.document)
            if enforcer is None:
                enforcer = sessions[request.constraints].open_stream(
                    docs[request.document])
                enforcers[request.document] = enforcer
            decisions = enforcer.submit(request.ops)
            out.append(StreamDecisions(tuple(
                WireDecision.of(d) for d in decisions)))
        else:  # pragma: no cover - the generator emits no other kinds
            raise AssertionError(request)
    return out


def service_replay(requests, executor=None):
    svc = ConstraintService(executor=executor)
    return [svc.handle(r) for r in requests]


async def async_replay(requests):
    async with AsyncService() as svc:
        # Pipelined submission: futures resolve in per-document order.
        futures = [svc.submit(r) for r in requests]
        return list(await asyncio.gather(*futures))


def draw_requests(seed):
    rng = random.Random(seed)
    return random_requests(rng, LABELS, constraint_sets=2, documents=2,
                           queries=rng.randint(4, 9),
                           tree_size=rng.randint(6, 18),
                           stream_ops=rng.randint(4, 10))


@given(seed=st.integers(min_value=0, max_value=10**9))
@RELAXED
def test_all_executors_match_direct_calls(seed):
    requests = draw_requests(seed)
    reference = checksums(direct_replay(reload(requests)))
    inline = checksums(service_replay(reload(requests)))
    assert inline == reference
    process = checksums(service_replay(reload(requests), executor=PROCESS))
    assert process == reference
    asynchronous = checksums(asyncio.run(async_replay(reload(requests))))
    assert asynchronous == reference


@given(seed=st.integers(min_value=0, max_value=10**9))
@RELAXED
def test_every_request_and_response_round_trips(seed):
    requests = draw_requests(seed)
    svc = ConstraintService()
    for request in reload(requests):
        assert request_from_dict(
            json.loads(json.dumps(request.to_dict()))).to_dict() == \
            request.to_dict()
        response = svc.handle(request)
        assert response.ok, response.to_dict()
        assert response_from_dict(
            json.loads(json.dumps(response.to_dict()))).to_dict() == \
            response.to_dict()


def test_fail_fast_masks_identically_across_executors():
    rng = random.Random(20070611)
    requests = [r for r in random_requests(rng, LABELS, queries=12)
                ]
    # Force fail-fast on every query request so the masking path is hit.
    forced = []
    for r in requests:
        if isinstance(r, ImplicationQuery):
            forced.append(ImplicationQuery(r.constraints, r.conclusions,
                                           fail_fast=True))
        elif isinstance(r, InstanceQuery):
            forced.append(InstanceQuery(r.constraints, r.document,
                                        r.conclusions, fail_fast=True,
                                        max_moves=r.max_moves,
                                        search_budget=r.search_budget))
        else:
            forced.append(r)
    reference = checksums(direct_replay(reload(forced)))
    assert checksums(service_replay(reload(forced))) == reference
    assert checksums(service_replay(reload(forced),
                                    executor=PROCESS)) == reference


def test_fail_fast_hides_errors_past_the_cutoff_on_every_executor():
    # A wildcard-output conclusion raises NotConcreteError when decided;
    # behind a fail_fast cutoff it must never be decided at all — and
    # when it IS reached, both executors must return the same error.
    from repro.constraints import no_insert

    register = RegisterConstraints("policy", (no_insert("/a"),))
    masked = ImplicationQuery("policy",
                              (no_insert("/b"), no_insert("/a/*")),
                              fail_fast=True)
    reached = ImplicationQuery("policy",
                               (no_insert("/b"), no_insert("/a/*")))
    inline = service_replay(reload([register, masked, reached]))
    process = service_replay(reload([register, masked, reached]),
                             executor=PROCESS)
    assert [r.to_dict() for r in inline] == [r.to_dict() for r in process]
    assert isinstance(inline[1], QueryAnswers)       # error stayed masked
    assert inline[1].answers == ("not-implied", None)
    assert not inline[2].ok                          # error surfaced


def test_parallel_refutation_search_matches_sequential():
    """search_workers shards the cascade family without changing verdicts."""
    rng = random.Random(7)
    from repro.workloads import (FragmentSpec, random_constraints,
                                 random_pattern, random_tree)
    from repro.constraints.model import ConstraintType, UpdateConstraint

    spec = FragmentSpec(predicates=True, descendant=False, wildcard=False)
    agreements = 0
    for _ in range(6):
        tree = random_tree(rng, LABELS, size=7)
        premises = random_constraints(rng, LABELS, spec, count=4,
                                      types="mixed", spine=2)
        conclusion = UpdateConstraint(
            random_pattern(rng, LABELS, spec, spine=2),
            rng.choice(list(ConstraintType)))
        sequential = Reasoner(premises).bind(tree).implies_on(
            conclusion, max_moves=2, search_budget=150)
        parallel = Reasoner(premises).bind(tree).implies_on(
            conclusion, max_moves=2, search_budget=150, search_workers=2)
        assert sequential.answer is parallel.answer
        agreements += 1
    assert agreements == 6

"""Fleet submissions through the service front door.

``FleetSubmit`` rides the same JSON-serialisable protocol as every
other request: wire round-trips, a backend-independent
``response_checksum`` (the property the CI backend matrix compares),
session continuation across submissions, and the store's exclusivity
rules — a document belongs to at most one live fleet and never to a
fleet and an enforcement stream at once.
"""

from __future__ import annotations

import json

import pytest

from repro import ConstraintService
from repro.errors import ServiceError
from repro.masks import numpy_available
from repro.service import (
    ErrorResponse,
    FleetDecisions,
    FleetSubmit,
    StreamSubmit,
    request_from_dict,
    response_checksum,
    response_from_dict,
)
from repro.stream import AddLeaf, RemoveSubtree
from repro.trees import DataTree

POLICY = [("/patient[/clinicalTrial]", "up")]


def make_doc() -> DataTree:
    doc = DataTree()
    patient = doc.add_child(doc.root, "patient")
    doc.add_child(patient, "clinicalTrial")
    return doc


def make_service(docs) -> ConstraintService:
    svc = ConstraintService()
    svc.register_constraints("policy", POLICY)
    for name, doc in docs:
        svc.register_document(name, doc)
    return svc


def submit(svc: ConstraintService, request: FleetSubmit):
    """Drive the request through the full wire path (dict in, dict out)."""
    payload = json.loads(json.dumps(request.to_dict()))
    return response_from_dict(svc.handle_dict(payload))


def traffic(doc: DataTree) -> tuple:
    patient = next(n for n in doc.node_ids() if doc.label(n) == "patient")
    trial = next(n for n in doc.node_ids()
                 if doc.label(n) == "clinicalTrial")
    return (
        (("ward0", (AddLeaf(patient, "visit"),)),),   # epoch 1: fine
        (("ward0", (RemoveSubtree(trial),)),),        # epoch 2: violates
    )


def test_fleet_submit_round_trips():
    doc = make_doc()
    request = FleetSubmit(documents=("ward0", "ward1"), constraints="policy",
                          epochs=traffic(doc), backend="bigint")
    wire = json.loads(json.dumps(request.to_dict()))
    assert request_from_dict(wire) == request
    assert request_from_dict(wire).to_dict() == request.to_dict()
    bare = FleetSubmit(documents=("a",), constraints="c", epochs=())
    assert "backend" not in bare.to_dict()
    assert request_from_dict(bare.to_dict()) == bare


def test_fleet_decisions_over_the_wire():
    base = make_doc()
    svc = make_service([("ward0", base.copy()), ("ward1", make_doc())])
    epochs = traffic(base)
    response = submit(svc, FleetSubmit(
        documents=("ward0", "ward1"), constraints="policy",
        epochs=epochs, backend="bigint"))
    assert isinstance(response, FleetDecisions)
    assert response.docs == 2
    assert [e.epoch for e in response.epochs] == [1, 2]
    good, bad = response.epochs
    assert good.edited == ("ward0",) and good.rejected == ()
    assert bad.rejected == ("ward0",)
    assert bad.violations and bad.violations[0][0] == "ward0"
    assert response.accepted_count == 1 and response.rejected_count == 1
    # The rejected epoch rolled ward0 back to its post-epoch-1 state.
    ward0 = svc.store.document("ward0")
    assert any(ward0.label(n) == "visit" for n in ward0.node_ids())
    assert any(ward0.label(n) == "clinicalTrial" for n in ward0.node_ids())
    assert response_from_dict(response.to_dict()) == response


def test_session_continues_across_submissions():
    base = make_doc()
    svc = make_service([("ward0", base.copy()), ("ward1", make_doc())])
    first, second = traffic(base)
    r1 = submit(svc, FleetSubmit(documents=("ward0", "ward1"),
                                 constraints="policy", epochs=(first,)))
    r2 = submit(svc, FleetSubmit(documents=("ward0", "ward1"),
                                 constraints="policy", epochs=(second,)))
    assert r2.epochs[0].epoch == 2  # the epoch counter carried across
    assert r1.checksum != r2.checksum
    [(docs, set_name, fleet)] = svc.store.live_fleets()
    assert docs == ("ward0", "ward1") and set_name == "policy"
    assert fleet.epoch == 2 and fleet.checksum == r2.checksum


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_response_checksum_is_backend_independent():
    base0, base1 = make_doc(), make_doc()
    epochs = traffic(base0)
    responses = {}
    for backend in ("bigint", "numpy"):
        svc = make_service([("ward0", base0.copy()), ("ward1", base1.copy())])
        responses[backend] = submit(svc, FleetSubmit(
            documents=("ward0", "ward1"), constraints="policy",
            epochs=epochs, backend=backend))
    assert responses["bigint"] == responses["numpy"]
    assert (response_checksum(responses["bigint"])
            == response_checksum(responses["numpy"]))


def expect_error(response, fragment: str) -> None:
    assert isinstance(response, ErrorResponse), response
    assert response.error == "ServiceError"
    assert fragment in response.message, response.message


def test_streamed_document_cannot_join_a_fleet():
    svc = make_service([("ward0", make_doc())])
    svc.handle(StreamSubmit(document="ward0", constraints="policy", ops=()))
    expect_error(
        submit(svc, FleetSubmit(documents=("ward0",), constraints="policy",
                                epochs=())),
        "live enforcement stream")
    # ...and the reverse: a fleet member cannot open a stream.
    svc2 = make_service([("ward0", make_doc())])
    submit(svc2, FleetSubmit(documents=("ward0",), constraints="policy",
                             epochs=()))
    with pytest.raises(ServiceError, match="live fleet"):
        svc2.enforcer("ward0", "policy")


def test_document_belongs_to_one_fleet():
    svc = make_service([("ward0", make_doc()), ("ward1", make_doc())])
    submit(svc, FleetSubmit(documents=("ward0",), constraints="policy",
                            epochs=()))
    expect_error(
        submit(svc, FleetSubmit(documents=("ward0", "ward1"),
                                constraints="policy", epochs=())),
        "already in a live fleet")


def test_backend_cannot_switch_mid_session():
    svc = make_service([("ward0", make_doc())])
    submit(svc, FleetSubmit(documents=("ward0",), constraints="policy",
                            epochs=(), backend="bigint"))
    expect_error(
        submit(svc, FleetSubmit(documents=("ward0",), constraints="policy",
                                epochs=(), backend="no-such-backend")),
        "cannot switch")


def test_epoch_validation_errors():
    svc = make_service([("ward0", make_doc())])
    expect_error(
        submit(svc, FleetSubmit(
            documents=("ward0",), constraints="policy",
            epochs=((("ghost", (AddLeaf(0, "x"),)),),))),
        "not in this fleet")
    expect_error(
        submit(svc, FleetSubmit(
            documents=("ward0",), constraints="policy",
            epochs=((("ward0", ()), ("ward0", ())),))),
        "appears twice")
    expect_error(
        submit(svc, FleetSubmit(documents=(), constraints="policy",
                                epochs=())),
        "at least one document")
    expect_error(
        submit(svc, FleetSubmit(documents=("ward0", "ward0"),
                                constraints="policy", epochs=())),
        "duplicate document names")


def test_reregistration_drops_the_fleet():
    svc = make_service([("ward0", make_doc())])
    submit(svc, FleetSubmit(documents=("ward0",), constraints="policy",
                            epochs=()))
    assert svc.store.fleet_of("ward0") is not None
    svc.register_document("ward0", make_doc(), replace=True)
    assert svc.store.fleet_of("ward0") is None
    svc2 = make_service([("ward0", make_doc())])
    submit(svc2, FleetSubmit(documents=("ward0",), constraints="policy",
                             epochs=()))
    svc2.register_constraints("policy", POLICY, replace=True)
    assert svc2.store.live_fleets() == []

"""Unit tests for the asyncio front end's ordering and lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro import AsyncService
from repro.errors import ServiceError
from repro.service import ErrorResponse, StreamDecisions
from repro.stream import AddLeaf, RemoveSubtree
from repro.trees import branch, build


def ward():
    return build(branch("patient", branch("clinicalTrial", nid=21), nid=20))


POLICY = [("/patient[/clinicalTrial]", "up"), ("/patient", "down")]


def run(coro):
    return asyncio.run(coro)


class TestOrdering:
    def test_pipelined_ops_resolve_in_submission_order(self):
        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("policy", POLICY)
                await svc.register_document("ward", ward())
                # Removing #30 only works after the first batch added it:
                # pipelined submission must keep the log order.
                first = svc.enforce("ward", "policy",
                                    [AddLeaf(20, "visit", nid=30)])
                second = svc.enforce("ward", "policy",
                                     [RemoveSubtree(30)])
                r1, r2 = await asyncio.gather(first, second)
                return r1, r2

        r1, r2 = run(main())
        assert r1.decisions[0].accepted
        # removing the fresh leaf is fine (it was never in the baseline)
        assert r2.decisions[0].accepted

    def test_documents_interleave_but_each_is_serial(self):
        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("policy", POLICY)
                a, b = ward(), ward()
                await svc.register_document("a", a)
                await svc.register_document("b", b)
                futures = []
                for i in range(5):
                    futures.append(svc.enforce(
                        "a", "policy", [AddLeaf(20, "visit", nid=100 + i)]))
                    futures.append(svc.enforce(
                        "b", "policy", [AddLeaf(20, "visit", nid=200 + i)]))
                replies = await asyncio.gather(*futures)
                return replies, a.size, b.size

        replies, size_a, size_b = run(main())
        assert all(r.decisions[0].accepted for r in replies)
        assert size_a == size_b == 3 + 5  # root + patient + trial + 5 visits

    def test_late_registration_barrier_orders_across_queues(self):
        # A StreamSubmit depending on a constraint set registered many
        # control-queue requests earlier in the same pipelined burst must
        # wait for that registration — even past FAIRNESS_STRIDE, where
        # the control worker yields mid-drain and the document worker
        # could otherwise run ahead of it.
        from repro import constraint_set
        from repro.constraints import no_insert
        from repro.service import (ImplicationQuery, RegisterConstraints,
                                   StreamSubmit)

        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("warm", POLICY)
                await svc.register_document("ward", ward())
                stride = AsyncService.FAIRNESS_STRIDE
                futures = [svc.submit(ImplicationQuery(
                    "warm", (no_insert("/patient"),)))
                    for _ in range(stride + 4)]
                futures.append(svc.submit(RegisterConstraints(
                    "late", tuple(constraint_set(*POLICY)))))
                futures.append(svc.submit(StreamSubmit(
                    "ward", "late", (AddLeaf(20, "visit", nid=77),))))
                return list(await asyncio.gather(*futures))

        replies = run(main())
        assert all(not isinstance(r, ErrorResponse) for r in replies), \
            [r.to_dict() for r in replies if isinstance(r, ErrorResponse)]
        assert replies[-1].decisions[0].accepted

    def test_sequence_numbers_are_monotone_per_document(self):
        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("policy", POLICY)
                await svc.register_document("ward", ward())
                futures = [svc.enforce("ward", "policy",
                                       [AddLeaf(20, "visit", nid=40 + i)])
                           for i in range(4)]
                replies = await asyncio.gather(*futures)
                return [r.decisions[0].seq for r in replies]

        assert run(main()) == [0, 1, 2, 3]


class TestLifecycleAndErrors:
    def test_error_responses_pass_through(self):
        async def main():
            async with AsyncService() as svc:
                return await svc.enforce("ghost", "nope", [AddLeaf(1, "x")])

        reply = run(main())
        assert isinstance(reply, ErrorResponse)
        assert reply.error == "ServiceError"

    def test_submit_after_close_raises(self):
        from repro.service import StreamSubmit

        async def main():
            svc = AsyncService()
            await svc.register_constraints("policy", POLICY)
            await svc.close()
            with pytest.raises(ServiceError):
                svc.submit(StreamSubmit("ward", "policy",
                                        (AddLeaf(20, "visit"),)))

        run(main())

    def test_apply_returns_one_decision(self):
        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("policy", POLICY)
                await svc.register_document("ward", ward())
                return await svc.apply("ward", "policy", RemoveSubtree(21))

        decision = run(main())
        assert not decision.accepted and decision.violations

    def test_implies_convenience_returns_answers(self):
        from repro.constraints import no_insert

        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints(
                    "policy", [("/patient[/visit]", "down"),
                               ("/patient[/clinicalTrial]", "up"),
                               ("/patient[/clinicalTrial]", "down")])
                return await svc.implies(
                    "policy",
                    [no_insert("/patient[/visit][/clinicalTrial]")])

        reply = run(main())
        assert reply.answers == ("implied",)

    def test_enforce_returns_stream_decisions(self):
        async def main():
            async with AsyncService() as svc:
                await svc.register_constraints("policy", POLICY)
                await svc.register_document("ward", ward())
                return await svc.enforce("ward", "policy",
                                         [AddLeaf(20, "visit")])

        assert isinstance(run(main()), StreamDecisions)

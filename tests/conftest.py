"""Shared fixtures: the paper's running instances and seeded randomness."""

from __future__ import annotations

import random

import pytest

from repro.constraints import constraint_set
from repro.trees import branch, build


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def figure2_instances():
    """The (I, J) pair of Figure 2 / Example 2.1.

    I: patient(visit n7, clinicalTrial), patient(visit)
    J: same but the visit n7 has been deleted.
    The ids below are pinned so tests can refer to the paper's n7.
    """
    before = build(
        branch("patient",
               branch("visit", nid=700107),
               branch("clinicalTrial", nid=700108),
               nid=700101),
        branch("patient", branch("visit", nid=700109), nid=700102),
    )
    after = before.copy()
    after.remove_subtree(700107)
    return before, after


@pytest.fixture
def example21_constraints():
    """c1, c2 (immutability pair), c3 of Example 2.1."""
    return constraint_set(
        ("/patient[/visit]", "down"),
        ("/patient[/clinicalTrial]", "up"),
        ("/patient[/clinicalTrial]", "down"),
        ("/patient/visit", "up"),
    )

"""Word automata: compilation of linear patterns, DFA algebra, vectors."""

import pytest

from repro.automata import (
    engine_alphabet,
    intersection_nonempty,
    linear_to_dfa,
    linear_to_nfa,
    product_dfa,
    reachable_vectors,
)
from repro.errors import FragmentError
from repro.trees import parse_tree
from repro.xpath import evaluate_ids, parse


ALPHABET = ("a", "b", "c", "z")


class TestCompilation:
    @pytest.mark.parametrize("text,word,accept", [
        ("/a", ("a",), True),
        ("/a", ("b",), False),
        ("/a/b", ("a", "b"), True),
        ("/a/b", ("a", "z", "b"), False),
        ("/a//b", ("a", "b"), True),
        ("/a//b", ("a", "z", "z", "b"), True),
        ("//b", ("b",), True),
        ("//b", ("z", "b"), True),
        ("//b", ("b", "z"), False),
        ("/*", ("c",), True),
        ("/*/b", ("z", "b"), True),
        ("/a/*//c", ("a", "z", "c"), True),
        ("/a/*//c", ("a", "c"), False),
    ])
    def test_word_semantics(self, text, word, accept):
        dfa = linear_to_dfa(parse(text), ALPHABET)
        assert dfa.accepts(word) is accept
        assert linear_to_nfa(parse(text), ALPHABET).accepts(word) is accept

    def test_rejects_predicates(self):
        with pytest.raises(FragmentError):
            linear_to_nfa(parse("/a[/b]"), ALPHABET)

    def test_empty_word_never_accepted(self):
        for text in ("/a", "//a", "/*"):
            assert not linear_to_dfa(parse(text), ALPHABET).accepts(())

    def test_engine_alphabet(self):
        alphabet = engine_alphabet([parse("/a//b")], extra=["q"])
        assert set(alphabet) == {"a", "b", "q", "z"}

    def test_agreement_with_tree_evaluation(self):
        """A node is selected iff its word is accepted (linear fragment)."""
        tree = parse_tree("a(b(c), z(b)), b")
        for text in ("/a/b", "//b", "/a//c", "/*/b", "//*"):
            pattern = parse(text)
            dfa = linear_to_dfa(pattern, ALPHABET)
            selected = evaluate_ids(pattern, tree)
            for nid in tree.node_ids():
                if nid == tree.root:
                    continue
                assert dfa.accepts(tree.path_labels(nid)) == (nid in selected), (
                    text, tree.path_labels(nid))


class TestDfaAlgebra:
    def test_complement(self):
        dfa = linear_to_dfa(parse("/a/b"), ALPHABET)
        comp = dfa.complement()
        assert not comp.accepts(("a", "b"))
        assert comp.accepts(("a",))
        assert comp.accepts(())

    def test_shortest_accepted(self):
        dfa = linear_to_dfa(parse("/a//b"), ALPHABET)
        assert dfa.shortest_accepted() == ("a", "b")

    def test_emptiness(self):
        dfa = linear_to_dfa(parse("/a"), ALPHABET)
        both = product_dfa([dfa, linear_to_dfa(parse("/b"), ALPHABET)])[0]
        assert both.is_empty()

    def test_intersection_witness(self):
        word = intersection_nonempty([
            linear_to_dfa(parse("//a//c"), ALPHABET),
            linear_to_dfa(parse("//b//c"), ALPHABET),
        ])
        assert word is not None
        assert linear_to_dfa(parse("//a//c"), ALPHABET).accepts(word)
        assert linear_to_dfa(parse("//b//c"), ALPHABET).accepts(word)

    def test_product_vectors(self):
        dfas = [linear_to_dfa(parse(t), ALPHABET) for t in ("//a", "//b")]
        _, vectors = product_dfa(dfas)
        assert frozenset() in vectors

    def test_reachable_vectors_exactness(self):
        dfas = [linear_to_dfa(parse(t), ALPHABET) for t in ("//b", "/a/b")]
        vectors = reachable_vectors(dfas)
        # (a, b) hits both; (b,) hits only //b; (a,) hits neither.
        assert frozenset({0, 1}) in vectors
        assert frozenset({0}) in vectors
        assert frozenset() in vectors
        # /a/b without //b is impossible.
        assert frozenset({1}) not in vectors
        for vector, word in vectors.items():
            for i, dfa in enumerate(dfas):
                assert dfa.accepts(word) == (i in vector)

"""Encoding update-constraint problems into DTDs + regular keys.

This is the machinery of Example 3.1 and the linear-path part of the proof
of Theorem 4.2: an update pair ``(I, J)`` (optionally with a witness node)
becomes a single document with branches ``I``, ``J`` and ``witness``; node
identity becomes the ``@id`` attribute; and

* two *keys* state that no identifier repeats within a branch,
* each no-remove constraint ``(q, ↑)`` becomes the unary foreign key
  ``root.I.reg(q).@id ⊆ root.J.reg(q).@id`` (no-insert mirrored),
* the witness constraints pin a node violating the conclusion.

``encode_pair`` + ``pair_satisfies_encoding`` realise the equivalence the
paper states: *(I, J) is valid for C iff the encoded document satisfies the
encoded constraints* — the test-suite checks it on random pairs.

For ranges with predicates the proof's *annotated labels* are needed; the
functions :func:`pattern_closure` and :func:`consistent_annotations`
implement that machinery (the set ``P`` of sub-patterns and the consistency
filter over annotations), exposing the exponential blow-up that drives the
NEXPTIME upper bound — benchmarked in ``benchmarks/bench_keys.py``.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.keys.regex import AnyOf, Regex, Star, seq, sym
from repro.keys.regular import (
    AttributedTree,
    RegularInclusion,
    RegularKey,
    check_all,
)
from repro.trees.ops import collect_labels, fresh_label_for
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred, Step
from repro.xpath.containment import contained
from repro.xpath.properties import is_linear, labels_of


# ----------------------------------------------------------------------
# reg(q): linear patterns to path regexes (proof of Theorem 4.2, step 1)
# ----------------------------------------------------------------------
def reg(pattern: Pattern) -> Regex:
    """The paper's ``reg(q)``: '/'->concatenation, '*'->any, '//'->gap."""
    if not is_linear(pattern):
        raise FragmentError("reg(q) is defined for linear paths; predicates "
                            "need the annotated-label construction")
    parts: list[Regex] = []
    for step in pattern.steps:
        if step.axis is Axis.DESC:
            parts.append(Star(AnyOf()))
        parts.append(AnyOf() if step.label is None else sym(step.label))
    return seq(*parts)


def branch_path(branch: str, pattern: Pattern) -> Regex:
    """``root.<branch>.reg(q)`` — paths are rooted under a branch marker."""
    return seq(sym(branch), reg(pattern))


# ----------------------------------------------------------------------
# The φ transformation and the constraint emission
# ----------------------------------------------------------------------
def encode_pair(before: DataTree, after: DataTree,
                witness: int | None = None) -> AttributedTree:
    """``φ(I, J, n)``: one document with I / J / witness branches.

    Original node identifiers become ``@id`` values; the document's own
    node ids are fresh.
    """
    from repro.trees.ops import copy_subtree

    doc = DataTree("doc")
    id_attr: dict[int, int] = {}
    for branch_label, source in (("I", before), ("J", after)):
        anchor = doc.add_child(doc.root, branch_label)
        for top in source.children(source.root):
            mapping = copy_subtree(source, top, doc, anchor, fresh=True)
            for original, copied in mapping.items():
                id_attr[copied] = original
    if witness is not None:
        w_anchor = doc.add_child(doc.root, "witness")
        marker = doc.add_child(w_anchor, "Id")
        id_attr[marker] = witness
    return AttributedTree(doc, id_attr)


def encoding_alphabet(premises: ConstraintSet, conclusion: UpdateConstraint,
                      *trees: DataTree) -> tuple[str, ...]:
    labels = labels_of(conclusion.range, *premises.ranges)
    labels |= collect_labels(*trees)
    labels.add(fresh_label_for(labels))
    return tuple(sorted(labels | {"I", "J", "witness", "Id"}))


def encode_constraints(premises: ConstraintSet, conclusion: UpdateConstraint | None,
                       ) -> list[RegularKey | RegularInclusion]:
    """The regular constraint set Σ of the proof (keys 4-5, inclusions 6-7,
    witness constraints 8-9 when a conclusion is supplied)."""
    in_branch = seq(sym("I"), AnyOf(), Star(AnyOf()))
    in_branch_j = seq(sym("J"), AnyOf(), Star(AnyOf()))
    constraints: list[RegularKey | RegularInclusion] = [
        RegularKey("key-I", in_branch),
        RegularKey("key-J", in_branch_j),
    ]
    for i, constraint in enumerate(premises):
        if constraint.type is ConstraintType.NO_REMOVE:
            constraints.append(RegularInclusion(
                f"up-{i}", branch_path("I", constraint.range),
                branch_path("J", constraint.range)))
        else:
            constraints.append(RegularInclusion(
                f"down-{i}", branch_path("J", constraint.range),
                branch_path("I", constraint.range)))
    if conclusion is not None:
        source_branch = "I" if conclusion.type is ConstraintType.NO_REMOVE else "J"
        other_branch = "J" if source_branch == "I" else "I"
        constraints.append(RegularInclusion(
            "witness-in-range",
            seq(sym("witness"), sym("Id")),
            branch_path(source_branch, conclusion.range)))
        # The witness id must be *absent* from the other branch's range —
        # expressed in the paper as a key over the union of the two paths.
        constraints.append(_WitnessExclusion(
            "witness-escapes", branch_path(other_branch, conclusion.range)))
    return constraints


class _WitnessExclusion(RegularInclusion):
    """Constraint (9): witness id and the opposite range share no id.

    The paper states it as a key over ``witness | J.reg(q)``; checking it
    directly is clearer: no id on the excluded path equals the witness id.
    """

    def __init__(self, name: str, excluded: Regex):
        super().__init__(name, seq(sym("witness"), sym("Id")), excluded)

    def violations(self, doc: AttributedTree, alphabet: tuple[str, ...]) -> list[str]:
        witness_values = set(doc.id_values(self.source, alphabet))
        clashing = witness_values & set(doc.id_values(self.target, alphabet))
        return [f"{self.name}: witness @id={v} also lies in the excluded range"
                for v in sorted(clashing)]


def pair_satisfies_encoding(premises: ConstraintSet, before: DataTree,
                            after: DataTree) -> bool:
    """Does the encoded φ-document satisfy the encoded premise constraints?

    Equivalent to ``(I, J) ⊨ C`` for linear premises (Example 3.1's claim).
    """
    doc = encode_pair(before, after)
    alphabet = tuple(sorted(
        {"I", "J", "witness", "Id"} | collect_labels(before, after)
        | labels_of(*premises.ranges)
    ))
    return not check_all(doc, alphabet, encode_constraints(premises, None))


# ----------------------------------------------------------------------
# Annotated labels (proof of Theorem 4.2, predicate case)
# ----------------------------------------------------------------------
def pattern_closure(patterns: Iterable[Pattern], labels: Sequence[str]
                    ) -> list[Pred]:
    """The set ``P`` of Section 4.2: all boolean sub-patterns plus derived ones.

    For each sub-path starting with an edge we include it as a boolean
    pattern; descendant-rooted patterns additionally spawn their child-
    rooted versions and one ``/l//rest`` version per label; wildcard-rooted
    child patterns spawn one ``/l rest`` version per label.
    """
    found: set[Pred] = set()

    def visit(pred: Pred) -> None:
        if pred in found:
            return
        found.add(pred)
        if pred.axis is Axis.DESC:
            visit(Pred(Axis.CHILD, pred.label, pred.children))
            for label in labels:
                visit(Pred(Axis.CHILD, label, (Pred(Axis.DESC, pred.label,
                                                    pred.children),)))
        if pred.axis is Axis.CHILD and pred.label is None:
            for label in labels:
                visit(Pred(Axis.CHILD, label, pred.children))
        for child in pred.children:
            visit(child)

    for pattern in patterns:
        boolean = pattern.as_boolean()
        # every suffix of the spine is a sub-pattern anchored one level up
        current = boolean
        while True:
            visit(current)
            spine_children = [c for c in current.children]
            if not spine_children:
                break
            # descend along the first child chain (the spine continuation)
            current = spine_children[-1]
    return sorted(found, key=lambda p: p.sort_key())


def _conjunction_pattern(preds: Sequence[Pred], anchor: str) -> Pattern:
    return Pattern((Step(Axis.CHILD, anchor, tuple(preds)),))


def annotation_is_consistent(included: Sequence[Pred], universe: Sequence[Pred],
                             anchor: str = "anchorlbl") -> bool:
    """Is an annotation consistent (no excluded pattern is implied)?

    ``m`` is consistent when for every ``p ∈ P - m`` the conjunction of the
    included patterns does not imply ``p`` — decided by exact containment
    on the anchored patterns.
    """
    if not included:
        return True
    base = _conjunction_pattern(included, anchor)
    for pred in universe:
        if pred in included:
            continue
        if contained(base, _conjunction_pattern([pred], anchor)):
            return False
    return True


def consistent_annotations(universe: Sequence[Pred], limit: int | None = None,
                           max_size: int | None = None) -> list[tuple[Pred, ...]]:
    """Enumerate consistent annotations over ``P`` (budgeted).

    The count is exponential in ``|P|`` — exactly the blow-up behind the
    NEXPTIME upper bound; the benchmark measures its growth.
    """
    results: list[tuple[Pred, ...]] = []
    sizes = range(0, (max_size if max_size is not None else len(universe)) + 1)
    for size in sizes:
        for subset in combinations(universe, size):
            if annotation_is_consistent(subset, universe):
                results.append(subset)
                if limit is not None and len(results) >= limit:
                    return results
    return results

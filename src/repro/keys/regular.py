"""Unary regular key and foreign key constraints (Section 3.2).

Following [Arenas-Fan-Libkin] as the paper uses them: a *key*
``β.@id → β`` states that no two distinct nodes on a path matching the
regular expression ``β`` share an ``id`` value; a *foreign key* (inclusion)
``β1.@id ⊆ β2.@id`` states that every ``id`` value found on ``β1`` also
occurs on ``β2``.

The paper encodes node identity as an ``@id`` attribute; here an
:class:`AttributedTree` carries the attribute map explicitly, because the
encoded document intentionally repeats identifier *values* across its ``I``
and ``J`` branches while our :class:`DataTree` node ids stay unique.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.keys.regex import Regex
from repro.trees.index import TreeIndex
from repro.trees.tree import DataTree


@dataclass
class AttributedTree:
    """A data tree plus an ``@id`` attribute valuation."""

    tree: DataTree
    id_attr: dict[int, int] = field(default_factory=dict)
    _index: TreeIndex | None = field(default=None, repr=False, compare=False)

    def _snapshot(self) -> TreeIndex:
        """A fresh :class:`TreeIndex` of the tree, rebuilt on mutation.

        Its path-label arrays memoise shared prefixes, so matching every
        node's word is O(n) label lookups instead of one root-to-node walk
        per node.
        """
        if self._index is None or not self._index.covers(self.tree):
            self._index = TreeIndex(self.tree)
        return self._index

    def nodes_matching(self, path: Regex, alphabet: tuple[str, ...]) -> list[int]:
        """Nodes whose root-to-node label word matches ``path``."""
        dfa = path.to_dfa(alphabet)
        index = self._snapshot()
        return [nid for nid in index.node_ids()
                if nid != index.root and dfa.accepts(index.path_labels(nid))]

    def id_values(self, path: Regex, alphabet: tuple[str, ...]) -> list[int]:
        return [self.id_attr[n] for n in self.nodes_matching(path, alphabet)
                if n in self.id_attr]


@dataclass(frozen=True)
class RegularKey:
    """``path.@id → path``: the id attribute is a key on the path."""

    name: str
    path: Regex

    def violations(self, doc: AttributedTree, alphabet: tuple[str, ...]) -> list[str]:
        seen: dict[int, int] = {}
        problems: list[str] = []
        for nid in doc.nodes_matching(self.path, alphabet):
            value = doc.id_attr.get(nid)
            if value is None:
                problems.append(f"{self.name}: node {nid} lacks an @id")
                continue
            if value in seen and seen[value] != nid:
                problems.append(
                    f"{self.name}: nodes {seen[value]} and {nid} share @id={value}"
                )
            seen.setdefault(value, nid)
        return problems


@dataclass(frozen=True)
class RegularInclusion:
    """``source.@id ⊆ target.@id``: a unary foreign key."""

    name: str
    source: Regex
    target: Regex

    def violations(self, doc: AttributedTree, alphabet: tuple[str, ...]) -> list[str]:
        target_values = set(doc.id_values(self.target, alphabet))
        problems = []
        for value in doc.id_values(self.source, alphabet):
            if value not in target_values:
                problems.append(f"{self.name}: @id={value} missing from the target path")
        return problems


def check_all(doc: AttributedTree, alphabet: tuple[str, ...],
              constraints: list[RegularKey | RegularInclusion]) -> list[str]:
    """All violations across a constraint collection."""
    problems: list[str] = []
    for constraint in constraints:
        problems.extend(constraint.violations(doc, alphabet))
    return problems

"""Document Type Definitions over label alphabets.

A DTD maps each element type to a content model — a regular expression over
element types that the sequence of a node's children must match (the paper
treats documents as unordered, and all DTDs it builds use order-insensitive
models of the shape ``(l1 | ... | lk)*``, so the insertion order of our
trees is an innocuous proxy for a linearisation).

Used by the Section 3.2 / Theorem 4.2 encoding of update-constraint
implication into consistency of DTDs with unary regular key constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.keys.regex import Regex, star, any_of
from repro.trees.tree import DataTree


@dataclass
class DTD:
    """Element types with content models; ``root_type`` anchors conformance."""

    root_type: str
    productions: dict[str, Regex] = field(default_factory=dict)
    alphabet: tuple[str, ...] = ()

    def define(self, label: str, model: Regex) -> "DTD":
        self.productions[label] = model
        return self

    def _resolved_alphabet(self) -> tuple[str, ...]:
        if self.alphabet:
            return self.alphabet
        return tuple(sorted(self.productions))

    def check(self, tree: DataTree) -> list[str]:
        """All conformance violations (empty list = the tree conforms)."""
        problems: list[str] = []
        alphabet = self._resolved_alphabet()
        if tree.label(tree.root) != self.root_type:
            problems.append(
                f"root has type {tree.label(tree.root)!r}, expected {self.root_type!r}"
            )
        for nid in tree.node_ids():
            label = tree.label(nid)
            model = self.productions.get(label)
            if model is None:
                problems.append(f"no production for element type {label!r} (node {nid})")
                continue
            children = [tree.label(c) for c in tree.children(nid)]
            if any(c not in alphabet for c in children):
                unknown = [c for c in children if c not in alphabet]
                problems.append(f"node {nid}: child types {unknown} outside the DTD")
                continue
            if not model.matches(children, alphabet):
                problems.append(
                    f"node {nid} ({label}): children {children} violate the content model"
                )
        return problems

    def conforms(self, tree: DataTree) -> bool:
        return not self.check(tree)


def flat_star_dtd(root_type: str, element_types: list[str]) -> DTD:
    """The paper's workhorse DTD: every element allows ``(l1|...|lk)*``."""
    dtd = DTD(root_type, alphabet=tuple(sorted({root_type, *element_types})))
    model = star(any_of(*element_types))
    dtd.define(root_type, model)
    for label in element_types:
        dtd.define(label, model)
    return dtd

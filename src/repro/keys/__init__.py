"""DTDs + unary regular keys substrate (Section 3.2 / Theorem 4.2)."""

from repro.keys.dtd import DTD, flat_star_dtd
from repro.keys.encoding import (
    annotation_is_consistent,
    branch_path,
    consistent_annotations,
    encode_constraints,
    encode_pair,
    encoding_alphabet,
    pair_satisfies_encoding,
    pattern_closure,
    reg,
)
from repro.keys.regex import (
    AnyOf,
    Alt,
    Epsilon,
    Plus,
    Regex,
    Seq,
    Star,
    Sym,
    alt,
    any_of,
    plus,
    seq,
    star,
    sym,
)
from repro.keys.regular import (
    AttributedTree,
    RegularInclusion,
    RegularKey,
    check_all,
)

__all__ = [
    "DTD",
    "flat_star_dtd",
    "Regex", "Sym", "AnyOf", "Seq", "Alt", "Star", "Plus", "Epsilon",
    "sym", "any_of", "seq", "alt", "star", "plus",
    "AttributedTree",
    "RegularKey",
    "RegularInclusion",
    "check_all",
    "reg",
    "branch_path",
    "encode_pair",
    "encode_constraints",
    "encoding_alphabet",
    "pair_satisfies_encoding",
    "pattern_closure",
    "annotation_is_consistent",
    "consistent_annotations",
]

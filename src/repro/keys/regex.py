"""A small regular-expression AST over label alphabets.

DTD content models and the paths of regular key constraints (Section 3.2,
following [Arenas-Fan-Libkin]) are regular expressions over element types.
This module provides the AST, a Thompson construction with epsilon edges
and an epsilon-aware subset construction producing the library's complete
DFAs.  Constructors mirror the paper's notation: ``(l1|...|lk)*`` chains,
concatenation with ``.``, the wildcard ``_``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence

from repro.automata.dfa import DFA


class Regex:
    """Base class; build with the module-level constructors."""

    def to_dfa(self, alphabet: Sequence[str]) -> DFA:
        return _regex_dfa(self, tuple(alphabet))

    def matches(self, word: Sequence[str], alphabet: Sequence[str]) -> bool:
        return self.to_dfa(tuple(alphabet)).accepts(word)


@dataclass(frozen=True)
class Epsilon(Regex):
    pass


@dataclass(frozen=True)
class Sym(Regex):
    label: str


@dataclass(frozen=True)
class AnyOf(Regex):
    """One symbol drawn from a set; the empty set means the whole alphabet
    (the paper's wildcard ``_``)."""

    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class Seq(Regex):
    parts: tuple[Regex, ...]


@dataclass(frozen=True)
class Alt(Regex):
    options: tuple[Regex, ...]


@dataclass(frozen=True)
class Star(Regex):
    inner: Regex


@dataclass(frozen=True)
class Plus(Regex):
    inner: Regex


def seq(*parts: Regex) -> Regex:
    return parts[0] if len(parts) == 1 else Seq(tuple(parts))


def alt(*options: Regex) -> Regex:
    return options[0] if len(options) == 1 else Alt(tuple(options))


def star(inner: Regex) -> Regex:
    return Star(inner)


def plus(inner: Regex) -> Regex:
    return Plus(inner)


def sym(label: str) -> Regex:
    return Sym(label)


def any_of(*labels: str) -> Regex:
    return AnyOf(tuple(labels))


class _Thompson:
    """Classical Thompson construction: one entry, one exit per fragment."""

    def __init__(self, alphabet: tuple[str, ...]):
        self.alphabet = alphabet
        self.count = 0
        self.edges: dict[tuple[int, str | None], set[int]] = {}

    def state(self) -> int:
        self.count += 1
        return self.count - 1

    def edge(self, src: int, label: str | None, dst: int) -> None:
        self.edges.setdefault((src, label), set()).add(dst)

    def build(self, regex: Regex) -> tuple[int, int]:
        if isinstance(regex, Epsilon):
            s, t = self.state(), self.state()
            self.edge(s, None, t)
            return s, t
        if isinstance(regex, Sym):
            s, t = self.state(), self.state()
            self.edge(s, regex.label, t)
            return s, t
        if isinstance(regex, AnyOf):
            s, t = self.state(), self.state()
            for label in (regex.labels or self.alphabet):
                if label in self.alphabet:
                    self.edge(s, label, t)
            return s, t
        if isinstance(regex, Seq):
            if not regex.parts:
                return self.build(Epsilon())
            first_s, last_t = None, None
            for part in regex.parts:
                s, t = self.build(part)
                if first_s is None:
                    first_s = s
                else:
                    self.edge(last_t, None, s)
                last_t = t
            assert first_s is not None and last_t is not None
            return first_s, last_t
        if isinstance(regex, Alt):
            s, t = self.state(), self.state()
            for option in regex.options:
                os, ot = self.build(option)
                self.edge(s, None, os)
                self.edge(ot, None, t)
            return s, t
        if isinstance(regex, Star):
            s, t = self.state(), self.state()
            inner_s, inner_t = self.build(regex.inner)
            self.edge(s, None, inner_s)
            self.edge(s, None, t)
            self.edge(inner_t, None, inner_s)
            self.edge(inner_t, None, t)
            return s, t
        if isinstance(regex, Plus):
            return self.build(Seq((regex.inner, Star(regex.inner))))
        raise TypeError(f"unknown regex node {regex!r}")

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        result = set(states)
        queue = deque(states)
        while queue:
            state = queue.popleft()
            for nxt in self.edges.get((state, None), ()):
                if nxt not in result:
                    result.add(nxt)
                    queue.append(nxt)
        return frozenset(result)

    def step(self, states: frozenset[int], symbol: str) -> frozenset[int]:
        moved: set[int] = set()
        for state in states:
            moved.update(self.edges.get((state, symbol), ()))
        return self.closure(frozenset(moved))


@lru_cache(maxsize=2048)
def _regex_dfa(regex: Regex, alphabet: tuple[str, ...]) -> DFA:
    nfa = _Thompson(alphabet)
    start, accept = nfa.build(regex)
    start_key = nfa.closure(frozenset({start}))
    index: dict[frozenset[int], int] = {start_key: 0}
    order = [start_key]
    transitions: list[dict[str, int]] = []
    queue = deque([start_key])
    while queue:
        key = queue.popleft()
        row: dict[str, int] = {}
        for symbol in alphabet:
            nxt = nfa.step(key, symbol)
            if nxt not in index:
                index[nxt] = len(order)
                order.append(nxt)
                queue.append(nxt)
            row[symbol] = index[nxt]
        transitions.append(row)
    accepting = [i for i, key in enumerate(order) if accept in key]
    return DFA(alphabet, 0, transitions, accepting)

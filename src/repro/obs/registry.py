"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the one observability primitive every layer
of the stack shares — dependency-free, cheap enough for the enforcement
hot loop, and safe to touch from threads and asyncio tasks alike (one
lock guards instrument creation; each instrument carries its own lock for
updates, and the GIL-visible critical sections are a handful of opcodes).

Instruments are keyed by ``(name, sorted labels)`` and created on first
touch, so call sites just say ``registry.counter("stream.ops_total")``
and hold the returned object — resolution cost is paid once, update cost
is one method call.  Naming follows ``<subsystem>.<noun>_<unit>``
(see CONTRIBUTING): dots group by subsystem in the dict form and are
flattened to underscores in the Prometheus-style text exposition
(:meth:`MetricsRegistry.render`).

Three instrument kinds:

* :class:`Counter` — monotone; ``inc(n)``;
* :class:`Gauge` — a level; ``set``/``inc``/``dec``;
* :class:`Histogram` — fixed upper-bound buckets with Prometheus ``le``
  semantics (a value equal to a bound lands in that bound's bucket) plus
  an overflow (``+Inf``) bucket, a count and a sum.

``MetricsRegistry(enabled=False)`` (the module's :data:`NULL`) hands out
shared no-op instruments, so instrumented code can be benchmarked against
a disabled registry without branching at every call site — the
``bench_obs`` gate holds the difference at ≤5% on the enforcement
workload.

The process-global default lives behind :func:`registry` /
:func:`set_registry`; components accept a ``metrics=`` override but
default to the global one, which is what the server's
``MetricsRequest`` endpoint snapshots.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterator

#: Default histogram bounds: latency-shaped, 100µs .. 10s (seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Count-shaped bounds for "how many per batch" histograms.
COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def flat_name(name: str, labels: _LabelKey) -> str:
    """``name{k="v",...}`` — the flat key of the dict and text forms."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({flat_name(self.name, self.labels)}={self._value})"


class Gauge:
    """A level that can move both ways (inflight requests, queue depth)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({flat_name(self.name, self.labels)}={self._value})"


class Histogram:
    """Fixed upper-bound buckets, Prometheus ``le`` semantics.

    ``bounds`` are inclusive upper bounds in increasing order; a value
    exactly on a bound counts into that bound's bucket, values past the
    last bound land in the overflow (``+Inf``) bucket.  Per-bucket counts
    are stored raw and cumulated only on export.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_lock", "_counts",
                 "_count", "_sum")

    def __init__(self, name: str, labels: _LabelKey,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must strictly increase: "
                             f"{bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left: the first bound >= value, i.e. value == bound
        # falls *into* that bound's bucket (le is inclusive).
        at = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[at] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Raw per-bucket counts, overflow last (non-cumulative)."""
        return tuple(self._counts)

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, ``"+Inf"`` last."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((repr(bound), running))
        out.append(("+Inf", self._count))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({flat_name(self.name, self.labels)}: "
                f"count={self._count}, sum={self._sum:.6f})")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """All instruments of one process (or one component under test).

    ``enabled=False`` turns every accessor into a shared no-op
    instrument — same types, no state, no locking — so instrumentation
    can be switched off wholesale (the overhead benchmark's baseline).
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, _LabelKey], Instrument] = {}
        self._null_counter = _NullCounter("", ())
        self._null_gauge = _NullGauge("", ())
        self._null_histogram = _NullHistogram("", ())

    # ------------------------------------------------------------------
    # Instrument accessors (create on first touch)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return self._null_counter
        instrument = self._resolve(name, labels, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        instrument = self._resolve(name, labels, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None,
                  **labels: object) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is None:
                existing = self._instruments[key] = Histogram(
                    name, key[1], buckets if buckets is not None
                    else DEFAULT_BUCKETS)
            elif not isinstance(existing, Histogram):
                raise ValueError(f"metric {name!r} is already registered "
                                 f"as a {existing.kind}")
            elif buckets is not None and existing.bounds != tuple(
                    float(b) for b in buckets):
                raise ValueError(f"histogram {name!r} is already registered "
                                 f"with bounds {existing.bounds!r}")
        return existing

    def _resolve(self, name: str, labels: dict[str, object],
                 cls: type[Counter] | type[Gauge]) -> Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is None:
                existing = self._instruments[key] = cls(name, key[1])
            elif not isinstance(existing, cls):
                raise ValueError(f"metric {name!r} is already registered "
                                 f"as a {existing.kind}")
        return existing

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Instrument]:
        with self._lock:
            return iter(sorted(self._instruments.values(),
                               key=lambda i: (i.name, i.labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def to_dict(self) -> dict:
        """JSON-safe snapshot: flat keys, one section per instrument kind."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in self:
            key = flat_name(instrument.name, instrument.labels)
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                histograms[key] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": [[le, n] for le, n in instrument.cumulative()],
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def render(self) -> str:
        """Prometheus-style text exposition (dots become underscores)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for instrument in self:
            name = instrument.name.replace(".", "_")
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for le, count in instrument.cumulative():
                    labels = instrument.labels + (("le", le),)
                    lines.append(f"{flat_name(name + '_bucket', labels)} "
                                 f"{count}")
                lines.append(f"{flat_name(name + '_sum', instrument.labels)} "
                             f"{instrument.sum}")
                lines.append(
                    f"{flat_name(name + '_count', instrument.labels)} "
                    f"{instrument.count}")
            else:
                lines.append(f"{flat_name(name, instrument.labels)} "
                             f"{instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Merge / reset
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (shard/worker aggregation).

        Counters and histograms add; gauges take ``other``'s value (the
        newer level wins).  Histograms must agree on bucket bounds.
        """
        for instrument in other:
            labels = dict(instrument.labels)
            if isinstance(instrument, Counter):
                self.counter(instrument.name, **labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(instrument.name, **labels).set(instrument.value)
            else:
                mine = self.histogram(instrument.name,
                                      buckets=instrument.bounds, **labels)
                with mine._lock:
                    for at, count in enumerate(instrument.bucket_counts):
                        mine._counts[at] += count
                    mine._count += instrument.count
                    mine._sum += instrument.sum

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._instruments.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._instruments)} instruments, {state})"


#: The process-global default registry: what components instrument into
#: unless handed an explicit ``metrics=``, and what the server's
#: ``MetricsRequest`` endpoint snapshots.
_GLOBAL = MetricsRegistry()

#: A shared disabled registry: pass as ``metrics=NULL`` to switch a
#: component's instrumentation off entirely.
NULL = MetricsRegistry(enabled=False)


def registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = new
    return previous


__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_BUCKETS", "COUNT_BUCKETS", "NULL",
    "registry", "set_registry", "flat_name",
]

"""Lightweight timing spans and per-request trace ids.

A span is a timed block recorded into a histogram named
``<name>_seconds`` (so ``obs.span("journal.fsync")`` feeds
``journal.fsync_seconds`` — the naming convention does the aggregation):

>>> from repro.obs import MetricsRegistry, span
>>> reg = MetricsRegistry()
>>> with span("journal.fsync", registry=reg) as s:
...     pass
>>> reg.histogram("journal.fsync_seconds").count
1

Trace ids ride a :data:`contextvars.ContextVar`, so whatever id the
server installs for a request (:func:`tracing`) is visible to every span
taken while serving it — across ``await`` boundaries, without threading
an argument through the stack.  The wire envelope carries the id as an
optional ``"trace"`` key: the client stamps one per request
(:func:`new_trace_id` when the caller supplies none), the server installs
it around execution and echoes it on the response envelope — error
responses included — so a client can correlate any answer, refusal or
timeout with the request that caused it.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

from repro.obs.registry import MetricsRegistry, registry as _default_registry

_TRACE: ContextVar[str | None] = ContextVar("repro_trace_id", default=None)


def trace_id() -> str | None:
    """The trace id of the current context, if one is installed."""
    return _TRACE.get()


def new_trace_id() -> str:
    """A fresh, process-unique trace id (``t-`` + 12 hex chars)."""
    return "t-" + uuid.uuid4().hex[:12]


@contextmanager
def tracing(trace: str | None) -> Iterator[str | None]:
    """Install ``trace`` as the current trace id for the block.

    ``None`` is installed as-is (clearing any inherited id), so the
    server can scope each request to exactly the id its envelope carried.
    """
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


@dataclass
class Span:
    """One timed block: its name, the trace it ran under, its duration."""

    name: str
    trace: str | None = None
    seconds: float = 0.0
    _started: float = field(default=0.0, repr=False)


@contextmanager
def span(name: str, registry: MetricsRegistry | None = None,
         **labels: object) -> Iterator[Span]:
    """Time a block into the histogram ``<name>_seconds``.

    The yielded :class:`Span` carries the current trace id and, after
    the block, the measured duration — callers that want the number
    (a periodic dump, a log line) read ``s.seconds``.
    """
    reg = registry if registry is not None else _default_registry()
    out = Span(name=name, trace=_TRACE.get())
    out._started = perf_counter()
    try:
        yield out
    finally:
        out.seconds = perf_counter() - out._started
        reg.histogram(name + "_seconds", **labels).observe(out.seconds)


__all__ = ["Span", "span", "trace_id", "new_trace_id", "tracing"]

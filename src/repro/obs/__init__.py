"""repro.obs — dependency-free observability for the whole stack.

One process-local :class:`MetricsRegistry` (counters, gauges,
fixed-bucket histograms; ``to_dict()`` + Prometheus-style ``render()``),
a :func:`span` timing API feeding ``<name>_seconds`` histograms, and
per-request trace ids on a context variable (:func:`tracing`) that the
socket envelope propagates end to end.

Every subsystem instruments into the global default (:func:`registry`)
unless handed an explicit ``metrics=`` registry; the durable server
serves the global registry's snapshot through the ``MetricsRequest``
wire kind (``ReproClient.metrics()``), even while overloaded or
draining.  Pass :data:`NULL` to disable a component's instrumentation
outright — the ``bench_obs`` CI gate holds instrumented-vs-disabled
enforcement overhead at ≤5%.
"""

from repro.obs.registry import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flat_name,
    registry,
    set_registry,
)
from repro.obs.span import Span, new_trace_id, span, trace_id, tracing

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_BUCKETS", "COUNT_BUCKETS", "NULL",
    "registry", "set_registry", "flat_name",
    "Span", "span", "trace_id", "new_trace_id", "tracing",
]

"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes are deliberately
fine-grained: parsing problems, fragment violations (using a feature that a
restricted engine does not accept) and structural tree errors are distinct
failure modes with distinct recovery strategies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when an XPath expression or tree literal cannot be parsed.

    Attributes:
        text: the full input being parsed.
        position: offset at which parsing failed, when known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None and text:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class TreeError(ReproError):
    """Raised on invalid structural operations on a :class:`DataTree`."""


class FragmentError(ReproError):
    """Raised when a query lies outside the XPath fragment an engine supports.

    The decision procedures of the paper are fragment-specific (Table 1 and
    Table 2); engines validate their inputs and raise this error rather than
    silently producing unsound answers.
    """


class NotConcreteError(FragmentError):
    """Raised when a non-concrete path (wildcard output) reaches an engine
    that, following the paper's presentation, assumes concrete paths."""


class StreamError(ReproError):
    """Raised on protocol misuse of the online enforcement stream
    (:mod:`repro.stream`): nested ``begin``, ``commit``/``rollback``
    outside a transaction, or operations on a closed stream."""


class CertifyError(ReproError):
    """Raised on template-algebra misuse (:mod:`repro.certify`): malformed
    hole declarations, bindings outside a hole's declared domain, or a
    certified submission whose guard fails (nothing is applied)."""


class ServiceError(ReproError):
    """Raised on misuse of the multi-document constraint service
    (:mod:`repro.service`): unknown or duplicate document / constraint-set
    names, a document already enforced under a different policy, or a
    malformed wire-level request."""


class MaskBackendError(ReproError):
    """Raised when a mask backend (:mod:`repro.masks`) cannot be
    resolved: an unknown backend name, or ``numpy`` requested explicitly
    on an interpreter where numpy does not import."""


class ServerError(ReproError):
    """Raised on failures of the durable socket front end
    (:mod:`repro.server`): handshake/protocol-version mismatches, frames
    that exceed the wire limit, or submissions to a closed server."""


class JournalError(ServerError):
    """Raised when a durability journal cannot be written or replayed."""


class JournalCorruptError(JournalError):
    """Raised when recovery meets checksum-corrupt journal *history*.

    A torn tail (an interrupted final append) is expected after a crash
    and is silently truncated; a CRC mismatch on a complete record means
    the bytes on disk are not the bytes that were written — recovery
    refuses loudly rather than rebuild a silently wrong document.
    """

    def __init__(self, message: str, path: str = "", offset: int = 0):
        self.path = path
        self.offset = offset
        super().__init__(message)


class UnsupportedProblemError(ReproError):
    """Raised when no exact engine covers a problem instance and the caller
    asked for a definite answer (``require_decision=True``)."""

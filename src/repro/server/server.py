"""The durable socket front end: a length-prefixed wire over AsyncService.

A :class:`ReproServer` listens on a TCP socket and serves the whole
request protocol of :mod:`repro.service.protocol` over CRC-framed JSON
frames (:mod:`repro.server.framing`).  Each connection starts with a
one-frame handshake (``{"hello": {"protocol": N}}`` both ways; a version
mismatch is answered and the connection closed), then carries envelopes::

    {"id": 7, "body": {"request": "stream-submit", ...}}
    {"id": 7, "body": {"response": "decisions", ...}}

Envelope ids are chosen by the client and echoed back, so a client may
pipeline requests and match responses out of order — the server preserves
the per-document ordering of :class:`~repro.service.async_service.
AsyncService` (same-document requests resolve in submission order) while
different documents interleave freely.

Robustness contract, pinned by ``tests/server``:

* **per-request timeout** — a request that does not complete within
  ``request_timeout`` is answered with a typed
  :class:`~repro.service.protocol.ErrorResponse` (the work itself is
  shielded, not cancelled: a mutating submission must never be torn);
* **bounded backpressure** — at most ``max_inflight`` requests execute
  at once; excess requests are refused immediately with an
  ``ErrorResponse`` rather than queued without bound;
* **graceful shutdown** — :meth:`close` stops accepting, lets every
  in-flight request finish (draining the per-document queues), flushes
  the journal and only then closes the transports; :meth:`abort` is the
  opposite on purpose — it drops everything on the floor, simulating
  ``kill -9`` for the crash-recovery tests;
* **durability** — with a :class:`~repro.server.journal.ServerJournal`
  attached (:meth:`durable`), every acknowledged registration and
  stream submission is journaled and fsync'd *before* its response
  frame is written, so an acknowledged op survives any later crash and
  :meth:`durable` on the same directory reconverges on the exact
  pre-crash state.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from time import perf_counter

from repro.errors import ReproError, ServerError
from repro.obs import registry as _obs_registry, tracing
from repro.server.framing import read_frame, write_frame
from repro.server.journal import RecoveryReport, ServerJournal
from repro.service.async_service import AsyncService
from repro.service.executors import build_metrics_snapshot
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    request_from_dict,
)
from repro.service.service import ConstraintService
from repro.service.store import DocumentStore


class ReproServer:
    """One listening socket in front of an :class:`AsyncService`."""

    def __init__(self, service: AsyncService | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 journal: ServerJournal | None = None,
                 request_timeout: float | None = 30.0,
                 max_inflight: int = 256):
        self._service = service if service is not None else AsyncService()
        self._host = host
        self._port = port
        self._journal = journal
        self.request_timeout = request_timeout
        self.max_inflight = max(1, max_inflight)
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._requests: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._closing = False
        self.recovery: RecoveryReport | None = None
        self._overloads = 0  # monotone over this server's lifetime
        m = _obs_registry()
        self._metrics = m
        self._m_inflight = m.gauge("server.inflight_requests")
        self._m_connections = m.counter("server.connections_total")
        self._m_handshakes = m.counter("server.handshakes_total")
        self._m_handshake_failures = m.counter(
            "server.handshake_failures_total")
        self._m_frame_errors = m.counter("server.frame_errors_total")
        self._m_timeouts = m.counter("server.timeouts_total")
        self._m_overloads = m.counter("server.overload_total")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def durable(cls, journal_root: str | Path, *,
                fsync: bool = True, checkpoint_every: int = 256,
                faults=None, **kwargs) -> "ReproServer":
        """A server whose whole state lives under ``journal_root``.

        Recovers whatever a previous process left there (journals are
        replayed, checkpoints restored, torn tails truncated — see
        :meth:`~repro.server.journal.ServerJournal.recover`), attaches
        the journal for write-through, and reports what it found in
        :attr:`recovery`.
        """
        store = DocumentStore()
        journal = ServerJournal(journal_root, fsync=fsync,
                                checkpoint_every=checkpoint_every,
                                faults=faults)
        report = journal.recover(store)
        store.attach_journal(journal)
        service = AsyncService(ConstraintService(store=store))
        server = cls(service, journal=journal, **kwargs)
        server.recovery = report
        server._publish_recovery(report)
        return server

    def _publish_recovery(self, report: RecoveryReport) -> None:
        """Mirror the last :class:`RecoveryReport` as ``recovery.*`` gauges."""
        m = self._metrics
        m.gauge("recovery.documents").set(len(report.documents))
        m.gauge("recovery.constraint_sets").set(len(report.constraint_sets))
        m.gauge("recovery.records_replayed").set(report.records_replayed)
        m.gauge("recovery.decisions_replayed").set(report.decisions_replayed)
        m.gauge("recovery.checkpoints_used").set(len(report.checkpoints_used))
        m.gauge("recovery.torn_tails").set(len(report.torn_tails))

    @property
    def service(self) -> AsyncService:
        return self._service

    @property
    def journal(self) -> ServerJournal | None:
        return self._journal

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (the OS picks the port when 0)."""
        if self._server is None:
            raise ServerError("the server is not listening (call start())")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def inflight(self) -> int:
        """Requests currently executing (the backpressure gauge)."""
        return self._inflight

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise ServerError("the server is already listening")
        self._closing = False
        self._server = await asyncio.start_server(
            self._on_connect, self._host, self._port)
        return self.address

    async def close(self) -> None:
        """Graceful shutdown: drain in-flight work, flush, then close.

        New connections are refused and connection readers stop, but
        every request already submitted runs to completion (its response
        is still written when the transport survives), the per-document
        queues drain, and the journal is flushed and closed — the
        on-disk state is clean, with no torn tail.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._requests:
            await asyncio.gather(*self._requests, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        await self._service.close()
        if self._journal is not None:
            self._journal.close()

    async def abort(self) -> None:
        """Simulated ``kill -9``: drop connections and in-flight work.

        Nothing is drained, responded to, flushed or checkpointed — the
        journal is left exactly as the last fsync left it.  The
        recovery tests restart from the same directory and must
        reconverge on every acknowledged operation.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections) + list(self._requests):
            task.cancel()
        await asyncio.gather(*self._connections, *self._requests,
                             return_exceptions=True)
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()
        # Deliberately neither service.close() (would drain queues) nor
        # journal.close() (would flush): the process just "died".

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self._writers.add(writer)
        self._m_connections.inc()
        lock = asyncio.Lock()  # response frames must not interleave
        try:
            if not await self._handshake(reader, writer):
                return
            while not self._closing:
                try:
                    frame = await read_frame(reader)
                except ServerError as err:
                    # Desynchronised stream: one best-effort error frame,
                    # then drop the connection (no id to echo).
                    self._m_frame_errors.inc()
                    await self._send(writer, lock, None, ErrorResponse(
                        error="ServerError", message=str(err)))
                    break
                if frame is None:
                    break  # clean EOF, or the peer vanished mid-frame
                envelope_id = frame.get("id")
                raw_trace = frame.get("trace")
                trace = raw_trace if isinstance(raw_trace, str) else None
                body = frame.get("body")
                if not isinstance(body, dict):
                    self._m_frame_errors.inc()
                    await self._send(writer, lock, envelope_id, ErrorResponse(
                        error="ServerError",
                        message="envelope must carry a 'body' object"),
                        trace=trace)
                    continue
                if body.get("request") == "metrics":
                    # Introspection must stay answerable under load: serve
                    # the snapshot inline, before the backpressure gate and
                    # without touching the per-document queues.
                    with tracing(trace):
                        snapshot = build_metrics_snapshot(
                            self._service.service.store)
                    await self._send(writer, lock, envelope_id, snapshot,
                                     trace=trace)
                    continue
                if self._inflight >= self.max_inflight:
                    self._overloads += 1
                    self._m_overloads.inc()
                    await self._send(writer, lock, envelope_id, ErrorResponse(
                        error="ServerError",
                        message=f"server overloaded: {self._inflight} "
                                f"request(s) in flight (limit "
                                f"{self.max_inflight}); retry later",
                        details={"inflight": self._inflight,
                                 "limit": self.max_inflight,
                                 "overload_total": self._overloads}),
                        trace=trace)
                    continue
                try:
                    request = request_from_dict(body)
                except ReproError as err:
                    self._m_frame_errors.inc()
                    await self._send(writer, lock, envelope_id, ErrorResponse(
                        error=type(err).__name__, message=str(err)),
                        trace=trace)
                    continue
                self._inflight += 1
                self._m_inflight.set(self._inflight)
                serve = asyncio.get_running_loop().create_task(
                    self._serve(envelope_id, request, writer, lock, trace))
                self._requests.add(serve)
                serve.add_done_callback(self._requests.discard)
        except asyncio.CancelledError:
            pass  # close()/abort() cancelled the reader
        except ConnectionError:
            pass
        finally:
            self._connections.discard(task)
            self._writers.discard(writer)
            writer.close()

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        try:
            frame = await read_frame(reader)
        except ServerError:
            self._m_handshake_failures.inc()
            return False
        if frame is None:
            self._m_handshake_failures.inc()
            return False
        hello = frame.get("hello")
        version = hello.get("protocol") if isinstance(hello, dict) else None
        if version != PROTOCOL_VERSION:
            self._m_handshake_failures.inc()
            try:
                await write_frame(writer, {"error": {
                    "error": "ServerError",
                    "message": f"protocol version mismatch: server speaks "
                               f"{PROTOCOL_VERSION}, client sent "
                               f"{version!r}"}})
            except ConnectionError:
                pass
            return False
        try:
            await write_frame(writer, {"hello": {
                "protocol": PROTOCOL_VERSION, "server": "repro"}})
        except ConnectionError:
            self._m_handshake_failures.inc()
            return False
        self._m_handshakes.inc()
        return True

    async def _serve(self, envelope_id, request, writer, lock,
                     trace=None) -> None:
        """Execute one request and write its response envelope."""
        started = perf_counter()
        try:
            try:
                with tracing(trace):
                    future = self._service.submit(request)
                if self.request_timeout is None:
                    response = await future
                else:
                    # shield(): a timed-out mutating request must finish
                    # server-side (it may already be journaled); only the
                    # *wait* is bounded, and the client learns it timed out.
                    response = await asyncio.wait_for(
                        asyncio.shield(future), self.request_timeout)
            except asyncio.TimeoutError:
                self._m_timeouts.inc()
                response = ErrorResponse(
                    error="TimeoutError",
                    message=f"request did not complete within "
                            f"{self.request_timeout}s (it keeps executing "
                            f"server-side; reconcile with stream-status)")
            except ReproError as err:
                response = ErrorResponse(error=type(err).__name__,
                                         message=str(err))
        finally:
            self._inflight -= 1
            self._m_inflight.set(self._inflight)
            self._metrics.counter(
                "server.requests_total", kind=request.kind).inc()
            self._metrics.histogram(
                "server.request_seconds", kind=request.kind).observe(
                perf_counter() - started)
        await self._send(writer, lock, envelope_id, response, trace=trace)

    async def _send(self, writer, lock, envelope_id, response,
                    trace=None) -> None:
        envelope = {"id": envelope_id, "body": response.to_dict()}
        if trace is not None:
            envelope["trace"] = trace
        try:
            async with lock:
                await write_frame(writer, envelope)
        except (ConnectionError, RuntimeError):
            pass  # the peer is gone; the work (and journal) still stand

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        durable = ", durable" if self._journal is not None else ""
        return (f"ReproServer({state}, {self._inflight} in flight"
                f"{durable})")


__all__ = ["ReproServer"]

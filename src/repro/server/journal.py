"""Append-only durability: per-document journals, checkpoints, recovery.

A :class:`ServerJournal` makes a :class:`~repro.service.store.
DocumentStore` survive its process.  Everything state-bearing is recorded
as a CRC-framed record (:mod:`repro.server.framing`) in an append-only
file, fsync'd *before* the response that acknowledges it is sent:

* ``<root>/sets.journal`` — constraint-set registrations, in their wire
  form (XPath text + type), including replacements;
* ``<root>/docs/<name>/journal`` — one file per document: its
  registration record (the full tree, nested-dict form) followed by one
  record per effective :class:`~repro.service.protocol.StreamSubmit`
  (the ops as *applied*, leaf ids pinned — see :meth:`prepare_ops`);
* ``<root>/docs/<name>/checkpoint`` — the latest snapshot: the
  enforcement stream's :meth:`~repro.stream.engine.StreamEnforcer.
  state_dict` plus the journal position it covers, written to a temp
  file and atomically renamed.  After a checkpoint the journal is
  *compacted*: records the checkpoint covers are dropped.

Every record carries a globally monotone ``lsn`` (log sequence number),
so :meth:`recover` can merge the set journal and all document journals
back into the one execution order the live server actually ran, restore
checkpoints at their covered position, and replay only the suffix —
reconverging on the exact live state (the enforcement engine is
deterministic; see :meth:`~repro.stream.engine.StreamEnforcer.replay`).

Failure semantics, pinned by the fault-injection suite
(:mod:`repro.server.faults`): a **torn tail** — the crash interrupted
the final append — is truncated and survived; **checksum-corrupt
history** raises :class:`~repro.errors.JournalCorruptError` and recovery
refuses to continue.  :meth:`simulate_power_loss` models the
kill-between-fsync window by truncating every journal back to its last
fsync'd offset.
"""

from __future__ import annotations

import os
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import BinaryIO, Iterable

from repro.certify.templates import (
    UpdateTemplate,
    bindings_from_wire,
    bindings_to_wire,
)
from repro.errors import JournalError, ServiceError
from repro.obs import MetricsRegistry, registry as _obs_registry, span
from repro.server.framing import encode_record, scan_records
from repro.service.protocol import constraint_from_wire, constraint_to_wire
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import AddLeaf, StreamOp, op_from_dict, op_to_dict
from repro.trees import serialize
from repro.trees.tree import DataTree

_SETS = "sets.journal"
_DOCS = "docs"
_JOURNAL = "journal"
_CHECKPOINT = "checkpoint"


def _doc_dirname(name: str) -> str:
    """A filesystem-safe, reversible directory name for a document."""
    return "doc-" + urllib.parse.quote(name, safe="")


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (durable renames on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class RecoveryReport:
    """What :meth:`ServerJournal.recover` found and rebuilt."""

    constraint_sets: list[str] = field(default_factory=list)
    documents: list[str] = field(default_factory=list)
    records_replayed: int = 0
    decisions_replayed: int = 0
    checkpoints_used: list[str] = field(default_factory=list)
    #: ``(path, bytes_dropped)`` per journal whose torn tail was truncated.
    torn_tails: list[tuple[str, int]] = field(default_factory=list)

    def __str__(self) -> str:
        torn = (f", {len(self.torn_tails)} torn tail(s) truncated"
                if self.torn_tails else "")
        return (f"recovered {len(self.documents)} document(s), "
                f"{len(self.constraint_sets)} constraint set(s); "
                f"{self.records_replayed} record(s) / "
                f"{self.decisions_replayed} decision(s) replayed, "
                f"{len(self.checkpoints_used)} checkpoint(s) used{torn}")


class ServerJournal:
    """The durability layer behind a :class:`~repro.server.server.ReproServer`.

    Attach with :meth:`~repro.service.store.DocumentStore.attach_journal`
    *after* :meth:`recover` has rebuilt the store — an attached journal
    records every mutation the store performs, so recovering into an
    already-attached store would re-journal its own replay.

    ``fsync=False`` trades the per-record ``fsync`` for throughput: the
    journal is still written in order, but a power loss may take back
    acknowledged operations (:meth:`simulate_power_loss` models exactly
    this).  ``checkpoint_every`` bounds replay work and journal size: a
    document's stream is snapshotted after that many submit records and
    its journal compacted.  ``faults`` accepts a
    :class:`~repro.server.faults.CrashSchedule` (or anything with a
    ``hit(point)`` method) and is consulted at every durability point.
    """

    def __init__(self, root: str | Path, *, fsync: bool = True,
                 checkpoint_every: int = 256, audit_keep: int = 64,
                 faults=None, metrics: MetricsRegistry | None = None):
        self.root = Path(root)
        self.fsync = fsync
        self.checkpoint_every = max(1, checkpoint_every)
        self.audit_keep = max(0, audit_keep)
        self.faults = faults
        self._metrics = metrics if metrics is not None else _obs_registry()
        m = self._metrics
        self._m_records = m.counter("journal.records_total")
        self._m_bytes = m.counter("journal.bytes_written_total")
        self._m_fsync = m.histogram("journal.fsync_seconds")
        self._m_torn = m.counter("journal.torn_tails_total")
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _DOCS).mkdir(exist_ok=True)
        self._lsn = 1  # next lsn to assign (recover() advances it)
        self._handles: dict[Path, BinaryIO] = {}
        self._synced: dict[Path, int] = {}  # last fsync'd size per file
        self._sizes: dict[Path, int] = {}   # written size per file
        self._next_id: dict[str, int] = {}  # per-document leaf-id counter
        self._since_checkpoint: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _doc_dir(self, name: str) -> Path:
        return self.root / _DOCS / _doc_dirname(name)

    def doc_journal_path(self, name: str) -> Path:
        return self._doc_dir(name) / _JOURNAL

    def doc_checkpoint_path(self, name: str) -> Path:
        return self._doc_dir(name) / _CHECKPOINT

    @property
    def sets_journal_path(self) -> Path:
        return self.root / _SETS

    # ------------------------------------------------------------------
    # Low-level append
    # ------------------------------------------------------------------
    def _fault(self, point: str) -> None:
        if self.faults is not None:
            self.faults.hit(point)

    def _handle(self, path: Path) -> BinaryIO:
        handle = self._handles.get(path)
        if handle is None:
            handle = open(path, "ab", buffering=0)
            self._handles[path] = handle
            size = path.stat().st_size
            self._sizes[path] = size
            self._synced[path] = size
        return handle

    def _append(self, path: Path, record: dict) -> None:
        if self._closed:
            raise JournalError("the journal is closed")
        record = dict(record)
        record["lsn"] = self._lsn
        self._lsn += 1
        blob = encode_record(record)
        handle = self._handle(path)
        handle.write(blob)
        self._sizes[path] = self._sizes.get(path, 0) + len(blob)
        self._m_records.inc()
        self._m_bytes.inc(len(blob))
        self._fault("journal-write")
        if self.fsync:
            started = perf_counter()
            os.fsync(handle.fileno())
            self._m_fsync.observe(perf_counter() - started)
            self._synced[path] = self._sizes[path]
            self._fault("journal-fsync")

    # ------------------------------------------------------------------
    # Store hooks (called by DocumentStore / the executors)
    # ------------------------------------------------------------------
    def constraints_registered(self, name: str, constraints: Iterable,
                               replace: bool) -> None:
        self._append(self.sets_journal_path, {
            "kind": "constraints", "name": name,
            "constraints": [constraint_to_wire(c) for c in constraints],
            "replace": bool(replace),
        })

    def template_registered(self, name: str, template: UpdateTemplate,
                            set_name: str, replace: bool) -> None:
        """Record one *certified* template registration.

        Lives in ``sets.journal`` (like the constraint sets certificates
        are statements about); recovery replays the record through
        :meth:`~repro.service.store.DocumentStore.add_template`, and the
        deterministic certifier reproduces the stored verdict — the
        journal never records rejected or unknown templates.
        """
        self._append(self.sets_journal_path, {
            "kind": "template", "name": name,
            "template": template.to_dict(), "set": set_name,
            "replace": bool(replace),
        })

    def document_registered(self, name: str, tree: DataTree,
                            replace: bool) -> None:
        """Start (or restart, on replace) the document's journal."""
        doc_dir = self._doc_dir(name)
        journal = self.doc_journal_path(name)
        checkpoint = self.doc_checkpoint_path(name)
        # A re-registration voids the document's whole history: drop the
        # open handle, the old journal and any checkpoint before the new
        # registration record lands.
        handle = self._handles.pop(journal, None)
        if handle is not None:
            handle.close()
        doc_dir.mkdir(parents=True, exist_ok=True)
        journal.unlink(missing_ok=True)
        checkpoint.unlink(missing_ok=True)
        self._sizes.pop(journal, None)
        self._synced.pop(journal, None)
        self._append(journal, {
            "kind": "document", "name": name,
            "tree": serialize.to_dict(tree), "replace": bool(replace),
        })
        _fsync_dir(doc_dir)
        self._next_id[name] = max(tree.node_ids()) + 1
        self._since_checkpoint[name] = 0

    def prepare_ops(self, doc: str, ops: tuple[StreamOp, ...]
                    ) -> tuple[StreamOp, ...]:
        """Pin unpinned :class:`AddLeaf` ids from the document's counter.

        A journaled log must replay to the *same* document, so fresh
        leaves cannot draw from the process-global allocator (a recovered
        process would allocate differently).  The per-document counter is
        deterministic — it starts past the registered tree's ids and
        every journaled pin advances it, on the live server and during
        replay alike — and pinning at the service boundary also tells the
        wire client which id its insert received.
        """
        counter = self._next_id.get(doc)
        if counter is None:
            return ops  # unknown document: the enforcer lookup will raise
        pinned: list[StreamOp] = []
        for op in ops:
            if isinstance(op, AddLeaf) and op.nid is None:
                pinned.append(AddLeaf(op.parent, op.label, nid=counter))
                counter += 1
            else:
                if isinstance(op, AddLeaf):
                    counter = max(counter, op.nid + 1)
                pinned.append(op)
        self._next_id[doc] = counter
        return tuple(pinned)

    def stream_submitted(self, doc: str, set_name: str,
                         ops: tuple[StreamOp, ...],
                         enforcer: StreamEnforcer) -> None:
        """Record one effective submission; checkpoint when due."""
        if not ops:
            return
        self._append(self.doc_journal_path(doc), {
            "kind": "submit", "set": set_name,
            "ops": [op_to_dict(op) for op in ops],
        })
        count = self._since_checkpoint.get(doc, 0) + 1
        self._since_checkpoint[doc] = count
        if count >= self.checkpoint_every and not enforcer.in_transaction:
            self.checkpoint(doc, set_name, enforcer)

    def certified_submitted(self, doc: str, set_name: str,
                            template_name: str, bindings: dict,
                            ops: tuple[StreamOp, ...],
                            enforcer: StreamEnforcer) -> None:
        """Record one applied certified submission; checkpoint when due.

        The record carries the template *name* plus the bindings and the
        pinned ops: recovery replays it through
        :meth:`~repro.stream.engine.StreamEnforcer.apply_certified` (the
        template itself recovers from ``sets.journal`` first — its lsn is
        always lower), so a recovered stream's audit trail, counters and
        ``certified`` accounting match the live one's exactly.
        """
        self._append(self.doc_journal_path(doc), {
            "kind": "certified", "set": set_name,
            "template": template_name,
            "bindings": bindings_to_wire(bindings),
            "ops": [op_to_dict(op) for op in ops],
        })
        count = self._since_checkpoint.get(doc, 0) + 1
        self._since_checkpoint[doc] = count
        if count >= self.checkpoint_every and not enforcer.in_transaction:
            self.checkpoint(doc, set_name, enforcer)

    # ------------------------------------------------------------------
    # Checkpoints and compaction
    # ------------------------------------------------------------------
    def checkpoint(self, doc: str, set_name: str,
                   enforcer: StreamEnforcer) -> None:
        """Snapshot the stream's state and compact its journal.

        The checkpoint covers every record with ``lsn < self._lsn``; the
        write is crash-safe (temp file + fsync + atomic rename — a crash
        at any point leaves either the old checkpoint or the new one,
        never a torn one), and only after the rename is the journal
        compacted.  A crash between the two merely replays records the
        checkpoint already covers — which the covered-lsn filter skips.
        """
        covered = self._lsn - 1
        with span("journal.checkpoint", registry=self._metrics):
            record = encode_record({
                "kind": "checkpoint", "lsn": covered, "doc": doc,
                "set": set_name, "next_id": self._next_id.get(doc, 1),
                "state": enforcer.state_dict(),
            })
            path = self.doc_checkpoint_path(doc)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "wb") as handle:
                handle.write(record)
                self._fault("checkpoint-write")
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
            self._fault("checkpoint-rename")
            self._compact(doc, covered)
            enforcer.audit.compact(keep_last=self.audit_keep)
        self._since_checkpoint[doc] = 0

    def _compact(self, doc: str, covered_lsn: int) -> None:
        """Drop journal records the checkpoint at ``covered_lsn`` covers."""
        with span("journal.compact", registry=self._metrics):
            self._compact_inner(doc, covered_lsn)

    def _compact_inner(self, doc: str, covered_lsn: int) -> None:
        journal = self.doc_journal_path(doc)
        records, _ = scan_records(journal.read_bytes(), path=str(journal))
        keep = [r for r in records if r["lsn"] > covered_lsn]
        handle = self._handles.pop(journal, None)
        if handle is not None:
            handle.close()
        tmp = journal.with_suffix(".compact")
        with open(tmp, "wb") as out:
            for record in keep:
                out.write(encode_record(record))
            if self.fsync:
                os.fsync(out.fileno())
        os.replace(tmp, journal)
        _fsync_dir(journal.parent)
        self._fault("compact")
        size = journal.stat().st_size
        self._sizes[journal] = size
        self._synced[journal] = size

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, store) -> RecoveryReport:
        """Rebuild ``store`` from disk; returns what was replayed.

        Call on a *fresh* store with no journal attached, then attach
        this journal.  Torn tails are truncated in place (the files are
        repaired, not just skipped); corrupt history raises
        :class:`~repro.errors.JournalCorruptError` before the store is
        touched beyond the records already applied.
        """
        report = RecoveryReport()
        events: list[tuple[int, int, str, dict]] = []  # (lsn, tie, kind, data)
        top = self._scan(self.sets_journal_path, report)
        for record in top:
            events.append((record["lsn"], 0, record["kind"], record))
        docs_root = self.root / _DOCS
        for doc_dir in sorted(p for p in docs_root.iterdir() if p.is_dir()):
            self._gather_doc(doc_dir, events, report)
        events.sort(key=lambda e: (e[0], e[1]))
        max_lsn = 0
        for lsn, _, kind, data in events:
            max_lsn = max(max_lsn, lsn)
            self._apply(kind, data, store, report)
            report.records_replayed += 1
        self._lsn = max_lsn + 1
        return report

    def _scan(self, path: Path, report: RecoveryReport) -> list[dict]:
        """Read a journal file, truncating a torn tail in place."""
        if not path.exists():
            return []
        blob = path.read_bytes()
        records, good = scan_records(blob, path=str(path))
        if good < len(blob):
            report.torn_tails.append((str(path), len(blob) - good))
            self._m_torn.inc()
            with open(path, "ab") as handle:
                handle.truncate(good)
                if self.fsync:
                    os.fsync(handle.fileno())
        return records

    def _gather_doc(self, doc_dir: Path,
                    events: list[tuple[int, int, str, dict]],
                    report: RecoveryReport) -> None:
        name = urllib.parse.unquote(doc_dir.name[len("doc-"):])
        journal_path = doc_dir / _JOURNAL
        records = self._scan(journal_path, report)
        checkpoint = self._load_checkpoint(doc_dir / _CHECKPOINT, report)
        covered = -1
        if checkpoint is not None:
            covered = checkpoint["lsn"]
            # tie=1: a checkpoint at lsn L embodies record L — it must
            # apply *after* any other event carrying the same lsn.
            events.append((covered, 1, "restore", checkpoint))
            report.checkpoints_used.append(name)
        survivors = [r for r in records if r["lsn"] > covered]
        if checkpoint is None and not any(
                r["kind"] == "document" for r in survivors):
            if not survivors:
                return  # empty journal directory: nothing to rebuild
            raise JournalError(
                f"document journal {journal_path} has submissions but no "
                f"registration record and no checkpoint: unrecoverable")
        for record in survivors:
            # Submit records live in the document's own journal and do not
            # repeat the name; stamp it so _apply sees a self-contained event.
            record.setdefault("doc", name)
            events.append((record["lsn"], 0, record["kind"], record))

    def _load_checkpoint(self, path: Path,
                         report: RecoveryReport) -> dict | None:
        if not path.exists():
            return None
        blob = path.read_bytes()
        records, good = scan_records(blob, path=str(path))
        if not records or good < len(blob):
            # A torn checkpoint cannot happen through the atomic-rename
            # write path; treat external truncation as "no checkpoint"
            # and fall back to full journal replay.
            report.torn_tails.append((str(path), len(blob) - good))
            self._m_torn.inc()
            return None
        return records[0]

    def _apply(self, kind: str, data: dict, store,
               report: RecoveryReport) -> None:
        if kind == "constraints":
            store.add_constraints(
                data["name"],
                [constraint_from_wire(pair) for pair in data["constraints"]],
                replace=bool(data.get("replace")) or
                data["name"] in store.constraint_sets())
            if data["name"] not in report.constraint_sets:
                report.constraint_sets.append(data["name"])
        elif kind == "document":
            name = data["name"]
            store.add_document(name, serialize.from_dict(data["tree"]),
                               replace=bool(data.get("replace")) or
                               name in store.documents())
            self._next_id[name] = max(store.document(name).node_ids()) + 1
            self._since_checkpoint[name] = 0
            if name not in report.documents:
                report.documents.append(name)
        elif kind == "template":
            template = UpdateTemplate.from_dict(data["template"])
            outcome = store.add_template(
                data["name"], template, data["set"],
                replace=bool(data.get("replace")) or
                data["name"] in store.templates())
            if not outcome.certified:
                # certify() is deterministic over (template, set); a
                # journaled registration that no longer certifies means
                # the journals disagree with themselves.
                raise JournalError(
                    f"journaled template {data['name']!r} (lsn "
                    f"{data['lsn']}) failed re-certification against set "
                    f"{data['set']!r} during recovery")
        elif kind == "submit":
            name = data["doc"]
            ops = tuple(op_from_dict(d) for d in data["ops"])
            try:
                enforcer = store.enforcer(name, data["set"])
                decisions = enforcer.replay(ops)
            except Exception as err:
                raise JournalError(
                    f"replay of journaled submission (lsn {data['lsn']}) "
                    f"for document {name!r} failed: {err}") from err
            report.decisions_replayed += len(decisions)
            counter = self._next_id.get(name, 1)
            for op in ops:
                if isinstance(op, AddLeaf) and op.nid is not None:
                    counter = max(counter, op.nid + 1)
            self._next_id[name] = counter
            self._since_checkpoint[name] = (
                self._since_checkpoint.get(name, 0) + 1)
        elif kind == "certified":
            name = data["doc"]
            ops = tuple(op_from_dict(d) for d in data["ops"])
            try:
                template, _ = store.template(data["template"], data["set"])
                enforcer = store.enforcer(name, data["set"])
                decisions = enforcer.apply_certified(
                    template, bindings_from_wire(data["bindings"]), ops=ops)
            except Exception as err:
                raise JournalError(
                    f"replay of journaled certified submission (lsn "
                    f"{data['lsn']}) for document {name!r} failed: "
                    f"{err}") from err
            report.decisions_replayed += len(decisions)
            counter = self._next_id.get(name, 1)
            for op in ops:
                if isinstance(op, AddLeaf) and op.nid is not None:
                    counter = max(counter, op.nid + 1)
            self._next_id[name] = counter
            self._since_checkpoint[name] = (
                self._since_checkpoint.get(name, 0) + 1)
        elif kind == "restore":
            name = data["doc"]
            try:
                constraints = store.constraints(data["set"])
            except ServiceError as err:
                raise JournalError(
                    f"checkpoint for document {name!r} names constraint "
                    f"set {data['set']!r} which the journals do not "
                    f"register: {err}") from None
            enforcer = StreamEnforcer.restore(constraints, data["state"])
            store.adopt_stream(name, data["set"], enforcer)
            self._next_id[name] = int(data.get("next_id", 1))
            self._since_checkpoint[name] = 0
            if name not in report.documents:
                report.documents.append(name)
        else:
            raise JournalError(f"unknown journal record kind {kind!r}")

    # ------------------------------------------------------------------
    # Lifecycle and fault hooks
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """fsync every open journal handle (used with ``fsync=False``)."""
        for path, handle in self._handles.items():
            started = perf_counter()
            os.fsync(handle.fileno())
            self._m_fsync.observe(perf_counter() - started)
            self._synced[path] = self._sizes.get(path, 0)

    def simulate_power_loss(self) -> None:
        """Model the kill-between-fsync window: un-fsync'd bytes vanish.

        The fault harness calls this after a
        :class:`~repro.server.faults.SimulatedCrash` to make the on-disk
        state exactly what a power cut at that instant could leave:
        every journal truncated back to its last fsync'd offset.  The
        journal object is closed (the "process" died).
        """
        for path, handle in list(self._handles.items()):
            handle.close()
            # A compaction may have atomically replaced the file with a
            # *smaller* durable one after the last tracked fsync; never
            # "restore" past the real end (truncate would zero-pad).
            synced = min(self._synced.get(path, 0), path.stat().st_size)
            with open(path, "ab") as repair:
                repair.truncate(synced)
        self._handles.clear()
        self._closed = True

    def close(self) -> None:
        """Flush and close every handle (idempotent)."""
        if self._closed:
            return
        for handle in self._handles.values():
            if self.fsync:
                os.fsync(handle.fileno())
            handle.close()
        self._handles.clear()
        self._closed = True

    def __enter__(self) -> "ServerJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ServerJournal({str(self.root)!r}, fsync={self.fsync}, "
                f"checkpoint_every={self.checkpoint_every}, "
                f"next_lsn={self._lsn})")


__all__ = ["ServerJournal", "RecoveryReport"]

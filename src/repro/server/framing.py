"""Byte framing shared by the journal and the socket front end.

Two framings, one header shape — a 4-byte big-endian payload length
followed by a 4-byte CRC32 of the payload, then the payload itself
(UTF-8 JSON with sorted keys):

* **journal records** (:func:`encode_record` / :func:`scan_records`) are
  appended to per-document files; the CRC turns every record into its
  own tamper-evident unit, so recovery can distinguish the two failure
  modes the fault harness injects — a *torn tail* (the final append was
  interrupted mid-write: fewer bytes on disk than the header promises,
  or an incomplete header) which is truncated and survived, and
  *corrupt history* (a complete record whose bytes no longer match their
  CRC) which raises :class:`~repro.errors.JournalCorruptError`;
* **wire frames** (:func:`read_frame` / :func:`write_frame`) carry the
  same header over an asyncio stream, where the CRC guards against
  framing bugs rather than disk corruption and a short read simply means
  the peer hung up mid-frame.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

from asyncio import IncompleteReadError, LimitOverrunError, StreamReader, StreamWriter

from repro.errors import JournalCorruptError, ServerError

#: ``(payload length, payload crc32)`` — both unsigned 32-bit big-endian.
HEADER = struct.Struct(">II")

#: Hard cap on one frame/record payload (a parsed request fans out into
#: live trees; an absurd length field is a protocol error, not a malloc).
MAX_PAYLOAD = 64 * 1024 * 1024


def encode_payload(data: dict) -> bytes:
    """Canonical JSON bytes (sorted keys — stable CRCs across processes)."""
    return json.dumps(data, sort_keys=True, ensure_ascii=False).encode()


def encode_record(data: dict) -> bytes:
    """One CRC-framed record: header + canonical JSON payload."""
    payload = encode_payload(data)
    if len(payload) > MAX_PAYLOAD:
        raise ServerError(f"record of {len(payload)} bytes exceeds the "
                          f"{MAX_PAYLOAD}-byte frame limit")
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(blob: bytes, path: str = "") -> tuple[list[dict], int]:
    """Decode a journal file's bytes into ``(records, good_length)``.

    ``good_length`` is the byte offset of the first torn (incomplete)
    record — equal to ``len(blob)`` when the file ends cleanly.  The
    caller truncates the file to ``good_length`` and carries on; that is
    the crash-recovery contract for an append-only journal whose final
    write may have been interrupted.  A *complete* record whose payload
    fails its CRC — or is not valid JSON — is corrupt history, not a torn
    tail, and raises :class:`JournalCorruptError` naming the offset.
    """
    records: list[dict] = []
    at = 0
    total = len(blob)
    while at < total:
        if total - at < HEADER.size:
            break  # torn header
        length, crc = HEADER.unpack_from(blob, at)
        if length > MAX_PAYLOAD:
            raise JournalCorruptError(
                f"journal record at offset {at} claims {length} bytes "
                f"(limit {MAX_PAYLOAD}): corrupt length field",
                path=path, offset=at)
        start = at + HEADER.size
        end = start + length
        if end > total:
            break  # torn payload
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            raise JournalCorruptError(
                f"journal record at offset {at} fails its CRC: corrupt "
                f"history (refusing to replay a silently wrong document)",
                path=path, offset=at)
        try:
            record = json.loads(payload)
        except ValueError:
            raise JournalCorruptError(
                f"journal record at offset {at} passes its CRC but is not "
                f"JSON: corrupt history", path=path, offset=at) from None
        records.append(record)
        at = end
    return records, at


# ----------------------------------------------------------------------
# Asyncio stream framing (same header, live peer)
# ----------------------------------------------------------------------
async def read_frame(reader: StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    A peer that disappears *mid-frame* (the fault harness's mid-request
    connection drop) also returns ``None`` — the connection is dead
    either way and the partial bytes carry no decodable request.  A
    complete frame that fails its CRC or JSON-decoding raises
    :class:`ServerError`: the stream is desynchronised and the
    connection must be dropped.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except (IncompleteReadError, ConnectionError):
        return None
    length, crc = HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise ServerError(f"frame of {length} bytes exceeds the "
                          f"{MAX_PAYLOAD}-byte limit")
    try:
        payload = await reader.readexactly(length)
    except (IncompleteReadError, ConnectionError, LimitOverrunError):
        return None
    if zlib.crc32(payload) != crc:
        raise ServerError("frame fails its CRC: stream desynchronised")
    try:
        data = json.loads(payload)
    except ValueError as err:
        raise ServerError(f"frame is not valid JSON: {err}") from None
    if not isinstance(data, dict):
        raise ServerError(f"frame payload must be a JSON object, "
                          f"got {type(data).__name__}")
    return data


async def write_frame(writer: StreamWriter, data: dict) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_record(data))
    await writer.drain()


__all__ = [
    "HEADER", "MAX_PAYLOAD",
    "encode_payload", "encode_record", "scan_records",
    "read_frame", "write_frame",
]

"""The durable socket server over the constraint service.

Everything the multi-layer service stack can do — registration,
implication and instance queries, online update-stream enforcement — made
available to out-of-process clients over a length-prefixed socket
protocol, and made *durable*: with a journal attached, every acknowledged
operation survives ``kill -9`` and is reconstructed bit-for-bit on
restart.

Layers (each its own module):

* :mod:`~repro.server.framing` — CRC-framed records: the on-disk journal
  format and the wire frame are the same bytes;
* :mod:`~repro.server.journal` — :class:`ServerJournal`: per-document
  append-only journals (fsync'd before acknowledgement), periodic
  checkpoint snapshots of live enforcement streams, log compaction, and
  lsn-ordered crash recovery (torn tails truncated, corrupt history
  refused);
* :mod:`~repro.server.server` — :class:`ReproServer`: the asyncio accept
  loop with handshake, per-request timeouts, bounded backpressure and
  graceful-vs-abrupt shutdown;
* :mod:`~repro.server.client` — :class:`ReproClient`: the pipelining
  client;
* :mod:`~repro.server.faults` — deterministic crash/corruption injection
  for the recovery test suite.

Run one from the command line::

    python -m repro.server --journal /var/lib/repro --port 7407
"""

from repro.server.client import ReproClient
from repro.server.faults import CrashSchedule, SimulatedCrash, flip_byte, tear_tail
from repro.server.framing import MAX_PAYLOAD, encode_record, scan_records
from repro.server.journal import RecoveryReport, ServerJournal
from repro.server.server import ReproServer

__all__ = [
    "ReproServer", "ReproClient",
    "ServerJournal", "RecoveryReport",
    "CrashSchedule", "SimulatedCrash", "tear_tail", "flip_byte",
    "MAX_PAYLOAD", "encode_record", "scan_records",
]

"""``python -m repro.server`` — run a (durable) constraint server.

Binds, prints the bound address and the recovery report (when a journal
directory is given), then serves until interrupted.  SIGINT/SIGTERM
trigger a *graceful* shutdown: in-flight requests drain and the journal
is flushed — crash-test with ``kill -9`` instead, then restart with the
same ``--journal`` directory and watch recovery replay it.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal

from repro.obs import registry
from repro.server.server import ReproServer


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the constraint protocol over a socket.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (0 = let the OS pick)")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="journal directory: recover it on start and "
                             "journal every mutation (omit for an "
                             "in-memory server)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip the per-record fsync (faster, but a "
                             "power cut may take back acknowledged ops)")
    parser.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="N",
                        help="snapshot a stream every N submissions "
                             "(default 256)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request timeout in seconds "
                             "(0 = unbounded)")
    parser.add_argument("--max-inflight", type=int, default=256,
                        help="refuse requests beyond this many in flight")
    parser.add_argument("--metrics-interval", type=float, default=0,
                        metavar="SECONDS",
                        help="periodically dump the metrics registry in "
                             "Prometheus text format (0 = never; the "
                             "metrics wire request works regardless)")
    return parser


async def _dump_metrics(interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        print(f"--- metrics ---\n{registry().render()}", flush=True)


async def _run(args: argparse.Namespace) -> None:
    timeout = args.timeout if args.timeout > 0 else None
    if args.journal is not None:
        server = ReproServer.durable(
            args.journal, fsync=not args.no_fsync,
            checkpoint_every=args.checkpoint_every,
            host=args.host, port=args.port,
            request_timeout=timeout, max_inflight=args.max_inflight)
    else:
        server = ReproServer(host=args.host, port=args.port,
                             request_timeout=timeout,
                             max_inflight=args.max_inflight)
    host, port = await server.start()
    print(f"repro server listening on {host}:{port}", flush=True)
    if server.recovery is not None:
        print(f"recovery: {server.recovery}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    dumper: asyncio.Task | None = None
    if args.metrics_interval > 0:
        dumper = loop.create_task(_dump_metrics(args.metrics_interval))
    try:
        await stop.wait()
    finally:
        if dumper is not None:
            dumper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dumper
        print("draining and shutting down...", flush=True)
        await server.close()


def main(argv=None) -> None:
    args = _parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()

"""The asyncio client of a :class:`~repro.server.server.ReproServer`.

A :class:`ReproClient` speaks the CRC-framed envelope protocol: one
handshake frame, then ``{"id": n, "body": ...}`` envelopes with
client-chosen ids.  A background reader task resolves pending futures as
response frames arrive, so a client can pipeline requests (submit many,
``await asyncio.gather``) and still match every response to its request
even when the server answers out of order (different documents
interleave; same-document order is preserved server-side).

>>> import asyncio
>>> from repro import DataTree
>>> from repro.server import ReproServer, ReproClient
>>> async def main():
...     async with ReproServer() as server:
...         host, port = server.address
...         client = await ReproClient.connect(host, port)
...         doc = DataTree()
...         _ = doc.add_child(doc.root, "patient")
...         ack = await client.register_document("ward", doc)
...         await client.close()
...         return ack.to_dict()["size"]
>>> asyncio.run(main())
2
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable, Sequence

from repro.certify.templates import Bindings, UpdateTemplate
from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.errors import ServerError
from repro.obs import new_trace_id, trace_id
from repro.server.framing import read_frame, write_frame
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CertifiedSubmit,
    ImplicationQuery,
    InstanceQuery,
    MetricsRequest,
    RegisterConstraints,
    RegisterDocument,
    RegisterTemplate,
    Request,
    Response,
    StreamStatus,
    StreamSubmit,
    response_from_dict,
)
from repro.stream.ops import StreamOp
from repro.trees.tree import DataTree


class ReproClient:
    """One connection to a repro server; safe to pipeline from one task."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 1
        self._pending: dict[int, asyncio.Future] = {}
        self._lock = asyncio.Lock()  # request frames must not interleave
        self._reader_task: asyncio.Task | None = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "ReproClient":
        """Dial, handshake, and start the response reader."""
        reader, writer = await asyncio.open_connection(host, port)
        await write_frame(writer, {"hello": {"protocol": PROTOCOL_VERSION}})
        frame = await read_frame(reader)
        if frame is None:
            writer.close()
            raise ServerError("the server hung up during the handshake")
        if "hello" not in frame:
            writer.close()
            error = frame.get("error", {})
            raise ServerError(error.get("message",
                                        f"handshake refused: {frame!r}"))
        client = cls(reader, writer)
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_responses())
        return client

    async def _read_responses(self) -> None:
        """Resolve pending futures as response envelopes arrive."""
        error: BaseException | None = None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    error = ServerError("the server closed the connection")
                    break
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response_from_dict(frame["body"]))
        except asyncio.CancelledError:
            error = ServerError("the client is closed")
        except Exception as err:
            error = err
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error if error is not None
                                     else ServerError("connection lost"))
        self._pending.clear()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(self, request: Request, *,
                      trace: str | None = None) -> Response:
        """Send one request and await its (id-matched) response."""
        future = await self.submit(request, trace=trace)
        return await future

    async def submit(self, request: Request, *,
                     trace: str | None = None
                     ) -> "asyncio.Future[Response]":
        """Send one request; the future resolves when its response lands.

        Unlike :meth:`request` this returns as soon as the frame is on
        the wire, so a caller can pipeline a batch and gather the
        futures.  Every envelope carries a trace id the server installs
        around execution and echoes on the response: ``trace`` when
        given, else the caller's ambient :func:`~repro.obs.trace_id`,
        else a fresh :func:`~repro.obs.new_trace_id`.
        """
        if self._closed:
            raise ServerError("the client is closed")
        envelope_id = self._next_id
        self._next_id += 1
        if trace is None:
            trace = trace_id() or new_trace_id()
        future: asyncio.Future[Response] = (
            asyncio.get_running_loop().create_future())
        self._pending[envelope_id] = future
        try:
            async with self._lock:
                await write_frame(self._writer,
                                  {"id": envelope_id,
                                   "body": request.to_dict(),
                                   "trace": trace})
        except (ConnectionError, RuntimeError) as err:
            self._pending.pop(envelope_id, None)
            raise ServerError(f"the connection is gone: {err}") from None
        return future

    # ------------------------------------------------------------------
    # Conveniences (one protocol request each)
    # ------------------------------------------------------------------
    async def register_document(self, name: str, tree: DataTree, *,
                                replace: bool = False) -> Response:
        return await self.request(RegisterDocument(name, tree,
                                                   replace=replace))

    async def register_constraints(self, name: str,
                                   constraints: ConstraintSet | Iterable, *,
                                   replace: bool = False) -> Response:
        if not isinstance(constraints, ConstraintSet):
            from repro.constraints.model import constraint_set
            constraints = constraint_set(*constraints)
        return await self.request(RegisterConstraints(
            name, tuple(constraints), replace=replace))

    async def enforce(self, document: str, constraints: str,
                      ops: Sequence[StreamOp]) -> Response:
        return await self.request(StreamSubmit(document, constraints,
                                               tuple(ops)))

    async def register_template(self, name: str, template: UpdateTemplate,
                                constraints: str, *,
                                replace: bool = False) -> Response:
        """Certify-and-register an update template against a named set.

        The :class:`~repro.service.protocol.Ack` carries the verdict in
        ``stats`` (``certify.certified`` is 1 iff the template may be
        submitted through :meth:`certified_submit`).
        """
        return await self.request(RegisterTemplate(name, template,
                                                   constraints,
                                                   replace=replace))

    async def certified_submit(self, document: str, constraints: str,
                               template: str,
                               bindings: Bindings) -> Response:
        """Run one certified-template instantiation on the hot path."""
        return await self.request(CertifiedSubmit(
            document, constraints, template,
            tuple(sorted(dict(bindings).items()))))

    async def status(self, document: str) -> Response:
        """Where the document's stream stands (reconnect reconciliation)."""
        return await self.request(StreamStatus(document))

    async def metrics(self) -> Response:
        """The server's live introspection snapshot.

        Served inline by the server — before its backpressure gate and
        without touching the per-document queues — so it answers even
        while the server is overloaded or draining.
        """
        return await self.request(MetricsRequest())

    async def implies(self, constraints: str,
                      conclusions: Sequence[UpdateConstraint], *,
                      fail_fast: bool = False,
                      require_decision: bool = False) -> Response:
        return await self.request(ImplicationQuery(
            constraints, tuple(conclusions), fail_fast=fail_fast,
            require_decision=require_decision))

    async def implies_on(self, constraints: str, document: str,
                         conclusions: Sequence[UpdateConstraint],
                         **kwargs) -> Response:
        return await self.request(InstanceQuery(
            constraints, document, tuple(conclusions), **kwargs))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Hang up; outstanding futures fail with :class:`ServerError`."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> "ReproClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "connected"
        return f"ReproClient({state}, {len(self._pending)} pending)"


__all__ = ["ReproClient"]

"""Deterministic fault injection for the durability layer.

Crash-recovery code is only as trustworthy as the crashes it has been
tested against, so every failure mode the journal claims to survive is
injected *deterministically* here and pinned by ``tests/server`` (the
``faults`` pytest marker):

* :class:`CrashSchedule` kills the "process" at an exact durability
  point — the k-th journal write before its fsync, the k-th fsync after
  it, mid-checkpoint — by raising :class:`SimulatedCrash` from the
  journal's fault hook; combined with
  :meth:`~repro.server.journal.ServerJournal.simulate_power_loss` this
  models the kill-between-fsync window exactly (un-fsync'd bytes
  vanish);
* :func:`tear_tail` chops bytes off a journal's final record — the torn
  tail an interrupted append leaves — which recovery must truncate and
  survive;
* :func:`flip_byte` corrupts one byte of committed history — which
  recovery must *refuse* with
  :class:`~repro.errors.JournalCorruptError`, never silently replay.

Nothing here is random: every injection is an explicit (point, count) or
(path, offset), so a failing fault test replays bit-for-bit.
"""

from __future__ import annotations

import os
from pathlib import Path


class SimulatedCrash(BaseException):
    """The injected process death.

    Deliberately a :class:`BaseException`: the layers under test catch
    :class:`~repro.errors.ReproError` (and service code catches
    ``Exception``) to turn failures into responses — a *crash* must tear
    through all of that exactly as ``kill -9`` would.
    """

    def __init__(self, point: str, count: int):
        self.point = point
        self.count = count
        super().__init__(f"simulated crash at {point} #{count}")


class CrashSchedule:
    """Raise :class:`SimulatedCrash` at the k-th hit of one fault point.

    The journal consults ``hit(point)`` at every durability point; known
    points are ``journal-write`` (record written, **not yet** fsync'd),
    ``journal-fsync`` (record durable, response not yet sent),
    ``checkpoint-write`` (snapshot bytes written to the temp file),
    ``checkpoint-rename`` (snapshot atomically in place) and ``compact``
    (journal rewritten).  ``seen`` records every hit in order, so a test
    can also assert *where* a run passed before the crash.
    """

    def __init__(self, point: str, at: int = 1):
        if at < 1:
            raise ValueError(f"crash ordinal must be >= 1, got {at}")
        self.point = point
        self.at = at
        self.seen: list[str] = []
        self._count = 0
        self.fired = False

    def hit(self, point: str) -> None:
        self.seen.append(point)
        if point != self.point or self.fired:
            return
        self._count += 1
        if self._count >= self.at:
            self.fired = True
            raise SimulatedCrash(point, self._count)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{self._count}/{self.at}"
        return f"CrashSchedule({self.point!r}, at={self.at}, {state})"


def tear_tail(path: str | Path, drop: int) -> int:
    """Chop ``drop`` bytes off the file's end (an interrupted append).

    Returns the new size.  Dropping fewer bytes than the final record's
    length leaves a torn record — header promising more payload than the
    file holds — which is precisely the state a crash mid-``write`` (or a
    power cut before the data blocks hit disk) leaves behind.
    """
    size = os.path.getsize(path)
    keep = max(0, size - max(0, drop))
    with open(path, "ab") as handle:
        handle.truncate(keep)
    return keep


def flip_byte(path: str | Path, offset: int, mask: int = 0xFF) -> None:
    """XOR one byte of the file — committed history silently rotting.

    Unlike a torn tail this is *not* survivable: the CRC no longer
    matches bytes that claim to be a complete record, and recovery must
    refuse rather than replay a silently different document.
    """
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"offset {offset} is past the end of {path}")
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (mask & 0xFF)]))


__all__ = ["SimulatedCrash", "CrashSchedule", "tear_tail", "flip_byte"]

"""Theorem 5.2 (and 5.6): coNP-hardness of instance-based implication.

The reduction builds, from a 3CNF formula ``f`` over ``x1..xn``, the current
instance ``J`` of Figure 6::

    root ── a ── 1                      root ── a ── 2
            ├── v(x1, +, -)                    ├── v(x1)
            ├── v(x2, +, -)                    ├── v(x2)
            └── ...                            └── ...

together with immutability constraints freezing the skeleton, constraints
forcing every variable of the ``a1`` branch to have kept at least one truth
value, and one no-remove constraint per clause whose *empty* answer in ``J``
forces at least one satisfying literal of the clause into the ``a1`` branch
of any legal past.  Then::

    C ⊨_J (/a[/1][/v[/+][/-]], ↓)    iff    f is unsatisfiable

The reduction is *constructive in the satisfiable direction*: from a
satisfying assignment, :func:`past_from_assignment` produces the explicit
past instance ``I`` (truth values split between the branches according to
the assignment) that the proof describes, and the test-suite verifies with
the independent checker that ``(I, J)`` is valid and violates ``c``.

:func:`theorem_56_problem` is the ``↑``-conclusion variant the paper uses to
adapt the proof (end of Theorem 5.2, reused by Theorem 5.6): a ``w`` marker
is added under ``a2`` and the conclusion becomes ``(/a[/1][/w], ↑)``.  The
fully no-remove premise rewriting of Theorem 5.6 is only sketched in the
paper ("c will now be as big as J") and is reproduced here at the level of
that sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.model import (
    ConstraintSet,
    UpdateConstraint,
    immutable,
    no_insert,
    no_remove,
)
from repro.reductions.cnf import CNF
from repro.trees.builders import Spec, branch, build
from repro.trees.tree import DataTree


@dataclass(frozen=True)
class InstanceHardnessProblem:
    """One generated instance of the Theorem 5.2 reduction."""

    formula: CNF
    premises: ConstraintSet
    current: DataTree
    conclusion: UpdateConstraint
    plus_ids: dict[int, int]   # variable -> id of its '+' node
    minus_ids: dict[int, int]  # variable -> id of its '-' node
    v1_ids: dict[int, int]     # variable -> id of its a1-branch v node
    v2_ids: dict[int, int]     # variable -> id of its a2-branch v node
    w_id: int | None = None


def _variable_label(i: int) -> str:
    return f"x{i}"


def build_current_instance(formula: CNF, with_w: bool = False
                           ) -> tuple[DataTree, dict, dict, dict, dict, int | None]:
    """The Figure 6 instance ``J`` (optionally with the Theorem 5.6 ``w``)."""
    n = formula.n_vars
    base = 10_000
    plus_ids = {i: base + 10 * i + 1 for i in range(1, n + 1)}
    minus_ids = {i: base + 10 * i + 2 for i in range(1, n + 1)}
    v1_ids = {i: base + 10 * i + 3 for i in range(1, n + 1)}
    v2_ids = {i: base + 10 * i + 4 for i in range(1, n + 1)}
    w_id = base + 9_999 if with_w else None

    a1_kids: list[Spec] = [branch("1")]
    for i in range(1, n + 1):
        a1_kids.append(
            branch("v",
                   branch(_variable_label(i)),
                   branch("+", nid=plus_ids[i]),
                   branch("-", nid=minus_ids[i]),
                   nid=v1_ids[i])
        )
    a2_kids: list[Spec] = [branch("2")]
    for i in range(1, n + 1):
        a2_kids.append(branch("v", branch(_variable_label(i)), nid=v2_ids[i]))
    if with_w:
        a2_kids.append(branch("w", nid=w_id))
    current = build(branch("a", *a1_kids), branch("a", *a2_kids))
    return current, plus_ids, minus_ids, v1_ids, v2_ids, w_id


def build_premises(formula: CNF, with_w: bool = False) -> ConstraintSet:
    """The constraint set ``C`` of the proof of Theorem 5.2."""
    n = formula.n_vars
    constraints: list[UpdateConstraint] = []
    constraints.extend(immutable("/a"))
    constraints.extend(immutable("/a[/1]"))
    constraints.extend(immutable("/a[/2]"))
    constraints.extend(immutable("/a/v"))
    for i in range(1, n + 1):
        x = _variable_label(i)
        constraints.extend(immutable(f"/a[/1]/v[/{x}]"))
        constraints.extend(immutable(f"/a[/2]/v[/{x}]"))
    all_vars_1 = "/a[/1]" + "".join(f"[/v[/{_variable_label(i)}]]" for i in range(1, n + 1))
    all_vars_2 = "/a[/2]" + "".join(f"[/v[/{_variable_label(i)}]]" for i in range(1, n + 1))
    constraints.extend(immutable(all_vars_1))
    constraints.extend(immutable(all_vars_2))
    for i in range(1, n + 1):
        x = _variable_label(i)
        constraints.extend(immutable(f"/a/v[/{x}]/+"))
        constraints.extend(immutable(f"/a/v[/{x}]/-"))
    # Every variable kept at least one truth value in the a1 branch:
    # the range is empty in J, and no-remove forbids it ever shrinking,
    # so it was empty in any legal past.
    for i in range(1, n + 1):
        x = _variable_label(i)
        constraints.append(no_remove(f"/a[/2][/v[/{x}][/+][/-]]"))
    # One constraint per clause: at least one satisfying literal sits in a1.
    for clause_ in formula.clauses:
        preds = "".join(
            f"[/v[/{_variable_label(lit.var)}][/{'+' if lit.positive else '-'}]]"
            for lit in clause_
        )
        constraints.append(no_remove(f"/a[/2]{preds}"))
    if with_w:
        constraints.extend(immutable("/a/w"))
        constraints.extend(immutable("/a[/1][/w][/v[/+][/-]]"))
    return ConstraintSet(constraints)


def theorem_52_problem(formula: CNF) -> InstanceHardnessProblem:
    """The full Theorem 5.2 problem: ``C ⊨_J c`` iff ``formula`` is UNSAT."""
    current, plus_ids, minus_ids, v1_ids, v2_ids, _ = build_current_instance(formula)
    premises = build_premises(formula)
    conclusion = no_insert("/a[/1][/v[/+][/-]]")
    return InstanceHardnessProblem(formula, premises, current, conclusion,
                                   plus_ids, minus_ids, v1_ids, v2_ids)


def theorem_56_problem(formula: CNF) -> InstanceHardnessProblem:
    """The Theorem 5.6 variant with the ``w`` marker and a ``↑`` conclusion."""
    current, plus_ids, minus_ids, v1_ids, v2_ids, w_id = build_current_instance(
        formula, with_w=True)
    premises = build_premises(formula, with_w=True)
    conclusion = no_remove("/a[/1][/w]")
    return InstanceHardnessProblem(formula, premises, current, conclusion,
                                   plus_ids, minus_ids, v1_ids, v2_ids, w_id)


def past_from_assignment(problem: InstanceHardnessProblem,
                         assignment: dict[int, bool]) -> DataTree:
    """The explicit legal past encoded by a satisfying assignment.

    In the past instance each ``a1`` variable subtree keeps exactly the
    truth value the assignment selects; the opposite value sits under the
    corresponding ``a2`` variable subtree.  (For the Theorem 5.6 variant the
    ``w`` marker moves below ``a1``, witnessing the ``↑`` conclusion.)
    """
    past = problem.current.copy()
    for var, value in assignment.items():
        # Move the sign contradicting the assignment to the a2 branch.
        bad = problem.minus_ids[var] if value else problem.plus_ids[var]
        past.move(bad, problem.v2_ids[var])
    if problem.w_id is not None:
        # Theorem 5.6: in the past, w hung below a1 (it was moved to a2).
        a1 = past.parent(problem.v1_ids[1])
        past.move(problem.w_id, a1)
    return past

"""The paper's coNP-hardness reductions (Theorems 4.6, 5.2, 5.6)."""

from repro.reductions.cnf import (
    CNF,
    EXAMPLE_SAT,
    EXAMPLE_UNSAT,
    Literal,
    clause,
    cnf,
    random_3cnf,
)
from repro.reductions.general_hardness import (
    GeneralHardnessProblem,
    build_problem,
    pair_from_assignment,
)
from repro.reductions.instance_hardness import (
    InstanceHardnessProblem,
    build_current_instance,
    build_premises,
    past_from_assignment,
    theorem_52_problem,
    theorem_56_problem,
)

__all__ = [
    "CNF",
    "Literal",
    "clause",
    "cnf",
    "random_3cnf",
    "EXAMPLE_SAT",
    "EXAMPLE_UNSAT",
    "GeneralHardnessProblem",
    "build_problem",
    "pair_from_assignment",
    "InstanceHardnessProblem",
    "theorem_52_problem",
    "theorem_56_problem",
    "build_current_instance",
    "build_premises",
    "past_from_assignment",
]

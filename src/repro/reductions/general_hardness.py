"""Theorem 4.6: coNP-hardness of general implication for ``XP{/,[],//}``.

From a 3CNF formula over ``x1..xn`` the reduction emits a premise set ``C``
and conclusion ``c`` such that ``C ⊨ c`` iff the formula is unsatisfiable.
The conclusion range is one long path::

    /s/x1//x2//...//xn//m//x1//+//-//x2//+//-//...//xn//+//-//e    (↑)

To delete the ``e`` node one must reshuffle the ``+``/``-`` nodes between
the two halves of the path (the ``m`` node splits them), and the premises
conspire so that the only legal shuffles are *perfect splits* encoding
satisfying assignments — each clause contributes two no-insert constraints
ruling out splits that leave it unsatisfied in the upper half.

As with the instance-based reduction, the satisfiable direction is
constructive: :func:`pair_from_assignment` materialises the counterexample
update pair the proof describes (assignment signs move into the upper
half), and the tests verify it against the independent validity checker.
The generated problems also drive the NEXPTIME-cell benchmarks: they are
mixed-type, with predicates and descendant edges — exactly the fragment
where the paper's upper bound explodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.model import (
    ConstraintSet,
    UpdateConstraint,
    no_insert,
    no_remove,
)
from repro.reductions.cnf import CNF
from repro.trees.tree import DataTree


@dataclass(frozen=True)
class GeneralHardnessProblem:
    """One generated instance of the Theorem 4.6 reduction."""

    formula: CNF
    premises: ConstraintSet
    conclusion: UpdateConstraint


def _x(i: int) -> str:
    return f"x{i}"


def _conclusion_path(n: int) -> str:
    upper = "/s/" + _x(1) + "".join(f"//{_x(i)}" for i in range(2, n + 1))
    lower = "".join(f"//{_x(i)}//+//-" for i in range(1, n + 1))
    return f"{upper}//m{lower}//e"


def _sub_path(n: int) -> str:
    """The sub-pattern ``p`` following ``s`` in the conclusion range."""
    upper = f"//{_x(1)}" + "".join(f"//{_x(i)}" for i in range(2, n + 1))
    lower = "".join(f"//{_x(i)}//+//-" for i in range(1, n + 1))
    return f"{upper}//m{lower}//e"


def build_problem(formula: CNF) -> GeneralHardnessProblem:
    """Emit ``(C, c)`` with ``C ⊨ c`` iff ``formula`` is unsatisfiable."""
    n = formula.n_vars
    p = _sub_path(n)
    constraints: list[UpdateConstraint] = []

    # Group 1: the path to e in I is clean (no stray x/m/sign nodes in gaps).
    constraints.append(no_remove(f"/s[//m//m]{p}"))
    for i in range(1, n + 1):
        constraints.append(no_remove(f"/s[//{_x(i)}//{_x(i)}//m]{p}"))
        constraints.append(no_remove(f"/s[//m//{_x(i)}//{_x(i)}]{p}"))
        for j in range(1, i):
            constraints.append(no_remove(f"/s[//{_x(i)}//{_x(j)}//m]{p}"))
            constraints.append(no_remove(f"/s[//m//{_x(i)}//{_x(j)}]{p}"))
    constraints.append(no_remove(f"/s[//+//m]{p}"))
    constraints.append(no_remove(f"/s[//-//m]{p}"))
    for i in range(1, n):
        constraints.append(no_remove(f"/s[//m//{_x(i)}//+//+//{_x(i + 1)}]{p}"))
        constraints.append(no_remove(f"/s[//m//{_x(i)}//-//-//{_x(i + 1)}]{p}"))

    # e itself must stay on the general path.
    skeleton = "/s//" + "//".join(_x(i) for i in range(1, n + 1)) + "//m//" + \
        "//".join(_x(i) for i in range(1, n + 1)) + "//e"
    constraints.append(no_remove(skeleton))

    # Structure of the path to e in J.
    constraints.append(no_insert("/s//m//m//e"))
    for i in range(1, n + 1):
        constraints.append(no_insert(f"/s//{_x(i)}//{_x(i)}//m//e"))
        constraints.append(no_insert(f"/s//m//{_x(i)}//{_x(i)}//e"))

    # All n +'s and -'s stay on the path.
    constraints.append(no_remove("/s" + "//+" * n + "//e"))
    constraints.append(no_remove("/s" + "//-" * n + "//e"))

    # At most one sign between consecutive x's in the upper half...
    for i in range(1, n):
        for s1, s2 in ("++", "--", "+-", "-+"):
            constraints.append(
                no_insert(f"/s//{_x(i)}//{s1}//{s2}//{_x(i + 1)}//m//e"))
    # ... and in the lower half no two same signs nor '-' before '+'.
    for i in range(1, n):
        for s1, s2 in ("++", "--", "-+"):
            constraints.append(
                no_insert(f"/s//m//{_x(i)}//{s1}//{s2}//{_x(i + 1)}//e"))

    # Moving any sign up forces a perfect split.
    for j in range(1, n):
        constraints.append(no_insert(f"/s//+//m//{_x(j)}//+//-//{_x(j + 1)}//e"))
        constraints.append(no_insert(f"/s//-//m//{_x(j)}//+//-//{_x(j + 1)}//e"))

    # Clause constraints: the satisfying signs cannot all stay in the lower
    # half (i.e. at least one satisfying literal moved to the upper half).
    for clause_ in formula.clauses:
        unique = {(lit.var, lit.positive) for lit in clause_}
        if len({var for var, _ in unique}) < len(unique):
            continue  # tautological clause (x and ¬x): always satisfied
        by_var = sorted(set(clause_), key=lambda lit: lit.var)
        inner = ""
        last_boundary: int | None = None
        for lit in by_var:
            sign = "+" if lit.positive else "-"
            if last_boundary != lit.var:
                inner += f"//{_x(lit.var)}"
            inner += f"//{sign}"
            nxt = lit.var + 1
            if nxt <= n:
                inner += f"//{_x(nxt)}"
                last_boundary = nxt
            else:
                last_boundary = None
        for lead in "+-":
            constraints.append(no_insert(f"/s//{lead}//m{inner}//e"))

    conclusion = no_remove(_conclusion_path(n))
    return GeneralHardnessProblem(formula, ConstraintSet(constraints), conclusion)


def pair_from_assignment(problem: GeneralHardnessProblem,
                         assignment: dict[int, bool]) -> tuple[DataTree, DataTree, int]:
    """The counterexample update pair encoded by a satisfying assignment.

    ``I`` is the clean conclusion path (upper half sign-free, lower half
    ``xi, +, -`` triplets); ``J`` moves, for each variable, its satisfying
    sign into the upper half right below ``xi``.  Returns ``(I, J, e_id)``.
    """
    n = problem.formula.n_vars
    before = DataTree()
    s_node = before.add_child(before.root, "s")
    parent = s_node
    upper_x: dict[int, int] = {}
    lower_x: dict[int, int] = {}
    for i in range(1, n + 1):
        parent = before.add_child(parent, _x(i))
        upper_x[i] = parent
    m_node = before.add_child(parent, "m")
    parent = m_node
    signs: dict[tuple[int, str], int] = {}
    for i in range(1, n + 1):
        parent = before.add_child(parent, _x(i))
        lower_x[i] = parent
        plus = before.add_child(parent, "+")
        minus = before.add_child(plus, "-")
        signs[(i, "+")] = plus
        signs[(i, "-")] = minus
        parent = minus
    e_node = before.add_child(parent, "e")

    # J is rebuilt as a single path with the same identifiers, the
    # satisfying sign of each variable relocated to the upper half.
    after = DataTree()
    order: list[int] = [s_node]
    for i in range(1, n + 1):
        good = "+" if assignment[i] else "-"
        order.extend([upper_x[i], signs[(i, good)]])
    order.append(m_node)
    for i in range(1, n + 1):
        bad = "-" if assignment[i] else "+"
        order.extend([lower_x[i], signs[(i, bad)]])
    order.append(e_node)
    parent = after.root
    for nid in order:
        parent = after.add_child(parent, before.label(nid), nid=nid)
    return before, after, e_node

"""3CNF formulas with a brute-force satisfiability oracle.

The coNP-hardness proofs of Theorems 4.6, 5.2 and 5.6 reduce from 3CNF
unsatisfiability.  The reduction generators consume this representation;
the exhaustive SAT oracle supplies ground truth for the (tiny) formulas the
tests exercise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from collections.abc import Iterator


@dataclass(frozen=True)
class Literal:
    """A literal: variable index (1-based) and polarity."""

    var: int
    positive: bool

    def holds(self, assignment: dict[int, bool]) -> bool:
        return assignment[self.var] == self.positive

    def __str__(self) -> str:
        return ("x" if self.positive else "¬x") + str(self.var)


Clause = tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class CNF:
    """A 3CNF formula over variables ``x1 .. xn``."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if not 1 <= literal.var <= self.n_vars:
                    raise ValueError(f"literal {literal} out of range")

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return all(any(lit.holds(assignment) for lit in clause)
                   for clause in self.clauses)

    def assignments(self) -> Iterator[dict[int, bool]]:
        for values in product((False, True), repeat=self.n_vars):
            yield {i + 1: value for i, value in enumerate(values)}

    def satisfying_assignment(self) -> dict[int, bool] | None:
        for assignment in self.assignments():
            if self.evaluate(assignment):
                return assignment
        return None

    @property
    def satisfiable(self) -> bool:
        return self.satisfying_assignment() is not None

    def __str__(self) -> str:
        return " ∧ ".join(
            "(" + " ∨ ".join(str(lit) for lit in clause) + ")"
            for clause in self.clauses
        )


def clause(*spec: int) -> Clause:
    """Build a clause from signed variable indices, e.g. ``clause(1, -2, 3)``."""
    if len(spec) != 3:
        raise ValueError("3CNF clauses have exactly three literals")
    return tuple(Literal(abs(v), v > 0) for v in spec)  # type: ignore[return-value]


def cnf(n_vars: int, *clauses: Clause) -> CNF:
    return CNF(n_vars, tuple(clauses))


def random_3cnf(rng: random.Random, n_vars: int, n_clauses: int) -> CNF:
    """A uniformly random 3CNF formula (variables may repeat in a clause)."""
    clauses = []
    for _ in range(n_clauses):
        vars_ = rng.sample(range(1, n_vars + 1), k=min(3, n_vars))
        while len(vars_) < 3:
            vars_.append(rng.randint(1, n_vars))
        clauses.append(tuple(
            Literal(v, rng.random() < 0.5) for v in vars_
        ))
    return CNF(n_vars, tuple(clauses))  # type: ignore[arg-type]


# Canonical tiny examples used across tests and benchmarks.
EXAMPLE_SAT = cnf(3, clause(1, -2, 3), clause(-1, 2, 3))
EXAMPLE_UNSAT = cnf(
    2,
    clause(1, 1, 2), clause(1, 1, -2), clause(-1, -1, 2), clause(-1, -1, -2),
)

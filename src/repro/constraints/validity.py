"""Validity of instance pairs with respect to update constraints.

Definition 2.3: ``(I, J) ⊨ (q, ↑)`` iff ``q(I) ⊆ q(J)``, and
``(I, J) ⊨ (q, ↓)`` iff ``q(J) ⊆ q(I)`` — inclusions of *node sets*
(``(id, label)`` pairs), so a node that moved but kept its identity still
counts, while a node replaced by a fresh copy does not.

Besides the boolean check, :func:`explain_violations` produces per-constraint
witness nodes — these are the machine-checkable certificates the implication
engines attach to "not implied" verdicts, and the audit trail the examples
print.  :func:`check_sequence` implements the pairwise-validity notion of
Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.evaluator import evaluate


@dataclass(frozen=True)
class Violation:
    """Witness that a pair breaks one constraint.

    ``removed`` lists nodes in ``q(I) - q(J)`` for a no-remove constraint;
    ``inserted`` lists nodes in ``q(J) - q(I)`` for a no-insert constraint.
    """

    constraint: UpdateConstraint
    removed: frozenset[Node]
    inserted: frozenset[Node]

    def __str__(self) -> str:
        parts = []
        if self.removed:
            names = ", ".join(sorted(str(n) for n in self.removed))
            parts.append(f"removed from range: {names}")
        if self.inserted:
            names = ", ".join(sorted(str(n) for n in self.inserted))
            parts.append(f"inserted into range: {names}")
        return f"{self.constraint} violated ({'; '.join(parts)})"


def range_violation(constraint: UpdateConstraint,
                    answers_before: Iterable[Node],
                    answers_after: Iterable[Node]) -> Violation | None:
    """Definition 2.3 on *already-evaluated* answer sets.

    The node-set diff shared by :func:`violation_of` (which evaluates both
    sides) and :class:`BaselineValidity` (which froze the before side once
    and re-evaluates only the live side per stream operation).
    """
    before_set = (answers_before if isinstance(answers_before, (set, frozenset))
                  else set(answers_before))
    after_set = (answers_after if isinstance(answers_after, (set, frozenset))
                 else set(answers_after))
    if constraint.type is ConstraintType.NO_REMOVE:
        missing = before_set - after_set
        if missing:
            return Violation(constraint, frozenset(missing), frozenset())
        return None
    extra = after_set - before_set
    if extra:
        return Violation(constraint, frozenset(), frozenset(extra))
    return None


def violation_of(before: DataTree, after: DataTree,
                 constraint: UpdateConstraint,
                 before_ctx=None, after_ctx=None) -> Violation | None:
    """The violation witness of one constraint on ``(before, after)``.

    ``before_ctx`` / ``after_ctx`` optionally carry
    :class:`repro.xpath.indexed.IndexedEvaluator` snapshots of the two
    trees; the refutation searches re-check thousands of candidate pasts
    against one fixed ``after``, so its snapshot amortises across them all.
    """
    answers_before = evaluate(constraint.range, before, context=before_ctx)
    answers_after = evaluate(constraint.range, after, context=after_ctx)
    return range_violation(constraint, answers_before, answers_after)


def satisfies(before: DataTree, after: DataTree,
              constraint: UpdateConstraint,
              before_ctx=None, after_ctx=None) -> bool:
    """Definition 2.3 for a single constraint."""
    return violation_of(before, after, constraint,
                        before_ctx=before_ctx, after_ctx=after_ctx) is None


def is_valid(before: DataTree, after: DataTree,
             constraints: ConstraintSet | Iterable[UpdateConstraint],
             before_ctx=None, after_ctx=None) -> bool:
    """Is the pair valid for every constraint?"""
    return all(satisfies(before, after, c,
                         before_ctx=before_ctx, after_ctx=after_ctx)
               for c in constraints)


def explain_violations(before: DataTree, after: DataTree,
                       constraints: ConstraintSet | Iterable[UpdateConstraint],
                       before_ctx=None, after_ctx=None) -> list[Violation]:
    """All violation witnesses of the pair (empty list = valid)."""
    found = []
    for constraint in constraints:
        violation = violation_of(before, after, constraint,
                                 before_ctx=before_ctx, after_ctx=after_ctx)
        if violation is not None:
            found.append(violation)
    return found


class BaselineValidity:
    """Violation checking of a live document against a frozen baseline.

    The online-enforcement setting (:mod:`repro.stream`) asks the same
    question after every operation: does the *cumulative* edit — the pair
    ``(I₀, J_now)`` of the stream's opening instance and the live document
    — still satisfy every constraint?  The before side of Definition 2.3
    never changes, so it is evaluated exactly once here and frozen as
    ``(id, label)`` node sets; per operation only the live side is
    re-evaluated (through the caller's snapshot evaluator, whose predicate
    masks are delta-maintained across the stream's edits) and diffed.
    """

    __slots__ = ("_constraints", "_baseline")

    def __init__(self, constraints: ConstraintSet | Iterable[UpdateConstraint],
                 baseline: DataTree, context=None):
        self._constraints: list[UpdateConstraint] = list(constraints)
        self._baseline: dict[UpdateConstraint, frozenset[Node]] = {
            c: frozenset(evaluate(c.range, baseline, context=context))
            for c in self._constraints
        }

    @classmethod
    def from_answers(cls, constraints: ConstraintSet | Iterable[UpdateConstraint],
                     answers: Sequence[Iterable[Node]]) -> "BaselineValidity":
        """Rebuild a checker from *already-evaluated* baseline answer sets.

        ``answers`` aligns positionally with ``constraints`` — the shape
        :meth:`repro.stream.engine.StreamEnforcer.state_dict` captures, so
        a recovered stream keeps checking against the instance it *opened*
        on rather than rebasing to the snapshot it restored from (rebasing
        would silently extend no-remove protection to nodes added since
        the stream opened).
        """
        checker = cls.__new__(cls)
        checker._constraints = list(constraints)
        if len(answers) != len(checker._constraints):
            raise ValueError(
                f"{len(answers)} baseline answer set(s) for "
                f"{len(checker._constraints)} constraint(s)")
        checker._baseline = {
            c: frozenset(nodes)
            for c, nodes in zip(checker._constraints, answers, strict=True)
        }
        return checker

    @property
    def constraints(self) -> tuple[UpdateConstraint, ...]:
        return tuple(self._constraints)

    def baseline_answers(self) -> dict[UpdateConstraint, frozenset[Node]]:
        """``{c: q_c(I₀)}`` as captured at construction (a shallow copy)."""
        return dict(self._baseline)

    def violations(self, current: DataTree, context=None) -> list[Violation]:
        """All witnesses of ``(I₀, current)`` (empty list = still valid)."""
        found: list[Violation] = []
        for constraint in self._constraints:
            answers_now = evaluate(constraint.range, current, context=context)
            violation = range_violation(constraint, self._baseline[constraint],
                                        answers_now)
            if violation is not None:
                found.append(violation)
        return found

    def is_valid(self, current: DataTree, context=None) -> bool:
        """Does ``(I₀, current)`` satisfy every constraint?"""
        for constraint in self._constraints:
            answers_now = evaluate(constraint.range, current, context=context)
            if range_violation(constraint, self._baseline[constraint],
                               answers_now) is not None:
                return False
        return True

    def __repr__(self) -> str:
        return f"BaselineValidity({len(self._constraints)} constraints)"


def check_sequence(instances: Sequence[DataTree],
                   constraints: ConstraintSet | Iterable[UpdateConstraint],
                   pairwise: bool = True) -> list[tuple[int, int, Violation]]:
    """Validity of an instance sequence (Section 2.2).

    With ``pairwise=True`` every pair ``(I_i, I_j), i < j`` is checked (the
    paper's *pairwise valid* notion); otherwise only ``(I_0, I_k)`` — the
    data-oriented *valid for I_k* notion.  Returns all violations found,
    tagged with the pair indices.
    """
    from repro.xpath.indexed import IndexedEvaluator

    constraint_list = list(constraints)
    problems: list[tuple[int, int, Violation]] = []
    if pairwise:
        pairs = [
            (i, j)
            for i in range(len(instances))
            for j in range(i + 1, len(instances))
        ]
    else:
        pairs = [(0, len(instances) - 1)] if len(instances) > 1 else []
    # Each checked instance participates in up to n-1 pairs; one snapshot
    # per instance shares every range's evaluation across them.  Instances
    # outside `pairs` (non-pairwise mode) never pay for a snapshot.
    needed = {index for pair in pairs for index in pair}
    contexts = {index: IndexedEvaluator.for_tree(instances[index])
                for index in needed}
    for i, j in pairs:
        for violation in explain_violations(instances[i], instances[j],
                                            constraint_list,
                                            before_ctx=contexts[i],
                                            after_ctx=contexts[j]):
            problems.append((i, j, violation))
    return problems

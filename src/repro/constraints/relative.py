"""Relative update constraints (Section 6).

A relative constraint ``(q_s, q_r, σ)`` fixes a *scope* query and requires,
for every node ``x`` selected by the scope in **both** instances, that the
range evaluated *at* ``x`` only grows (``↑``) or only shrinks (``↓``)::

    (I, J) ⊨ (q_s, q_r, ↑)   iff   ∀ x ∈ q_s(I) ∩ q_s(J):  q_r(x, I) ⊆ q_r(x, J)

The paper only sketches this extension; we implement its semantics exactly
(Definition 6.2), the absolute-constraint embedding (scope = root), and the
two phenomena it demonstrates:

* Example 6.1 — the *same-type property* of Theorem 4.1 fails for relative
  constraints even in ``XP{/,[]}``;
* Example 6.2 — stepwise-valid sequences need not compose: a *friend*'s
  appointment can be deleted in three individually-valid steps.

Both examples ship as executable constructors used by tests and the
``relative_constraints`` example script.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.trees.tree import DataTree
from repro.xpath.ast import Pattern
from repro.xpath.evaluator import evaluate, evaluate_ids
from repro.xpath.parser import parse


@dataclass(frozen=True)
class RelativeConstraint:
    """A scoped update constraint ``(scope, range, type)`` (Definition 6.1)."""

    scope: Pattern
    range: Pattern
    type: ConstraintType

    def __str__(self) -> str:
        return f"({self.scope}, {self.range}, {self.type.arrow})"


def relative(scope: str | Pattern, range_: str | Pattern, kind: str) -> RelativeConstraint:
    """Build a relative constraint from XPath text.

    ``kind`` is ``"up"`` (no-remove) or ``"down"`` (no-insert).
    """
    scope_p = parse(scope) if isinstance(scope, str) else scope
    range_p = parse(range_) if isinstance(range_, str) else range_
    ctype = ConstraintType.NO_REMOVE if kind in ("up", "^", "↑") else ConstraintType.NO_INSERT
    return RelativeConstraint(scope_p, range_p, ctype)


def satisfies_relative(before: DataTree, after: DataTree,
                       constraint: RelativeConstraint) -> bool:
    """Definition 6.2: check the constraint at every shared scope node."""
    scope_before = evaluate(constraint.scope, before)
    scope_after = evaluate(constraint.scope, after)
    for node in scope_before & scope_after:
        at_before = evaluate(constraint.range, before, start=node.nid)
        at_after = evaluate(constraint.range, after, start=node.nid)
        if constraint.type is ConstraintType.NO_REMOVE:
            if not at_before <= at_after:
                return False
        else:
            if not at_after <= at_before:
                return False
    return True


def relative_violations(before: DataTree, after: DataTree,
                        constraint: RelativeConstraint) -> list[tuple[int, frozenset]]:
    """Scope nodes at which the constraint breaks, with the offending nodes."""
    problems: list[tuple[int, frozenset]] = []
    scope_shared = (
        evaluate_ids(constraint.scope, before) & evaluate_ids(constraint.scope, after)
    )
    for scope_nid in scope_shared:
        at_before = evaluate(constraint.range, before, start=scope_nid)
        at_after = evaluate(constraint.range, after, start=scope_nid)
        if constraint.type is ConstraintType.NO_REMOVE:
            bad = at_before - at_after
        else:
            bad = at_after - at_before
        if bad:
            problems.append((scope_nid, frozenset(bad)))
    return problems


def as_absolute(constraint: UpdateConstraint) -> RelativeConstraint:
    """Embed an absolute constraint: scope = the root.

    The paper notes (Example 6.1) that ``(q, σ)`` is the relative constraint
    with root scope.  We model the root scope with the trivial scope pattern
    handled specially in :func:`satisfies_scoped_or_absolute`; here we simply
    keep the range and type and mark the scope as ``None``-like by using the
    range itself, so prefer :func:`satisfies` for absolute constraints.
    """
    raise NotImplementedError(
        "absolute constraints are checked by repro.constraints.validity; "
        "the root scope needs no relative machinery"
    )


# ----------------------------------------------------------------------
# Example 6.1 — failure of the same-type property for relative constraints
# ----------------------------------------------------------------------
def example_61() -> tuple[list, UpdateConstraint, UpdateConstraint, RelativeConstraint]:
    """The constraint family of Example 6.1.

    Returns ``(C, c, c3, c2_relative)`` where ``C`` mixes two absolute
    constraints with one relative constraint::

        c1 = (/patient, ↓)
        c2 = (/patient, /visit, ↓)     (relative)
        c3 = (/patient/visit, ↑)
        c  = (/patient[/visit], ↑)

    ``C`` implies ``c`` but the no-remove constraint ``c3`` alone does not —
    the same-type property fails in ``XP{/,[]}`` once scopes are allowed.
    """
    from repro.constraints.model import no_insert, no_remove

    c1 = no_insert("/patient")
    c2 = relative("/patient", "/visit", "down")
    c3 = no_remove("/patient/visit")
    c = no_remove("/patient[/visit]")
    return ([c1, c2, c3], c, c3, c2)


# ----------------------------------------------------------------------
# Example 6.2 — stepwise validity does not compose
# ----------------------------------------------------------------------
def example_62() -> tuple[RelativeConstraint, list[DataTree]]:
    """The appointment-deletion sequence of Example 6.2.

    Builds the relative constraint
    ``(/person[/friend], /appointment, ↑)`` and a sequence
    ``I0 → I1 → I2 → I3`` in which every consecutive pair is valid but the
    overall pair ``(I0, I3)`` silently loses a friend's appointment.
    """
    from repro.trees.builders import branch, build

    constraint = relative("/person[/friend]", "/appointment", "up")

    person_id, friend_id, appointment_id = 9001, 9002, 9003
    i0 = build(
        branch(
            "person",
            branch("friend", nid=friend_id),
            branch("appointment", nid=appointment_id),
            nid=person_id,
        )
    )
    # Step 1: drop the friend qualifier — the scope no longer selects person.
    i1 = i0.copy()
    i1.remove_subtree(friend_id)
    # Step 2: delete the appointment — allowed, person is not in scope.
    i2 = i1.copy()
    i2.remove_subtree(appointment_id)
    # Step 3: restore the friend qualifier (as a fresh node).
    i3 = i2.copy()
    i3.add_child(person_id, "friend")
    return constraint, [i0, i1, i2, i3]

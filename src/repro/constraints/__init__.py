"""Update constraints, validity, and the relative extension (Sections 2, 6)."""

from repro.constraints.model import (
    NO_INSERT,
    NO_REMOVE,
    ConstraintSet,
    ConstraintType,
    UpdateConstraint,
    constraint_set,
    immutable,
    no_insert,
    no_remove,
)
from repro.constraints.relative import (
    RelativeConstraint,
    example_61,
    example_62,
    relative,
    relative_violations,
    satisfies_relative,
)
from repro.constraints.validity import (
    BaselineValidity,
    Violation,
    check_sequence,
    explain_violations,
    is_valid,
    range_violation,
    satisfies,
    violation_of,
)

__all__ = [
    "ConstraintType",
    "UpdateConstraint",
    "ConstraintSet",
    "constraint_set",
    "no_remove",
    "no_insert",
    "immutable",
    "NO_REMOVE",
    "NO_INSERT",
    "Violation",
    "violation_of",
    "range_violation",
    "BaselineValidity",
    "satisfies",
    "is_valid",
    "explain_violations",
    "check_sequence",
    "RelativeConstraint",
    "relative",
    "satisfies_relative",
    "relative_violations",
    "example_61",
    "example_62",
]

"""XML update constraints (Definitions 2.2 and 2.3).

An update constraint is a pair ``(q, σ)`` of a *range* query and a *type*:

* ``NO_REMOVE`` (``↑``): the answer set of ``q`` may only grow —
  ``q(I) ⊆ q(J)``;
* ``NO_INSERT`` (``↓``): the answer set may only shrink — ``q(J) ⊆ q(I)``.

Immutability (the paper's ``(q, ↕)`` shorthand) is the conjunction of both
and is modelled as a pair of constraints (:func:`immutable`).

:class:`ConstraintSet` is the container used by every engine: it validates
concreteness, exposes per-type views, the joint fragment, the label
alphabet and the star length — all parameters of the paper's complexity
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from collections.abc import Iterable, Iterator

from repro.errors import NotConcreteError
from repro.xpath.ast import Pattern
from repro.xpath.canonical import canonical_pattern
from repro.xpath.parser import parse
from repro.xpath.properties import Fragment, fragment_of, labels_of, max_star_length


class ConstraintType(Enum):
    """The two update-restriction types of Definition 2.2."""

    NO_REMOVE = "no-remove"   # ↑ : q(I) ⊆ q(J)
    NO_INSERT = "no-insert"   # ↓ : q(J) ⊆ q(I)

    @property
    def arrow(self) -> str:
        return "↑" if self is ConstraintType.NO_REMOVE else "↓"

    @property
    def opposite(self) -> "ConstraintType":
        if self is ConstraintType.NO_REMOVE:
            return ConstraintType.NO_INSERT
        return ConstraintType.NO_REMOVE


NO_REMOVE = ConstraintType.NO_REMOVE
NO_INSERT = ConstraintType.NO_INSERT


@dataclass(frozen=True, eq=False)
class UpdateConstraint:
    """One update constraint ``(range, type)``.

    Equality and hashing go through the *canonical form* of the range
    (predicates sorted and deduplicated), so equal constraints always
    denote the same query with the same type — the soundness invariant the
    session-API memo caches (:mod:`repro.api`) rely on.  The converse does
    not hold: canonicalisation is not minimisation, so semantically
    equivalent ranges with different shapes (e.g. ``/a[/b][/b/c]`` vs
    ``/a[/b/c]``) still compare unequal.
    """

    range: Pattern
    type: ConstraintType

    def __str__(self) -> str:
        return f"({self.range}, {self.type.arrow})"

    def __repr__(self) -> str:
        return f"UpdateConstraint({str(self.range)!r}, {self.type.name})"

    @cached_property
    def canonical_key(self) -> tuple[Pattern, ConstraintType]:
        """The (canonical range, type) pair equality and hashing key on."""
        return (canonical_pattern(self.range), self.type)

    @cached_property
    def _canonical_hash(self) -> int:
        # Hashing walks the whole canonical pattern; constraints are dict
        # keys in the engines' inner loops, so the value is computed once.
        return hash(self.canonical_key)

    def canonical(self) -> "UpdateConstraint":
        """The same constraint with its range in canonical form."""
        pattern = canonical_pattern(self.range)
        # Structural (dataclass) equality of patterns: an already-normal
        # range keeps its constraint object instead of allocating a copy.
        return self if pattern == self.range else UpdateConstraint(pattern, self.type)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, UpdateConstraint):
            return NotImplemented
        return self.canonical_key == other.canonical_key

    def __hash__(self) -> int:
        return self._canonical_hash

    @property
    def is_concrete(self) -> bool:
        return self.range.is_concrete

    def require_concrete(self) -> None:
        """Engines following the paper's presentation assume concrete paths."""
        if not self.is_concrete:
            raise NotConcreteError(
                f"constraint {self} has a wildcard output; the paper's "
                "procedures are stated for concrete paths"
            )

    def flipped(self) -> "UpdateConstraint":
        """The same range with the opposite type (used by symmetry reductions)."""
        return UpdateConstraint(self.range, self.type.opposite)


def no_remove(query: str | Pattern) -> UpdateConstraint:
    """Build a ``(q, ↑)`` constraint from a pattern or XPath text."""
    return UpdateConstraint(_as_pattern(query), ConstraintType.NO_REMOVE)


def no_insert(query: str | Pattern) -> UpdateConstraint:
    """Build a ``(q, ↓)`` constraint from a pattern or XPath text."""
    return UpdateConstraint(_as_pattern(query), ConstraintType.NO_INSERT)


def immutable(query: str | Pattern) -> tuple[UpdateConstraint, UpdateConstraint]:
    """The paper's ``(q, ↕)``: the answer set of ``q`` cannot change."""
    pattern = _as_pattern(query)
    return (
        UpdateConstraint(pattern, ConstraintType.NO_REMOVE),
        UpdateConstraint(pattern, ConstraintType.NO_INSERT),
    )


def _as_pattern(query: str | Pattern) -> Pattern:
    return parse(query) if isinstance(query, str) else query


class ConstraintSet:
    """An immutable collection of update constraints with cached analysis."""

    __slots__ = ("_constraints", "_fragment", "_star", "_key")

    def __init__(self, constraints: Iterable[UpdateConstraint]):
        self._constraints: tuple[UpdateConstraint, ...] = tuple(constraints)
        self._fragment: Fragment | None = None
        self._star: int | None = None
        self._key: frozenset[tuple[Pattern, ConstraintType]] | None = None

    def __iter__(self) -> Iterator[UpdateConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self._constraints) + "}"

    def __repr__(self) -> str:
        members = ", ".join(repr(c) for c in self._constraints)
        return f"ConstraintSet([{members}])"

    def canonical_key(self) -> frozenset[tuple[Pattern, ConstraintType]]:
        """Order- and duplicate-insensitive identity of the set.

        Constraint sets with equal keys entail exactly the same conclusions
        (a constraint set is semantically a set); unequal keys may still be
        semantically equivalent, since canonical forms are not minimised.
        This makes whole sets sound dictionary keys — e.g. for a registry
        pooling one compiled session per distinct premise set.
        """
        if self._key is None:
            self._key = frozenset(c.canonical_key for c in self._constraints)
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    @property
    def constraints(self) -> tuple[UpdateConstraint, ...]:
        return self._constraints

    @property
    def ranges(self) -> tuple[Pattern, ...]:
        return tuple(c.range for c in self._constraints)

    def of_type(self, ctype: ConstraintType) -> "ConstraintSet":
        """The sub-collection ``C_σ`` of one type (Section 4.1)."""
        return ConstraintSet(c for c in self._constraints if c.type is ctype)

    @property
    def no_remove(self) -> "ConstraintSet":
        return self.of_type(ConstraintType.NO_REMOVE)

    @property
    def no_insert(self) -> "ConstraintSet":
        return self.of_type(ConstraintType.NO_INSERT)

    @property
    def is_single_type(self) -> bool:
        return len({c.type for c in self._constraints}) <= 1

    def fragment(self, *extra: Pattern) -> Fragment:
        """Joint fragment of all ranges (and optional extra patterns).

        The no-extra case is memoised — it is what every dispatch decision
        consults, and the set is immutable.
        """
        if self._fragment is None:
            self._fragment = fragment_of(*self.ranges)
        if not extra:
            return self._fragment
        return self._fragment | fragment_of(*extra)

    def labels(self, *extra: Pattern) -> set[str]:
        return labels_of(*(self.ranges + tuple(extra)))

    def star_length(self, *extra: Pattern) -> int:
        """Star length over the ranges (memoised) and optional extras."""
        if self._star is None:
            self._star = max_star_length(self.ranges)
        if not extra:
            return self._star
        return max(self._star, max_star_length(extra))

    def require_concrete(self) -> None:
        for constraint in self._constraints:
            constraint.require_concrete()

    def with_constraint(self, constraint: UpdateConstraint) -> "ConstraintSet":
        return ConstraintSet(self._constraints + (constraint,))


def constraint_set(*specs: UpdateConstraint | tuple[str, str] | str) -> ConstraintSet:
    """Ergonomic constructor.

    Accepts :class:`UpdateConstraint` objects, ``(xpath, "up"/"down")``
    tuples, or strings of the form ``"/a/b ^"`` / ``"/a/b v"``.  String
    specs tolerate surrounding and repeated whitespace (``"/a/b   ↑  "``);
    a spec without both parts raises a :class:`ValueError` naming it.

    >>> C = constraint_set(("/a/b", "up"), ("/a", "down"))
    >>> len(C)
    2
    """
    built: list[UpdateConstraint] = []
    for spec in specs:
        if isinstance(spec, UpdateConstraint):
            built.append(spec)
        elif isinstance(spec, tuple):
            query, kind = spec
            built.append(_from_kind(query, kind))
        else:
            parts = spec.split()
            if len(parts) != 2:
                raise ValueError(
                    f"constraint spec {spec!r} must be '<xpath> <type>', e.g. "
                    "'/a/b ^' or '/a/b v' (the fragment's paths contain no "
                    "whitespace)"
                )
            built.append(_from_kind(parts[0], parts[1]))
    return ConstraintSet(built)


_UP_NAMES = {"up", "^", "↑", "no-remove", "grow"}
_DOWN_NAMES = {"down", "v", "↓", "no-insert", "shrink"}


def _from_kind(query: str, kind: str) -> UpdateConstraint:
    kind = kind.strip().lower()
    if kind in _UP_NAMES:
        return no_remove(query)
    if kind in _DOWN_NAMES:
        return no_insert(query)
    raise ValueError(f"unknown constraint type {kind!r}")

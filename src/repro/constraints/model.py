"""XML update constraints (Definitions 2.2 and 2.3).

An update constraint is a pair ``(q, σ)`` of a *range* query and a *type*:

* ``NO_REMOVE`` (``↑``): the answer set of ``q`` may only grow —
  ``q(I) ⊆ q(J)``;
* ``NO_INSERT`` (``↓``): the answer set may only shrink — ``q(J) ⊆ q(I)``.

Immutability (the paper's ``(q, ↕)`` shorthand) is the conjunction of both
and is modelled as a pair of constraints (:func:`immutable`).

:class:`ConstraintSet` is the container used by every engine: it validates
concreteness, exposes per-type views, the joint fragment, the label
alphabet and the star length — all parameters of the paper's complexity
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import NotConcreteError
from repro.xpath.ast import Pattern
from repro.xpath.parser import parse
from repro.xpath.properties import Fragment, fragment_of, labels_of, max_star_length


class ConstraintType(Enum):
    """The two update-restriction types of Definition 2.2."""

    NO_REMOVE = "no-remove"   # ↑ : q(I) ⊆ q(J)
    NO_INSERT = "no-insert"   # ↓ : q(J) ⊆ q(I)

    @property
    def arrow(self) -> str:
        return "↑" if self is ConstraintType.NO_REMOVE else "↓"

    @property
    def opposite(self) -> "ConstraintType":
        if self is ConstraintType.NO_REMOVE:
            return ConstraintType.NO_INSERT
        return ConstraintType.NO_REMOVE


NO_REMOVE = ConstraintType.NO_REMOVE
NO_INSERT = ConstraintType.NO_INSERT


@dataclass(frozen=True)
class UpdateConstraint:
    """One update constraint ``(range, type)``."""

    range: Pattern
    type: ConstraintType

    def __str__(self) -> str:
        return f"({self.range}, {self.type.arrow})"

    @property
    def is_concrete(self) -> bool:
        return self.range.is_concrete

    def require_concrete(self) -> None:
        """Engines following the paper's presentation assume concrete paths."""
        if not self.is_concrete:
            raise NotConcreteError(
                f"constraint {self} has a wildcard output; the paper's "
                "procedures are stated for concrete paths"
            )

    def flipped(self) -> "UpdateConstraint":
        """The same range with the opposite type (used by symmetry reductions)."""
        return UpdateConstraint(self.range, self.type.opposite)


def no_remove(query: str | Pattern) -> UpdateConstraint:
    """Build a ``(q, ↑)`` constraint from a pattern or XPath text."""
    return UpdateConstraint(_as_pattern(query), ConstraintType.NO_REMOVE)


def no_insert(query: str | Pattern) -> UpdateConstraint:
    """Build a ``(q, ↓)`` constraint from a pattern or XPath text."""
    return UpdateConstraint(_as_pattern(query), ConstraintType.NO_INSERT)


def immutable(query: str | Pattern) -> tuple[UpdateConstraint, UpdateConstraint]:
    """The paper's ``(q, ↕)``: the answer set of ``q`` cannot change."""
    pattern = _as_pattern(query)
    return (
        UpdateConstraint(pattern, ConstraintType.NO_REMOVE),
        UpdateConstraint(pattern, ConstraintType.NO_INSERT),
    )


def _as_pattern(query: str | Pattern) -> Pattern:
    return parse(query) if isinstance(query, str) else query


class ConstraintSet:
    """An immutable collection of update constraints with cached analysis."""

    __slots__ = ("_constraints", "_fragment", "_star")

    def __init__(self, constraints: Iterable[UpdateConstraint]):
        self._constraints: tuple[UpdateConstraint, ...] = tuple(constraints)
        self._fragment: Fragment | None = None
        self._star: int | None = None

    def __iter__(self) -> Iterator[UpdateConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self._constraints) + "}"

    @property
    def constraints(self) -> tuple[UpdateConstraint, ...]:
        return self._constraints

    @property
    def ranges(self) -> tuple[Pattern, ...]:
        return tuple(c.range for c in self._constraints)

    def of_type(self, ctype: ConstraintType) -> "ConstraintSet":
        """The sub-collection ``C_σ`` of one type (Section 4.1)."""
        return ConstraintSet(c for c in self._constraints if c.type is ctype)

    @property
    def no_remove(self) -> "ConstraintSet":
        return self.of_type(ConstraintType.NO_REMOVE)

    @property
    def no_insert(self) -> "ConstraintSet":
        return self.of_type(ConstraintType.NO_INSERT)

    @property
    def is_single_type(self) -> bool:
        return len({c.type for c in self._constraints}) <= 1

    def fragment(self, *extra: Pattern) -> Fragment:
        """Joint fragment of all ranges (and optional extra patterns)."""
        patterns = self.ranges + tuple(extra)
        if not patterns:
            return Fragment(False, False, False)
        return fragment_of(*patterns)

    def labels(self, *extra: Pattern) -> set[str]:
        return labels_of(*(self.ranges + tuple(extra)))

    def star_length(self, *extra: Pattern) -> int:
        return max_star_length(self.ranges + tuple(extra))

    def require_concrete(self) -> None:
        for constraint in self._constraints:
            constraint.require_concrete()

    def with_constraint(self, constraint: UpdateConstraint) -> "ConstraintSet":
        return ConstraintSet(self._constraints + (constraint,))


def constraint_set(*specs: UpdateConstraint | tuple[str, str] | str) -> ConstraintSet:
    """Ergonomic constructor.

    Accepts :class:`UpdateConstraint` objects, ``(xpath, "up"/"down")``
    tuples, or strings of the form ``"/a/b ^"`` / ``"/a/b v"``.

    >>> C = constraint_set(("/a/b", "up"), ("/a", "down"))
    >>> len(C)
    2
    """
    built: list[UpdateConstraint] = []
    for spec in specs:
        if isinstance(spec, UpdateConstraint):
            built.append(spec)
        elif isinstance(spec, tuple):
            query, kind = spec
            built.append(_from_kind(query, kind))
        else:
            text, _, kind = spec.rpartition(" ")
            built.append(_from_kind(text, kind))
    return ConstraintSet(built)


_UP_NAMES = {"up", "^", "↑", "no-remove", "grow"}
_DOWN_NAMES = {"down", "v", "↓", "no-insert", "shrink"}


def _from_kind(query: str, kind: str) -> UpdateConstraint:
    kind = kind.strip().lower()
    if kind in _UP_NAMES:
        return no_remove(query)
    if kind in _DOWN_NAMES:
        return no_insert(query)
    raise ValueError(f"unknown constraint type {kind!r}")

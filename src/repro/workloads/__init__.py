"""Seeded random workloads for benchmarks and property tests."""

from repro.workloads.generators import (
    FragmentSpec,
    random_constraints,
    random_pattern,
    random_pred,
    random_requests,
    random_tree,
    random_update_stream,
    random_valid_pair,
    scaling_labels,
)

__all__ = [
    "FragmentSpec",
    "random_pattern",
    "random_pred",
    "random_constraints",
    "random_requests",
    "random_tree",
    "random_update_stream",
    "random_valid_pair",
    "scaling_labels",
]

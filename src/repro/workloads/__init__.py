"""Seeded random workloads for benchmarks and property tests."""

from repro.workloads.generators import (
    FragmentSpec,
    mostly_irrelevant_stream,
    random_constraints,
    random_pattern,
    random_pred,
    random_requests,
    random_tree,
    random_update_stream,
    random_valid_pair,
    scaling_labels,
)

__all__ = [
    "FragmentSpec",
    "mostly_irrelevant_stream",
    "random_pattern",
    "random_pred",
    "random_constraints",
    "random_requests",
    "random_tree",
    "random_update_stream",
    "random_valid_pair",
    "scaling_labels",
]

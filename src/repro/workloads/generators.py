"""Random workload generators for property tests and benchmarks.

Everything is seeded and deterministic: every benchmark row in
EXPERIMENTS.md can be regenerated bit-for-bit.  Generators are
fragment-aware so each cell of Table 1 / Table 2 gets inputs from exactly
the XPath fragment its complexity bound speaks about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.model import (
    ConstraintSet,
    ConstraintType,
    UpdateConstraint,
)
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred, Step, normalize


@dataclass(frozen=True)
class FragmentSpec:
    """Which navigational features a generated pattern may use."""

    predicates: bool = True
    descendant: bool = True
    wildcard: bool = True

    @staticmethod
    def from_name(name: str) -> "FragmentSpec":
        return FragmentSpec(
            predicates="[]" in name,
            descendant="//" in name,
            wildcard="*" in name,
        )


def random_pattern(rng: random.Random, labels: list[str], spec: FragmentSpec,
                   spine: int = 3, pred_prob: float = 0.4,
                   max_pred_depth: int = 2) -> Pattern:
    """A random concrete pattern of the given fragment."""
    steps = []
    for position in range(spine):
        axis = Axis.DESC if spec.descendant and rng.random() < 0.5 else Axis.CHILD
        last = position == spine - 1
        if not last and spec.wildcard and rng.random() < 0.25:
            label: str | None = None
        else:
            label = rng.choice(labels)
        preds: tuple[Pred, ...] = ()
        if spec.predicates and not (position == 0) and rng.random() < pred_prob:
            preds = (random_pred(rng, labels, spec, max_pred_depth),)
        steps.append(Step(axis, label, preds))
    return normalize(Pattern(tuple(steps)))


def random_pred(rng: random.Random, labels: list[str], spec: FragmentSpec,
                depth: int) -> Pred:
    axis = Axis.DESC if spec.descendant and rng.random() < 0.4 else Axis.CHILD
    label = None if spec.wildcard and rng.random() < 0.2 else rng.choice(labels)
    children: tuple[Pred, ...] = ()
    if depth > 1 and rng.random() < 0.35:
        children = (random_pred(rng, labels, spec, depth - 1),)
    return Pred(axis, label, children)


def random_constraints(rng: random.Random, labels: list[str], spec: FragmentSpec,
                       count: int, types: str = "mixed",
                       spine: int = 3) -> ConstraintSet:
    """A random premise set; ``types`` is 'up', 'down' or 'mixed'."""
    constraints = []
    for _ in range(count):
        pattern = random_pattern(rng, labels, spec, spine=rng.randint(1, spine))
        if types == "up":
            ctype = ConstraintType.NO_REMOVE
        elif types == "down":
            ctype = ConstraintType.NO_INSERT
        else:
            ctype = rng.choice(list(ConstraintType))
        constraints.append(UpdateConstraint(pattern, ctype))
    return ConstraintSet(constraints)


def random_tree(rng: random.Random, labels: list[str], size: int,
                max_children: int = 4) -> DataTree:
    """A random tree with ``size`` non-root nodes (uniform attachment)."""
    tree = DataTree()
    nodes = [tree.root]
    for _ in range(size):
        parent = rng.choice(nodes)
        if len(tree.children(parent)) >= max_children:
            parent = tree.root
        nid = tree.add_child(parent, rng.choice(labels))
        nodes.append(nid)
    return tree


def random_valid_pair(rng: random.Random, tree: DataTree,
                      constraints: ConstraintSet,
                      edits: int = 4) -> tuple[DataTree, DataTree]:
    """A pair ``(I, J)`` produced by random edits, filtered for validity.

    Edits that break a constraint are rolled back, so the result is always
    valid — a generator of *positive* instances for the validity checker
    and the publishing example.
    """
    from repro.constraints.validity import is_valid

    before = tree.copy()
    after = tree.copy()
    for _ in range(edits):
        candidate = after.copy()
        op = rng.random()
        nodes = [n for n in candidate.node_ids() if n != candidate.root]
        try:
            if op < 0.4 and nodes:
                candidate.remove_subtree(rng.choice(nodes))
            elif op < 0.8:
                parent = rng.choice(list(candidate.node_ids()))
                candidate.add_child(parent, rng.choice(
                    [candidate.label(n) for n in nodes] or ["x"]))
            elif nodes:
                node = rng.choice(nodes)
                target = rng.choice(list(candidate.node_ids()))
                candidate.move(node, target)
        except Exception:
            continue
        if is_valid(before, candidate, constraints):
            after = candidate
    return before, after


def random_update_stream(rng: random.Random, tree: DataTree,
                         labels: list[str], *,
                         constraints: ConstraintSet | None = None,
                         ops: int = 30,
                         violation_rate: float = 0.3,
                         txn_prob: float = 0.15,
                         max_txn_ops: int = 5) -> list:
    """A seeded update log for the enforcement stream (:mod:`repro.stream`).

    Generation is *enforcement-aware*: each candidate operation is drawn
    against a shadow replay of the log so far (same engine, same rollback
    semantics), so every op references nodes that actually exist at its
    point in the log — including after rejections and rolled-back
    transactions.  ``violation_rate`` tunes the fraction of ops drawn
    adversarially at the constraint ranges' baseline answers (the nodes
    whose removal/insertion can break a constraint); the remainder are
    neutral random edits.  Leaf inserts pin fresh node ids, so replaying
    the returned log on a copy of ``tree`` is deterministic.

    Transaction brackets (``Begin``/``Commit``/``Rollback``) appear with
    probability ``txn_prob`` per entry, stay flat, and are always closed
    before the log ends.  Returns a list of :mod:`repro.stream.ops`
    entries, exactly ``ops`` of them plus a possible closing commit.
    """
    from repro.stream.engine import StreamEnforcer
    from repro.stream.ops import (
        AddLeaf, Begin, Commit, Move, RemoveSubtree, Rollback,
    )
    from repro.trees.node import fresh_id

    policy = ConstraintSet([]) if constraints is None else constraints
    shadow = StreamEnforcer(policy, tree.copy())
    targets = sorted({node.nid for answers in shadow.baseline_answers().values()
                      for node in answers})
    log: list = []
    txn_left = 0

    def emit(op) -> None:
        log.append(op)
        shadow.apply(op)

    for _ in range(ops):
        current = shadow.tree
        if shadow.in_transaction and txn_left <= 0:
            emit(Commit() if rng.random() < 0.7 else Rollback())
            continue
        if not shadow.in_transaction and rng.random() < txn_prob:
            emit(Begin())
            txn_left = rng.randint(1, max_txn_ops)
            continue
        nodes = list(current.node_ids())
        nonroot = [n for n in nodes if n != current.root]
        live_targets = [n for n in targets if n in current]
        if live_targets and rng.random() < violation_rate:
            # Adversarial: aim straight at a node some range answers.
            victim = rng.choice(live_targets)
            roll = rng.random()
            if roll < 0.45 and victim != current.root:
                emit(RemoveSubtree(victim))
            elif roll < 0.8 and victim != current.root and nonroot:
                emit(Move(victim, rng.choice(nodes)))
            else:
                emit(AddLeaf(victim, rng.choice(labels), nid=fresh_id()))
        else:
            roll = rng.random()
            if roll < 0.5 or not nonroot:
                emit(AddLeaf(rng.choice(nodes), rng.choice(labels),
                             nid=fresh_id()))
            elif roll < 0.8:
                emit(Move(rng.choice(nonroot), rng.choice(nodes)))
            else:
                emit(RemoveSubtree(rng.choice(nonroot)))
        txn_left -= 1
    if shadow.in_transaction:
        log.append(Commit())
    return log


def mostly_irrelevant_stream(rng: random.Random, tree: DataTree,
                             labels: list[str], *,
                             constraints: ConstraintSet,
                             ops: int = 200,
                             irrelevant_rate: float = 0.95,
                             noise_labels: list[str] | None = None) -> list:
    """A seeded log where most traffic cannot affect any constraint.

    The workload the static analyzer's zero-work fast path is built for
    (:mod:`repro.analysis`): a fraction ``irrelevant_rate`` of the ops
    edit *noise* subtrees — leaves carrying ``noise_labels``, disjoint
    from every constraint's label alphabet, added, shuffled and removed
    among themselves — while the remainder aim at the constraint ranges'
    baseline answers exactly like :func:`random_update_stream`'s
    adversarial draws.  Generation replays against a shadow enforcer, so
    every op references a node that exists at its point in the log and
    leaf inserts pin fresh ids (deterministic replay).

    The target rate is only achievable when the constraint patterns use
    concrete labels (a wildcard first step makes every edit relevant);
    callers can confirm the achieved rate from
    :attr:`~repro.stream.engine.StreamStats.independent` after replay.
    """
    from repro.stream.engine import StreamEnforcer
    from repro.stream.ops import AddLeaf, Move, RemoveSubtree
    from repro.trees.node import fresh_id

    if noise_labels is None:
        noise_labels = [f"noise{i}" for i in range(4)]
    shadow = StreamEnforcer(constraints, tree.copy())
    targets = sorted({node.nid for answers in shadow.baseline_answers().values()
                      for node in answers})
    log: list = []
    noise_nodes: list[int] = []

    def emit(op) -> None:
        log.append(op)
        shadow.apply(op)

    for _ in range(ops):
        current = shadow.tree
        live_noise = [n for n in noise_nodes if n in current]
        if rng.random() < irrelevant_rate:
            roll = rng.random()
            if roll < 0.6 or not live_noise:
                # Fresh noise leaf; hosts include earlier noise nodes, so
                # noise grows little subtrees of its own.
                host = rng.choice(list(current.node_ids()))
                nid = fresh_id()
                emit(AddLeaf(host, rng.choice(noise_labels), nid=nid))
                noise_nodes.append(nid)
            elif roll < 0.8:
                victim = rng.choice(live_noise)
                inside = set(current.descendants(victim, include_self=True))
                hosts = [n for n in current.node_ids() if n not in inside]
                emit(Move(victim, rng.choice(hosts)))
            else:
                victim = rng.choice(live_noise)
                emit(RemoveSubtree(victim))
        else:
            live_targets = [n for n in targets if n in current]
            if live_targets and rng.random() < 0.6:
                victim = rng.choice(live_targets)
                if victim != current.root and rng.random() < 0.6:
                    emit(RemoveSubtree(victim))
                else:
                    emit(AddLeaf(victim, rng.choice(labels), nid=fresh_id()))
            else:
                emit(AddLeaf(rng.choice(list(current.node_ids())),
                             rng.choice(labels), nid=fresh_id()))
    return log


def random_requests(rng: random.Random, labels: list[str], *,
                    constraint_sets: int = 2, documents: int = 2,
                    queries: int = 10, tree_size: int = 20,
                    stream_ops: int = 12, stream_batches: int = 3,
                    spec: FragmentSpec | None = None,
                    conclusions_per_query: int = 3,
                    violation_rate: float = 0.3) -> list:
    """A seeded request sequence for the service (:mod:`repro.service`).

    Registers ``constraint_sets`` named policies and ``documents`` named
    documents, then interleaves implication batches, instance batches and
    enforcement-log slices.  Each document's whole update log is drawn
    once (enforcement-aware, against a shadow replay — see
    :func:`random_update_stream`) and split across ``stream_batches``
    :class:`~repro.service.protocol.StreamSubmit` requests, so every op
    references nodes that exist at its point in the stream regardless of
    how the batches interleave with queries.

    The same sequence replayed against any executor must produce the
    same response stream — the service equivalence suite feeds these to
    all three executors and compares response checksums.
    """
    from repro.service.protocol import (
        ImplicationQuery,
        InstanceQuery,
        RegisterConstraints,
        RegisterDocument,
        StreamSubmit,
    )

    spec = spec or FragmentSpec(predicates=True, descendant=True,
                                wildcard=False)
    requests: list = []
    set_names: list[str] = []
    for i in range(constraint_sets):
        name = f"policy{i}"
        policy = random_constraints(rng, labels, spec,
                                    count=rng.randint(2, 4), types="mixed",
                                    spine=2)
        requests.append(RegisterConstraints(name, tuple(policy)))
        set_names.append(name)
    doc_names: list[str] = []
    pending_batches: list[tuple[str, str, list]] = []
    for i in range(documents):
        name = f"doc{i}"
        tree = random_tree(rng, labels, size=tree_size)
        requests.append(RegisterDocument(name, tree))
        doc_names.append(name)
        # One policy per document (a document has one live stream).
        policy_name = rng.choice(set_names)
        policy = next(r.constraints for r in requests
                      if isinstance(r, RegisterConstraints)
                      and r.name == policy_name)
        log = random_update_stream(rng, tree, labels,
                                   constraints=ConstraintSet(policy),
                                   ops=stream_ops,
                                   violation_rate=violation_rate)
        cut = max(1, len(log) // max(1, stream_batches))
        for at in range(0, len(log), cut):
            pending_batches.append((name, policy_name,
                                    list(log[at:at + cut])))
    for _ in range(queries):
        roll = rng.random()
        if roll < 0.4 and pending_batches:
            doc, policy_name, batch = pending_batches.pop(0)
            requests.append(StreamSubmit(doc, policy_name, tuple(batch)))
            continue
        conclusions = tuple(
            UpdateConstraint(
                random_pattern(rng, labels, spec, spine=rng.randint(1, 2)),
                rng.choice(list(ConstraintType)))
            for _ in range(conclusions_per_query))
        if roll < 0.7:
            requests.append(ImplicationQuery(
                rng.choice(set_names), conclusions,
                fail_fast=rng.random() < 0.3))
        else:
            requests.append(InstanceQuery(
                rng.choice(set_names), rng.choice(doc_names), conclusions,
                fail_fast=rng.random() < 0.3,
                max_moves=1, search_budget=60))
    # Flush leftover log slices so every document's stream settles.
    for doc, policy_name, batch in pending_batches:
        requests.append(StreamSubmit(doc, policy_name, tuple(batch)))
    return requests


def scaling_labels(count: int) -> list[str]:
    """A deterministic label alphabet ``l0 .. l<count-1>``."""
    return [f"l{i}" for i in range(count)]

"""repro — a full reproduction of "Reasoning about XML update constraints"
(Cautis, Abiteboul, Milo; PODS 2007 / JCSS 75(2009) 336-358).

Public API quick tour
---------------------
The session API compiles a constraint set once and serves any number of
queries against it — the intended entry point for repeated traffic:

>>> from repro import Reasoner, constraint_set, no_insert
>>> C = constraint_set(("/patient[/visit]", "down"),
...                    ("/patient[/clinicalTrial]", "up"),
...                    ("/patient[/clinicalTrial]", "down"))
>>> r = Reasoner(C)
>>> r.implies(no_insert("/patient[/visit][/clinicalTrial]")).is_implied
True

``r.implies_all([...])`` answers batches, and ``r.bind(J)`` fixes a
current instance for Table 2 queries with per-tree caching.  The legacy
free functions remain as one-shot conveniences over the same dispatch:

>>> from repro import implies
>>> implies(C, no_insert("/patient[/visit][/clinicalTrial]")).is_implied
True

Long-lived documents under write traffic go through the online
enforcement engine: ``r.open_stream(doc)`` (or ``StreamEnforcer(C, doc)``
directly) ingests a log of ``add_leaf``/``move``/``remove_subtree``
operations with transaction brackets, rejects — and rolls back — any edit
that breaks the policy, and keeps an audit trail of witnesses.

Fleets of documents live behind the multi-document service:
``ConstraintService`` registers named documents and named compiled
constraint sets once and answers a JSON-serialisable request protocol
(implication, instance queries, enforcement) through pluggable executors
— inline, process-pooled, or the ``AsyncService`` asyncio front end with
per-document ordering.

Thousands of *small* documents under one shared policy check fastest as
one batch: ``FleetEvaluator`` (:mod:`repro.masks`) evaluates every
constraint range for the whole fleet per write *epoch* through a
pluggable mask backend — exact big-int semantics always, vectorized
numpy rows when numpy is installed (``REPRO_MASK_BACKEND`` selects;
decisions are checksum-identical across backends).

Sub-packages: ``service`` (the multi-document front door), ``api``
(compiled reasoning sessions), ``trees`` (data model), ``xpath`` (the
fragment, containment, intersections), ``automata`` (linear-path
machinery), ``constraints`` (update constraints + validity),
``implication`` (Table 1 engines), ``instance`` (Table 2 engines),
``stream`` (online update-log enforcement + shard runner), ``masks``
(pluggable mask backends + the fleet evaluator), ``reductions``
(hardness constructions), ``keys`` / ``xic`` (the related formalisms of
Section 3), ``bruteforce`` (ground-truth oracles) and ``workloads``
(benchmark generators).
"""

from repro.api import BatchReport, BoundReasoner, CacheStats, Reasoner
from repro.constraints import (
    BaselineValidity,
    ConstraintSet,
    ConstraintType,
    RelativeConstraint,
    UpdateConstraint,
    Violation,
    check_sequence,
    constraint_set,
    explain_violations,
    immutable,
    is_valid,
    no_insert,
    no_remove,
    relative,
    satisfies_relative,
)
from repro.implication import (
    Answer,
    Counterexample,
    ImplicationResult,
    implies,
    implies_single,
)
from repro.instance import implies_on
from repro.masks import (
    FleetEvaluator,
    available_backends,
    get_backend,
    numpy_available,
)
from repro.obs import (
    MetricsRegistry,
    new_trace_id,
    registry,
    set_registry,
    span,
    trace_id,
    tracing,
)
from repro.service import (
    AsyncService,
    ConstraintService,
    DocumentStore,
    InlineExecutor,
    ProcessExecutor,
)
from repro.stream import (
    AddLeaf,
    AuditTrail,
    Begin,
    Commit,
    Decision,
    Move,
    RemoveSubtree,
    Rollback,
    FleetJob,
    FleetRunReport,
    StreamEnforcer,
    StreamJob,
    StreamReport,
    run_fleet,
    run_sharded,
)
from repro.trees import DataTree, Node, TreeIndex, branch, build, leaf, parse_tree
from repro.xpath import (
    BitsetEvaluator,
    IndexedEvaluator,
    Pattern,
    contained,
    equivalent,
    evaluate,
    parse,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # session API
    "Reasoner", "BoundReasoner", "BatchReport", "CacheStats",
    # trees
    "DataTree", "TreeIndex", "Node", "branch", "build", "leaf", "parse_tree",
    # xpath
    "Pattern", "parse", "evaluate", "contained", "equivalent",
    "IndexedEvaluator", "BitsetEvaluator",
    # constraints
    "ConstraintType", "UpdateConstraint", "ConstraintSet", "constraint_set",
    "no_remove", "no_insert", "immutable", "relative", "RelativeConstraint",
    "is_valid", "explain_violations", "check_sequence", "Violation",
    "satisfies_relative", "BaselineValidity",
    # service
    "ConstraintService", "DocumentStore", "AsyncService",
    "InlineExecutor", "ProcessExecutor",
    # stream
    "StreamEnforcer", "AuditTrail", "Decision",
    "AddLeaf", "Move", "RemoveSubtree", "Begin", "Commit", "Rollback",
    "StreamJob", "StreamReport", "run_sharded",
    # fleet / mask backends
    "FleetEvaluator", "FleetJob", "FleetRunReport", "run_fleet",
    "get_backend", "available_backends", "numpy_available",
    # implication
    "implies", "implies_single", "implies_on",
    "Answer", "ImplicationResult", "Counterexample",
    # observability
    "MetricsRegistry", "registry", "set_registry", "span",
    "trace_id", "new_trace_id", "tracing",
]

"""Session API — compile a constraint set once, query it many times.

>>> from repro import Reasoner, no_insert, no_remove
>>> r = Reasoner([no_insert("/patient[/visit]"),
...               no_remove("/patient[/clinicalTrial]"),
...               no_insert("/patient[/clinicalTrial]")])
>>> r.implies(no_insert("/patient[/visit][/clinicalTrial]")).is_implied
True
>>> r.implies_all([no_insert("/patient[/visit]"),
...                no_insert("/patient")]).summary()
'2 conclusions, 1 implied, 1 refuted'

See :mod:`repro.api.session` for the compilation model, behaviour
guarantees and the relationship to the legacy free functions.
"""

from repro.api.batch import BatchReport
from repro.caching import CacheStats, LRUMemo
from repro.api.session import BoundReasoner, Reasoner
from repro.stream.engine import StreamEnforcer

__all__ = [
    "Reasoner",
    "BoundReasoner",
    "BatchReport",
    "CacheStats",
    "LRUMemo",
    "StreamEnforcer",
]

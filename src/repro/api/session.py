"""The compiled reasoning session: :class:`Reasoner` and :class:`BoundReasoner`.

The paper's decision procedures (Tables 1 and 2) are parameterised by a
*fixed* constraint set ``C``; production traffic asks many conclusions
against one ``C``.  A :class:`Reasoner` compiles ``C`` exactly once —

* canonical constraint forms and the per-type views ``C_↑`` / ``C_↓``,
* the fragment classification, label alphabet and star length that drive
  engine dispatch,
* DFAs for every predicate-free range over the compiled alphabet (shared
  with the linear record engine through the global automata cache),
* plus, on first access, the pairwise containment matrix (and, on the
  child-only fragment, the pairwise intersection matrix) over the ranges —
  compile artifacts for introspection and future subsumption pruning,

— and then serves queries through a memoising dispatch layer:

* :meth:`Reasoner.implies` — one conclusion (Table 1);
* :meth:`Reasoner.implies_all` — a batch, with shared work and optional
  early exit;
* :meth:`Reasoner.bind` — fix a current instance ``J`` and get a
  :class:`BoundReasoner` whose :meth:`~BoundReasoner.implies_on` caches the
  per-tree answer sets of every premise range across conclusions (Table 2).

Results are bit-identical to the legacy free functions
:func:`repro.implication.general.implies` and
:func:`repro.instance.general.implies_on` — which are now thin wrappers
over a transient, cache-free ``Reasoner``, so there is exactly one
dispatch code path in the system.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import replace
from functools import partial

from repro.automata.compile import engine_alphabet, linear_to_dfa
from repro.constraints.model import (
    ConstraintSet,
    ConstraintType,
    UpdateConstraint,
    constraint_set,
)
from repro.errors import UnsupportedProblemError
from repro.api.batch import BatchReport, run_batch
from repro.caching import DEFAULT_MEMO_SIZE, CacheStats, LRUMemo
from repro.implication.cross_type import cross_type_counterexample
from repro.implication.general import HYBRID_ENGINE as GENERAL_HYBRID_ENGINE
from repro.implication.linear_engine import implies_linear
from repro.implication.one_type import implies_one_type
from repro.implication.profile_search import profile_swap_refutation
from repro.implication.result import (
    ImplicationResult,
    implied,
    not_implied,
    unknown,
)
from repro.implication.same_type import implies_child_only
from repro.instance.cross_type import implies_cross_type
from repro.instance.general import HYBRID_ENGINE as INSTANCE_HYBRID_ENGINE
from repro.instance.no_insert_engine import implies_no_insert
from repro.instance.no_remove_engine import implies_no_remove
from repro.instance.search import bounded_refutation
from repro.stream.engine import StreamEnforcer
from repro.trees.tree import DataTree
from repro.xpath.ast import Pattern
from repro.xpath.containment import contained
from repro.xpath.bitset import BitsetEvaluator
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.indexed import IndexedEvaluator
from repro.xpath.intersection import intersect_child_only
from repro.xpath.properties import Fragment, is_linear


# The require_decision=True failure texts, shared with the service layer
# (whose executors replicate the raise when assembling fanned-out batches).
GENERAL_UNDECIDED = (
    "mixed types with predicates and descendant axis (the paper's "
    "NEXPTIME cell): sound tests were inconclusive"
)
INSTANCE_UNDECIDED = (
    "mixed-type instance-based implication (coNP-complete, "
    "Theorems 5.1/5.2): sound tests were inconclusive"
)


def _for_conclusion(result: ImplicationResult,
                    conclusion: UpdateConstraint) -> ImplicationResult:
    """Re-anchor a memoised result on the conclusion the caller passed.

    The memo keys on canonical forms, so a hit may carry a canonically
    equal but syntactically different conclusion from an earlier query;
    callers that echo ``result.conclusion`` should see their own object,
    exactly as the legacy free functions guaranteed.
    """
    if result.conclusion is conclusion:
        return result
    return replace(result, conclusion=conclusion)


class Reasoner:
    """A constraint set compiled once, serving implication queries.

    Parameters:
        constraints: the premise set ``C`` (a :class:`ConstraintSet`, any
            iterable of constraints, or specs accepted by
            :func:`repro.constraints.model.constraint_set`).
        memo_size: capacity of the per-session result cache (``0``
            disables memoisation, ``None`` means unbounded).
        precompile: build the cheap compilation artifacts (fragment
            classification, label alphabet, star length, linear DFAs)
            eagerly.  The ``O(|C|^2)`` containment/intersection matrices
            always stay lazy and build on first access.  The legacy
            wrappers pass ``False`` so a transient single-query session
            costs exactly what the old free functions did.
    """

    def __init__(self,
                 constraints: ConstraintSet | Iterable[UpdateConstraint],
                 *,
                 memo_size: int | None = DEFAULT_MEMO_SIZE,
                 precompile: bool = True):
        if not isinstance(constraints, ConstraintSet):
            constraints = constraint_set(*constraints)
        constraints.require_concrete()
        self._premises = constraints
        self._memo_size = memo_size
        # Per-type views, labels and star length are built lazily so that a
        # transient, cache-free session (the legacy wrappers) only computes
        # what its single query's dispatch actually consults.
        self._by_type: dict[ConstraintType, ConstraintSet] = {}
        self._labels: set[str] | None = None
        self._memo = LRUMemo(memo_size)
        self._containment: dict[tuple[int, int], bool] | None = None
        self._intersections: dict[tuple[int, int], Pattern | None] | None = None
        if precompile:
            _ = (self.fragment, self.labels, self.star_length)
            self._compile_linear_dfas()
            # The containment/intersection matrices are compile artifacts for
            # callers (schema introspection, future subsumption pruning), not
            # inputs of the dispatch: they stay lazy so Reasoner(C) startup
            # does not pay O(|C|^2) containment checks nobody asked for.

    # ------------------------------------------------------------------
    # Compiled views
    # ------------------------------------------------------------------
    @property
    def premises(self) -> ConstraintSet:
        return self._premises

    @property
    def memo_size(self) -> int | None:
        """The configured result-cache capacity (inherited by bindings)."""
        return self._memo_size

    @property
    def fragment(self) -> Fragment:
        """Joint fragment of the premise ranges (conclusion excluded)."""
        return self._premises.fragment()

    @property
    def labels(self) -> set[str]:
        if self._labels is None:
            self._labels = self._premises.labels()
        return set(self._labels)

    @property
    def star_length(self) -> int:
        return self._premises.star_length()

    def of_type(self, ctype: ConstraintType) -> ConstraintSet:
        view = self._by_type.get(ctype)
        if view is None:
            view = self._by_type[ctype] = self._premises.of_type(ctype)
        return view

    def containment_matrix(self) -> dict[tuple[int, int], bool]:
        """``(i, j) -> ranges[i] ⊆ ranges[j]`` over the premise ranges.

        Computed lazily, once per session, on first access.
        """
        if self._containment is None:
            ranges = self._premises.ranges
            self._containment = {
                (i, j): contained(p, q)
                for i, p in enumerate(ranges)
                for j, q in enumerate(ranges)
                if i != j
            }
        return self._containment

    def intersection_matrix(self) -> dict[tuple[int, int], Pattern | None]:
        """Pairwise range intersections on the child-only fragment.

        ``None`` values mark empty intersections.  Empty dict when the
        premises leave ``XP{/,[],*}`` (the closed-form intersection is only
        defined without ``//``).
        """
        if self._intersections is None:
            self._intersections = {}
            if not self.fragment.descendant:
                ranges = self._premises.ranges
                for i, p in enumerate(ranges):
                    for j in range(i + 1, len(ranges)):
                        self._intersections[(i, j)] = intersect_child_only(
                            [p, ranges[j]])
        return self._intersections

    def _compile_linear_dfas(self) -> None:
        """Warm the automata cache for every predicate-free range.

        The linear record engine compiles each range over the problem
        alphabet; conclusions whose labels stay inside the compiled
        alphabet then reuse these DFAs across every query of the session
        (a conclusion introducing a new label changes the alphabet and
        recompiles — the warm-up is best-effort for the common case).
        """
        alphabet = engine_alphabet(self._premises.ranges)
        for pattern in self._premises.ranges:
            if is_linear(pattern):
                linear_to_dfa(pattern, alphabet)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def implies(self, conclusion: UpdateConstraint,
                require_decision: bool = False) -> ImplicationResult:
        """Decide ``C ⊨ c`` (Definition 2.4) with session-level memoisation.

        Canonically-equal queries share one cached result (including its
        certificate and ``details``); treat results as immutable.
        """
        conclusion.require_concrete()
        result = self._memo.get_or_compute(
            ("general", conclusion.canonical_key),
            lambda: self._decide_general(conclusion),
        )
        if result.is_unknown and require_decision:
            raise UnsupportedProblemError(GENERAL_UNDECIDED)
        return _for_conclusion(result, conclusion)

    def implies_all(self, conclusions: Sequence[UpdateConstraint],
                    fail_fast: bool = False,
                    require_decision: bool = False) -> BatchReport:
        """Answer a batch of conclusions against the compiled premises.

        With ``fail_fast=True`` the batch stops at the first conclusion
        that is not IMPLIED; skipped entries are ``None`` in the report.
        ``require_decision`` is forwarded to every per-conclusion query,
        so a batch answers exactly like the equivalent loop of
        :meth:`implies` calls.
        """
        decide = partial(self.implies, require_decision=require_decision)
        return run_batch(decide, conclusions, fail_fast=fail_fast)

    def bind(self, current: DataTree, indexed: bool = True,
             engine: str | None = None) -> "BoundReasoner":
        """Fix the current instance ``J`` for instance-based queries.

        ``engine`` selects the evaluation substrate for every range
        evaluation on the binding — verdicts are bit-identical across all
        three (enforced by the Hypothesis three-way suite):

        * ``"bitset"`` (default) — set-at-a-time evaluation over a
          :class:`repro.trees.index.TreeIndex` snapshot
          (:class:`repro.xpath.bitset.BitsetEvaluator`): whole frontiers
          as masks, one cached bitset per canonical predicate;
        * ``"indexed"`` — the node-at-a-time label-indexed evaluator
          (:class:`repro.xpath.indexed.IndexedEvaluator`);
        * ``"naive"`` — no snapshot at all (the legacy wrapper and the
          benchmarks' baseline).

        ``indexed=False`` is the legacy spelling of ``engine="naive"``.

        Routes through :mod:`repro.service.dispatch`, the one dispatch
        layer shared with the service executors and the legacy wrappers.
        """
        from repro.service.dispatch import bind_session

        return bind_session(self, current, indexed=indexed, engine=engine)

    def implies_on(self, current: DataTree, conclusion: UpdateConstraint,
                   require_decision: bool = False,
                   max_moves: int = 2,
                   search_budget: int = 5000) -> ImplicationResult:
        """One-shot instance-based query (binds ``current`` transiently)."""
        return self.bind(current).implies_on(
            conclusion, require_decision=require_decision,
            max_moves=max_moves, search_budget=search_budget)

    def open_stream(self, tree: DataTree,
                    engine: str = "bitset") -> StreamEnforcer:
        """Enforce the compiled constraint set online over ``tree``.

        Returns a :class:`repro.stream.engine.StreamEnforcer` that
        **adopts** ``tree``: submitted operations mutate it in place (one
        live incremental snapshot, delta-maintained predicate masks) and
        violating operations — or transactions whose commit finds the
        cumulative edit invalid — are rolled back automatically.

        Routes through :mod:`repro.service.dispatch`, the one dispatch
        layer shared with the service executors and the legacy wrappers.
        """
        from repro.service.dispatch import open_enforcer

        return open_enforcer(self._premises, tree, engine=engine)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the session's result memo."""
        return self._memo.stats

    def clear_cache(self) -> None:
        self._memo.clear()

    def __repr__(self) -> str:
        return (f"Reasoner({len(self._premises)} constraints, "
                f"{self.fragment.name}, {self.stats})")

    # ------------------------------------------------------------------
    # The Table 1 dispatch (moved verbatim from implication.general)
    # ------------------------------------------------------------------
    def _decide_general(self, conclusion: UpdateConstraint) -> ImplicationResult:
        premises = self._premises
        same = self.of_type(conclusion.type)
        if len(same) == 0:
            certificate = cross_type_counterexample(premises, conclusion)
            return not_implied("cross-type", premises, conclusion, certificate,
                               reason="no premise shares the conclusion's type")

        if premises.is_single_type:
            return implies_one_type(premises, conclusion)

        fragment = premises.fragment(conclusion.range)
        if not fragment.descendant:
            return implies_child_only(premises, conclusion)
        if not fragment.predicates:
            return implies_linear(premises, conclusion)

        # --- the NEXPTIME cell: hybrid, sound-only ---------------------
        one_type = implies_one_type(same, conclusion)
        if one_type.is_implied:
            return implied(GENERAL_HYBRID_ENGINE, premises, conclusion,
                           reason="already implied by the same-type premises alone")
        certificate = profile_swap_refutation(premises, conclusion, subset_limit=2)
        if certificate is not None:
            return not_implied(GENERAL_HYBRID_ENGINE, premises, conclusion,
                               certificate,
                               reason="profile-preserving swap counterexample found")
        return unknown(GENERAL_HYBRID_ENGINE, premises, conclusion,
                       reason="sound implication test failed and no swap "
                              "counterexample exists; the NEXPTIME cell needs the "
                              "full DTD+regular-keys consistency reduction "
                              "(see repro.keys.encoding)")


class BoundReasoner:
    """A :class:`Reasoner` bound to one current instance ``J``.

    Caches everything that depends on ``J`` but not on the conclusion —
    the :class:`~repro.trees.index.TreeIndex` snapshot powering bitset or
    label-indexed evaluation (see :meth:`Reasoner.bind` for the engine
    choices), the answer set of every premise range on ``J`` (which the
    per-witness no-insert engine consumes for each conclusion), and a
    result memo keyed on canonical conclusions.

    The bound tree must not be mutated while the binding is in use;
    mutate-and-requery through a fresh :meth:`Reasoner.bind`.  The
    snapshot's mutation-version guard catches every structural change
    (snapshot engines); naive bindings fall back to the cheaper
    size-based guard, which moves and relabels can escape.
    """

    ENGINES = ("bitset", "indexed", "naive")

    def __init__(self, reasoner: Reasoner, current: DataTree,
                 indexed: bool = True, engine: str | None = None):
        if engine is None:
            engine = "bitset" if indexed else "naive"
        if engine not in self.ENGINES:
            raise ValueError(f"unknown evaluation engine {engine!r}; "
                             f"expected one of {self.ENGINES}")
        self._reasoner = reasoner
        self._current = current
        self._size_at_bind = current.size
        self._engine = engine
        if engine == "bitset":
            self._context = BitsetEvaluator.for_tree(current)
        elif engine == "indexed":
            self._context = IndexedEvaluator.for_tree(current)
        else:
            self._context = None
        self._range_hits: dict[UpdateConstraint, set[int]] = {}
        self._memo = LRUMemo(reasoner.memo_size)

    @property
    def reasoner(self) -> Reasoner:
        return self._reasoner

    @property
    def current(self) -> DataTree:
        return self._current

    @property
    def engine(self) -> str:
        """The binding's evaluation substrate (``bitset``/``indexed``/``naive``)."""
        return self._engine

    @property
    def context(self) -> BitsetEvaluator | IndexedEvaluator | None:
        """The binding's snapshot evaluator (``None`` on the naive engine)."""
        return self._context

    def premise_answers(self) -> dict[UpdateConstraint, set[int]]:
        """``{c: c.range(J)}`` for every premise, evaluated once per binding.

        Returns a defensive copy — the live cache backs every subsequent
        query on this binding and must stay caller-proof.
        """
        self._check_fresh()
        hits = self._hits_for(self._reasoner.premises)
        return {c: set(ids) for c, ids in hits.items()}

    def _hits_for(self, constraints: Iterable[UpdateConstraint]
                  ) -> dict[UpdateConstraint, set[int]]:
        """The shared per-binding answer-set cache, filled on demand.

        Only the requested constraints are evaluated — the dispatch asks
        for exactly the subset its engine consumes, so a mixed-type query
        never pays for the opposite type's ranges.
        """
        for constraint in constraints:
            if constraint not in self._range_hits:
                self._range_hits[constraint] = evaluate_ids(
                    constraint.range, self._current, context=self._context)
        return self._range_hits

    def _check_fresh(self) -> None:
        if self._context is not None and not self._context.covers(self._current):
            raise ValueError(
                "the bound tree mutated since bind(); a BoundReasoner "
                "caches an indexed snapshot and per-tree answer sets — "
                "rebind after mutating J"
            )
        if self._current.size != self._size_at_bind:
            raise ValueError(
                "the bound tree changed size since bind(); a BoundReasoner "
                "caches per-tree answer sets — rebind after mutating J"
            )

    def implies_on(self, conclusion: UpdateConstraint,
                   require_decision: bool = False,
                   max_moves: int = 2,
                   search_budget: int = 5000,
                   search_workers: int = 1) -> ImplicationResult:
        """Decide ``C ⊨_J c`` (Definition 2.5) with per-tree caching.

        ``search_workers > 1`` fans the refutation search's cascade family
        across a process pool (see
        :func:`repro.instance.search.bounded_refutation`) — verdicts are
        identical to the sequential search, only the wall-clock differs.
        """
        conclusion.require_concrete()
        self._check_fresh()
        # search_workers is an execution hint, not part of the query: the
        # sharded walk is verdict-identical by construction (and pinned by
        # the equivalence tests), so worker counts share one cache line.
        result = self._memo.get_or_compute(
            ("instance", conclusion.canonical_key, max_moves, search_budget),
            lambda: self._decide_instance(conclusion, max_moves, search_budget,
                                          search_workers),
        )
        if result.is_unknown and require_decision:
            raise UnsupportedProblemError(INSTANCE_UNDECIDED)
        return _for_conclusion(result, conclusion)

    def implies_all(self, conclusions: Sequence[UpdateConstraint],
                    fail_fast: bool = False,
                    require_decision: bool = False,
                    max_moves: int = 2,
                    search_budget: int = 5000,
                    search_workers: int = 1) -> BatchReport:
        """Batch instance-based queries against the bound tree.

        The search knobs are forwarded to every per-conclusion query, so
        a batch answers exactly like the equivalent loop of
        :meth:`implies_on` calls with the same arguments.
        """
        decide = partial(self.implies_on, require_decision=require_decision,
                         max_moves=max_moves, search_budget=search_budget,
                         search_workers=search_workers)
        return run_batch(decide, conclusions, fail_fast=fail_fast)

    def open_stream(self, copy: bool = True,
                    engine: str | None = None) -> StreamEnforcer:
        """Open an enforcement stream on the bound instance.

        With ``copy=True`` (default) the stream adopts a private
        id-preserving copy of ``J``, so this binding stays fresh and
        queryable while the stream evolves its own document.  With
        ``copy=False`` the stream adopts the bound tree itself — the
        binding is effectively consumed: its snapshot goes stale on the
        first applied operation and further :meth:`implies_on` calls
        raise.  ``engine`` defaults to this binding's substrate (bitset
        for naive bindings, which have no snapshot engine of their own).
        """
        if engine is None:
            engine = (self._engine if self._engine in StreamEnforcer.ENGINES
                      else "bitset")
        tree = self._current.copy() if copy else self._current
        return self._reasoner.open_stream(tree, engine=engine)

    @property
    def stats(self) -> CacheStats:
        return self._memo.stats

    def __repr__(self) -> str:
        return (f"BoundReasoner({len(self._reasoner.premises)} constraints, "
                f"|J|={self._current.size}, {self._engine}, {self.stats})")

    # ------------------------------------------------------------------
    # The Table 2 dispatch (moved verbatim from instance.general)
    # ------------------------------------------------------------------
    def _decide_instance(self, conclusion: UpdateConstraint,
                         max_moves: int, search_budget: int,
                         search_workers: int = 1) -> ImplicationResult:
        premises = self._reasoner.premises
        current = self._current
        same = self._reasoner.of_type(conclusion.type)
        other = self._reasoner.of_type(conclusion.type.opposite)

        if len(same) == 0:
            # Covers the empty premise set too: same closed forms.
            return implies_cross_type(premises, current, conclusion,
                                      context=self._context)

        if len(other) == 0:
            if conclusion.type is ConstraintType.NO_INSERT:
                return implies_no_insert(premises, current, conclusion,
                                         range_hits=self._hits_for(premises),
                                         context=self._context)
            return implies_no_remove(premises, current, conclusion,
                                     range_hits=self._hits_for(premises),
                                     context=self._context)

        # --------------------------------------------------------------
        # Mixed types: sound subset test, then validated refutation search.
        # --------------------------------------------------------------
        if conclusion.type is ConstraintType.NO_INSERT:
            subset_result = implies_no_insert(same, current, conclusion,
                                              range_hits=self._hits_for(same),
                                              context=self._context)
        else:
            subset_result = implies_no_remove(same, current, conclusion,
                                              range_hits=self._hits_for(same),
                                              context=self._context)
        if subset_result.is_implied:
            return implied(INSTANCE_HYBRID_ENGINE, premises, conclusion,
                           reason=f"already implied by the {len(same)} same-type "
                                  f"premise(s): {subset_result.reason}")
        certificate = bounded_refutation(premises, current, conclusion,
                                         max_moves=max_moves, budget=search_budget,
                                         context=self._context,
                                         workers=search_workers)
        if certificate is not None:
            return not_implied(INSTANCE_HYBRID_ENGINE, premises, conclusion,
                               certificate,
                               reason="validated counterexample past found by search")
        return unknown(INSTANCE_HYBRID_ENGINE, premises, conclusion,
                       reason="same-type subset does not imply c and the bounded "
                              "search found no valid past; exhaustive search over "
                              "the Theorem 5.1 small-model space is required for "
                              "a definite answer")

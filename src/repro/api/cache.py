"""Deprecated alias of :mod:`repro.caching` (the canonical module).

The implementations moved to :mod:`repro.caching` so the snapshot
evaluators under :mod:`repro.xpath` can cap their per-snapshot memos with
the same LRU without importing the ``api`` package (which imports
``xpath`` — the old location would be a cycle).  This shim keeps the old
import path working one deprecation cycle longer; new code (and all
in-repo code) imports :mod:`repro.caching` directly.
"""

import warnings

from repro.caching import DEFAULT_MEMO_SIZE, CacheStats, LRUMemo

warnings.warn(
    "repro.api.cache is deprecated; import DEFAULT_MEMO_SIZE, CacheStats "
    "and LRUMemo from repro.caching instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["DEFAULT_MEMO_SIZE", "CacheStats", "LRUMemo"]

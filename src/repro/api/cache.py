"""Session-API view of the shared memoisation primitives.

The implementations moved to :mod:`repro.caching` so the snapshot
evaluators under :mod:`repro.xpath` can cap their per-snapshot memos with
the same LRU without importing the ``api`` package (which imports
``xpath`` — the old location would be a cycle).  This module remains the
stable import path for session-level callers.
"""

from repro.caching import DEFAULT_MEMO_SIZE, CacheStats, LRUMemo

__all__ = ["DEFAULT_MEMO_SIZE", "CacheStats", "LRUMemo"]

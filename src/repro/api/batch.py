"""Batch query containers for the session API.

``Reasoner.implies_all`` answers a sequence of conclusions against one
compiled premise set.  The batch path shares all per-``C`` compilation,
answers canonically-duplicate conclusions from the memo, and optionally
stops at the first non-implied conclusion (``fail_fast`` — the mode a
schema-evolution gate wants: "are *all* of these invariants preserved?").

The outcome is a :class:`BatchReport`, aligned index-by-index with the
submitted conclusions.  Entries skipped by an early exit hold ``None``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.constraints.model import UpdateConstraint
from repro.implication.result import Answer, ImplicationResult


@dataclass(frozen=True)
class BatchReport:
    """Results of one batch implication query, aligned with its inputs."""

    conclusions: tuple[UpdateConstraint, ...]
    results: tuple[ImplicationResult | None, ...]

    def __post_init__(self) -> None:
        if len(self.conclusions) != len(self.results):
            raise ValueError("conclusions and results must align")

    def __len__(self) -> int:
        return len(self.conclusions)

    def __iter__(self) -> Iterator[tuple[UpdateConstraint, ImplicationResult | None]]:
        return iter(zip(self.conclusions, self.results, strict=True))

    def __getitem__(self, index: int) -> ImplicationResult | None:
        return self.results[index]

    def _count(self, answer: Answer) -> int:
        return sum(1 for r in self.results
                   if r is not None and r.answer is answer)

    @property
    def implied_count(self) -> int:
        return self._count(Answer.IMPLIED)

    @property
    def refuted_count(self) -> int:
        return self._count(Answer.NOT_IMPLIED)

    @property
    def unknown_count(self) -> int:
        return self._count(Answer.UNKNOWN)

    @property
    def skipped_count(self) -> int:
        """Conclusions left unanswered by a ``fail_fast`` early exit."""
        return sum(1 for r in self.results if r is None)

    @property
    def all_implied(self) -> bool:
        """True when every conclusion was answered IMPLIED."""
        return self.implied_count == len(self.results)

    @property
    def first_refuted(self) -> tuple[UpdateConstraint, ImplicationResult] | None:
        """The first NOT_IMPLIED conclusion with its certificate-bearing verdict.

        UNKNOWN entries are skipped (they are inconclusive, not refuted);
        see :attr:`first_not_implied` for the gate that treats both as
        failures.
        """
        for conclusion, result in self:
            if result is not None and result.is_refuted:
                return conclusion, result
        return None

    @property
    def first_not_implied(self) -> tuple[UpdateConstraint, ImplicationResult] | None:
        """The first conclusion not answered IMPLIED (refuted *or* unknown).

        This is the entry a ``fail_fast`` batch stopped on.
        """
        for conclusion, result in self:
            if result is not None and not result.is_implied:
                return conclusion, result
        return None

    def summary(self) -> str:
        parts = [f"{len(self)} conclusions",
                 f"{self.implied_count} implied",
                 f"{self.refuted_count} refuted"]
        if self.unknown_count:
            parts.append(f"{self.unknown_count} unknown")
        if self.skipped_count:
            parts.append(f"{self.skipped_count} skipped")
        return ", ".join(parts)

    def __str__(self) -> str:
        return f"BatchReport({self.summary()})"


def run_batch(decide, conclusions: Sequence[UpdateConstraint],
              fail_fast: bool = False) -> BatchReport:
    """Drive ``decide`` over ``conclusions``; shared by Reasoner and BoundReasoner.

    ``decide`` is the single-conclusion entry point (already memoised), so
    canonical duplicates inside one batch are answered once.
    """
    ordered = tuple(conclusions)
    results: list[ImplicationResult | None] = []
    stopped = False
    for conclusion in ordered:
        if stopped:
            results.append(None)
            continue
        result = decide(conclusion)
        results.append(result)
        if fail_fast and not result.is_implied:
            stopped = True
    return BatchReport(ordered, tuple(results))

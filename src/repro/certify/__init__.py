"""Pre-certified transaction templates: verify once, run unchecked.

The per-op enforcement pipeline (:mod:`repro.stream`) pays analysis or
mask cost on every edit.  This package moves that cost to registration
time, the compiler/verifier-feeding-a-fast-runtime shape of FLUX-style
static update typechecking: an :class:`UpdateTemplate` is a reusable
parameterized transaction over the stream-op algebra, :func:`certify`
decides **once** whether every instantiation preserves a constraint set
(returning a replaying :class:`TemplateCounterexample` when it does
not), and :meth:`repro.stream.engine.StreamEnforcer.apply_certified`
then executes certified instantiations validating only the template
guard — no per-op mask work, decisions bit-identical to uncertified
replay.

>>> from repro.certify import (LabelHole, TemplateAdd, UpdateTemplate,
...                            certify)
>>> from repro.constraints import constraint_set
>>> cs = constraint_set(("/inventory//item", "up"))
>>> note = UpdateTemplate("annotate", (
...     TemplateAdd(0, LabelHole("tag", frozenset({"note", "flag"}))),))
>>> certify(note, cs).certified
True
"""

from repro.certify.certifier import (
    DEFAULT_SEED,
    CertifyOutcome,
    CertifyVerdict,
    OpDischarge,
    TemplateCertificate,
    TemplateCounterexample,
    certify,
    discharge_pairs,
)
from repro.certify.templates import (
    Binding,
    Bindings,
    Hole,
    LabelHole,
    NodeHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    TemplateOp,
    TemplateRemove,
    UpdateTemplate,
    bindings_from_wire,
    bindings_to_wire,
    sample_bindings,
)

__all__ = [
    "DEFAULT_SEED",
    "CertifyOutcome", "CertifyVerdict", "OpDischarge",
    "TemplateCertificate", "TemplateCounterexample",
    "certify", "discharge_pairs",
    "LabelHole", "NodeHole", "SubtreeHole", "Hole",
    "TemplateAdd", "TemplateMove", "TemplateRemove", "TemplateOp",
    "UpdateTemplate", "Binding", "Bindings",
    "bindings_to_wire", "bindings_from_wire", "sample_bindings",
]

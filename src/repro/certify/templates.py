"""The template algebra: parameterized transactions over the stream ops.

An :class:`UpdateTemplate` is a reusable update *program*: a sequence of
template operations over the three-op algebra of :mod:`repro.stream.ops`
whose positions may be **typed holes** instead of concrete values —

* :class:`LabelHole` — a fresh leaf's label, drawn from a finite domain;
* :class:`NodeHole` — a node position (a parent to insert under, a move
  destination, a subtree root), optionally constrained by an *anchor
  pattern* the bound node's root path must match;
* :class:`SubtreeHole` — a subtree position (the argument of a move or a
  remove) whose entire label content is promised to stay inside a
  declared finite set.

A template names a whole flat transaction: instantiating it with a
binding (one value per hole) yields a concrete op sequence executed
bracketed between ``Begin(name)`` and ``Commit``.  The certifier
(:mod:`repro.certify.certifier`) quantifies over **every** guard-passing
binding on **every** currently-valid document, so the hole *domains* are
load-bearing: the :meth:`UpdateTemplate.guard_errors` check that a bound
label lies in its :class:`LabelHole` domain, and that a bound subtree
carries only its :class:`SubtreeHole` labels, is exactly what makes a
certificate transferable to the instantiation.  (A :class:`NodeHole`'s
anchor, by contrast, is a usability precondition — certification never
relies on it.)

Templates are frozen, hashable, and wire-codable (patterns travel as
XPath text, holes as tagged dicts), with a canonical form mirroring
:func:`repro.xpath.canonical.canonical_pattern` so equal programs compare
and key equal, plus a seeded instantiation sampler for tests and
benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Union
from collections.abc import Iterator, Mapping

from repro.errors import CertifyError, TreeError
from repro.stream.ops import AddLeaf, Move, RemoveSubtree, UpdateOp
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern
from repro.xpath.canonical import canonical_pattern
from repro.xpath.parser import parse


# ----------------------------------------------------------------------
# Holes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelHole:
    """A label position filled from a finite ``domain`` of labels."""

    name: str
    domain: frozenset[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise CertifyError("a hole needs a non-empty name")
        if not self.domain:
            raise CertifyError(f"label hole {self.name!r} has an empty "
                               "domain; certification quantifies over it")

    def __str__(self) -> str:
        return f"?{self.name}:{{{','.join(sorted(self.domain))}}}"


@dataclass(frozen=True)
class NodeHole:
    """A node position; ``anchor`` optionally constrains the bound node.

    The guard accepts a binding only when the node's root path matches
    the anchor's spine (child steps consume one edge, descendant steps
    any positive run; predicates are **not** evaluated — the anchor is a
    cheap structural precondition, never a certification premise).
    """

    name: str
    anchor: Pattern | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CertifyError("a hole needs a non-empty name")

    def __str__(self) -> str:
        if self.anchor is None:
            return f"?{self.name}"
        return f"?{self.name}@{self.anchor}"


@dataclass(frozen=True)
class SubtreeHole:
    """A subtree position whose labels are promised to lie in ``labels``.

    The guard walks the bound subtree and rejects any node labelled
    outside the declared set — this bound is what lets the certifier
    discharge moves and removes by label-disjointness, so it is a
    **soundness-bearing** check, not advice.
    """

    name: str
    labels: frozenset[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise CertifyError("a hole needs a non-empty name")
        if not self.labels:
            raise CertifyError(f"subtree hole {self.name!r} declares no "
                               "labels; an empty subtree bound is "
                               "unsatisfiable")

    def __str__(self) -> str:
        return f"?{self.name}<{{{','.join(sorted(self.labels))}}}>"


Hole = Union[LabelHole, NodeHole, SubtreeHole]
#: A node-valued position: concrete id or a node hole.
NodeRef = Union[int, NodeHole]
#: A subtree-valued position: concrete id, node hole (content unknown)
#: or subtree hole (content bounded).
SubtreeRef = Union[int, NodeHole, SubtreeHole]
#: A label-valued position: concrete label or a label hole.
LabelRef = Union[str, LabelHole]
#: One binding value; a whole binding maps hole names to values.
Binding = Union[int, str]
Bindings = Mapping[str, Binding]


# ----------------------------------------------------------------------
# Template operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TemplateAdd:
    """``AddLeaf(parent, label)`` with holes allowed in both positions."""

    parent: NodeRef
    label: LabelRef

    def __str__(self) -> str:
        return f"add-leaf {self.label} under {_show_ref(self.parent)}"


@dataclass(frozen=True)
class TemplateMove:
    """``Move(node, new_parent)`` with holes allowed in both positions."""

    node: SubtreeRef
    new_parent: NodeRef

    def __str__(self) -> str:
        return f"move {_show_ref(self.node)} under {_show_ref(self.new_parent)}"


@dataclass(frozen=True)
class TemplateRemove:
    """``RemoveSubtree(node)`` with a hole allowed in the position."""

    node: SubtreeRef

    def __str__(self) -> str:
        return f"remove-subtree {_show_ref(self.node)}"


TemplateOp = Union[TemplateAdd, TemplateMove, TemplateRemove]


def _show_ref(ref: NodeRef | SubtreeRef | LabelRef) -> str:
    return f"#{ref}" if isinstance(ref, int) else str(ref)


def _iter_op_holes(op: TemplateOp) -> Iterator[Hole]:
    if isinstance(op, TemplateAdd):
        if isinstance(op.parent, NodeHole):
            yield op.parent
        if isinstance(op.label, LabelHole):
            yield op.label
    elif isinstance(op, TemplateMove):
        if isinstance(op.node, (NodeHole, SubtreeHole)):
            yield op.node
        if isinstance(op.new_parent, NodeHole):
            yield op.new_parent
    else:
        if isinstance(op.node, (NodeHole, SubtreeHole)):
            yield op.node


# ----------------------------------------------------------------------
# The template
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateTemplate:
    """One named, reusable, parameterized flat transaction.

    Hole names are template-scoped: the same name may recur across ops
    (both positions then receive the same bound value) but must denote
    the *same* hole everywhere.  Templates cannot reference leaves they
    themselves create — a fresh leaf's id is allocated at apply time, so
    there is no output binding to thread forward.
    """

    name: str
    ops: tuple[TemplateOp, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise CertifyError("a template needs a non-empty name")
        if not self.ops:
            raise CertifyError(f"template {self.name!r} has no operations")
        seen: dict[str, Hole] = {}
        for op in self.ops:
            for hole in _iter_op_holes(op):
                prior = seen.get(hole.name)
                if prior is None:
                    seen[hole.name] = hole
                elif prior != hole:
                    raise CertifyError(
                        f"template {self.name!r} binds hole "
                        f"{hole.name!r} to two different declarations "
                        f"({prior} vs {hole})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holes(self) -> tuple[Hole, ...]:
        """Every distinct hole, in first-occurrence order."""
        seen: dict[str, Hole] = {}
        for op in self.ops:
            for hole in _iter_op_holes(op):
                seen.setdefault(hole.name, hole)
        return tuple(seen.values())

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonical(self) -> "UpdateTemplate":
        """The template with every anchor pattern in canonical form."""
        ops = tuple(_canonical_op(op) for op in self.ops)
        if ops == self.ops:
            return self
        return UpdateTemplate(self.name, ops)

    def canonical_key(self) -> tuple[Any, ...]:
        """A hashable structural identity (name + canonical op shapes)."""
        return (self.name,
                tuple(_key_of_op(op) for op in self.canonical().ops))

    # ------------------------------------------------------------------
    # Instantiation and the guard
    # ------------------------------------------------------------------
    def instantiate(self, bindings: Bindings) -> tuple[UpdateOp, ...]:
        """The concrete op sequence under ``bindings``.

        Checks binding *domains* (every hole bound, values of the right
        type, labels inside their declared domain) but not the document —
        that is :meth:`guard_errors`.  Fresh-leaf ids stay unpinned; the
        service pins them at the durable boundary.
        """
        self._check_domains(bindings)
        out: list[UpdateOp] = []
        for op in self.ops:
            if isinstance(op, TemplateAdd):
                out.append(AddLeaf(_node_value(op.parent, bindings),
                                   _label_value(op.label, bindings)))
            elif isinstance(op, TemplateMove):
                out.append(Move(_node_value(op.node, bindings),
                                _node_value(op.new_parent, bindings)))
            else:
                out.append(RemoveSubtree(_node_value(op.node, bindings)))
        return tuple(out)

    def _check_domains(self, bindings: Bindings) -> None:
        holes = {hole.name: hole for hole in self.holes()}
        missing = sorted(set(holes) - set(bindings))
        if missing:
            raise CertifyError(f"template {self.name!r}: unbound hole(s) "
                               f"{missing}")
        extra = sorted(set(bindings) - set(holes))
        if extra:
            raise CertifyError(f"template {self.name!r}: binding names no "
                               f"hole: {extra}")
        for name, hole in holes.items():
            value = bindings[name]
            if isinstance(hole, LabelHole):
                if not isinstance(value, str):
                    raise CertifyError(f"hole {name!r} takes a label, got "
                                       f"{value!r}")
                if value not in hole.domain:
                    raise CertifyError(
                        f"label {value!r} is outside hole {name!r}'s domain "
                        f"{sorted(hole.domain)}")
            else:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise CertifyError(f"hole {name!r} takes a node id, got "
                                       f"{value!r}")

    def guard_errors(self, bindings: Bindings,
                     tree: DataTree) -> str | None:
        """Why ``bindings`` must be refused on ``tree`` (``None`` = pass).

        The guard is the entire per-submission validation of the
        certified hot path: binding domains, node existence, per-op
        structural preconditions against the pre-template document,
        anchor-spine matches and — soundness-bearing — the subtree-label
        bounds of every :class:`SubtreeHole`.  No mask work, no pattern
        evaluation: every check is O(binding footprint).
        """
        try:
            self._check_domains(bindings)
        except CertifyError as err:
            return str(err)
        for at, op in enumerate(self.ops):
            where = f"op {at} ({op})"
            if isinstance(op, TemplateAdd):
                error = self._guard_node(op.parent, bindings, tree)
            elif isinstance(op, TemplateMove):
                error = (self._guard_subtree(op.node, bindings, tree)
                         or self._guard_node(op.new_parent, bindings, tree)
                         or _guard_move(op, bindings, tree))
            else:
                error = self._guard_subtree(op.node, bindings, tree)
            if error is not None:
                return f"{where}: {error}"
        return None

    def _guard_node(self, ref: NodeRef, bindings: Bindings,
                    tree: DataTree) -> str | None:
        nid = _node_value(ref, bindings)
        if nid not in tree:
            return f"node {nid} is not in the document"
        if isinstance(ref, NodeHole) and ref.anchor is not None:
            if not _spine_matches(ref.anchor, tree.path_labels(nid)):
                return (f"node {nid} ({tree.label(nid)!r}) does not match "
                        f"anchor {ref.anchor}")
        return None

    def _guard_subtree(self, ref: SubtreeRef, bindings: Bindings,
                       tree: DataTree) -> str | None:
        nid = _node_value(ref, bindings)
        if nid not in tree:
            return f"node {nid} is not in the document"
        if nid == tree.root:
            return "the root cannot be moved or removed"
        if isinstance(ref, NodeHole):
            return self._guard_node(ref, bindings, tree)
        if isinstance(ref, SubtreeHole):
            for member in tree.descendants(nid, include_self=True):
                label = tree.label(member)
                if label not in ref.labels:
                    return (f"subtree at {nid} contains label {label!r} "
                            f"outside hole {ref.name!r}'s declared set "
                            f"{sorted(ref.labels)}")
        return None

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe wire form (patterns as XPath text, holes tagged)."""
        return {"name": self.name,
                "ops": [_op_to_dict(op) for op in self.ops]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UpdateTemplate":
        try:
            name = data["name"]
            ops = tuple(_op_from_dict(d) for d in data["ops"])
        except (KeyError, TypeError) as exc:
            raise CertifyError(
                f"bad template wire form {data!r}: {exc}") from None
        return cls(str(name), ops)

    def __str__(self) -> str:
        body = "; ".join(str(op) for op in self.ops)
        return f"template {self.name}[{body}]"


def _canonical_op(op: TemplateOp) -> TemplateOp:
    if isinstance(op, TemplateAdd):
        return TemplateAdd(_canonical_ref(op.parent), op.label)
    if isinstance(op, TemplateMove):
        return TemplateMove(_canonical_ref(op.node),
                            _canonical_ref(op.new_parent))
    return TemplateRemove(_canonical_ref(op.node))


def _canonical_ref(ref: SubtreeRef) -> SubtreeRef:
    if isinstance(ref, NodeHole) and ref.anchor is not None:
        canon = canonical_pattern(ref.anchor)
        if canon != ref.anchor:
            return NodeHole(ref.name, canon)
    return ref


def _key_of_ref(ref: SubtreeRef | LabelRef) -> tuple[Any, ...]:
    if isinstance(ref, int):
        return ("node", ref)
    if isinstance(ref, str):
        return ("label", ref)
    if isinstance(ref, LabelHole):
        return ("label-hole", ref.name, tuple(sorted(ref.domain)))
    if isinstance(ref, SubtreeHole):
        return ("subtree-hole", ref.name, tuple(sorted(ref.labels)))
    anchor = None if ref.anchor is None else str(ref.anchor)
    return ("node-hole", ref.name, anchor)


def _key_of_op(op: TemplateOp) -> tuple[Any, ...]:
    if isinstance(op, TemplateAdd):
        return ("add-leaf", _key_of_ref(op.parent), _key_of_ref(op.label))
    if isinstance(op, TemplateMove):
        return ("move", _key_of_ref(op.node), _key_of_ref(op.new_parent))
    return ("remove-subtree", _key_of_ref(op.node))


def _node_value(ref: SubtreeRef, bindings: Bindings) -> int:
    if isinstance(ref, int):
        return ref
    value = bindings[ref.name]
    assert isinstance(value, int)  # _check_domains ran first
    return value


def _label_value(ref: LabelRef, bindings: Bindings) -> str:
    if isinstance(ref, str):
        return ref
    value = bindings[ref.name]
    assert isinstance(value, str)  # _check_domains ran first
    return value


def _guard_move(op: TemplateMove, bindings: Bindings,
                tree: DataTree) -> str | None:
    nid = _node_value(op.node, bindings)
    dest = _node_value(op.new_parent, bindings)
    if nid == tree.root:
        return "the root cannot be moved"
    if dest == nid or tree.is_ancestor(nid, dest):
        return (f"destination {dest} lies inside the moved subtree at "
                f"{nid}")
    return None


def _spine_matches(pattern: Pattern, path: tuple[str, ...]) -> bool:
    """Does the anchor's spine match a root path ending at the node?

    ``path`` is :meth:`~repro.trees.tree.DataTree.path_labels` — labels
    below the root down to the candidate node.  Child steps consume one
    edge, descendant steps any positive run, wildcards any label;
    predicates are ignored (documented guard semantics).  The match must
    place the pattern's *output* exactly at the path's end.
    """
    steps = canonical_pattern(pattern).steps
    positions = {-1}
    for step in steps:
        reached: set[int] = set()
        for at in positions:
            if step.axis is Axis.CHILD:
                nxt = at + 1
                if nxt < len(path) and (step.label is None
                                        or path[nxt] == step.label):
                    reached.add(nxt)
            else:
                for nxt in range(at + 1, len(path)):
                    if step.label is None or path[nxt] == step.label:
                        reached.add(nxt)
        if not reached:
            return False
        positions = reached
    return len(path) - 1 in positions


# ----------------------------------------------------------------------
# Wire helpers (ops and holes as tagged dicts)
# ----------------------------------------------------------------------
def _ref_to_wire(ref: SubtreeRef | LabelRef) -> Any:
    if isinstance(ref, (int, str)):
        return ref
    if isinstance(ref, LabelHole):
        return {"hole": "label", "name": ref.name,
                "domain": sorted(ref.domain)}
    if isinstance(ref, SubtreeHole):
        return {"hole": "subtree", "name": ref.name,
                "labels": sorted(ref.labels)}
    data: dict[str, Any] = {"hole": "node", "name": ref.name}
    if ref.anchor is not None:
        data["anchor"] = str(ref.anchor)
    return data


def _node_ref_from_wire(data: Any) -> NodeRef:
    ref = _ref_from_wire(data)
    if isinstance(ref, int) or isinstance(ref, NodeHole):
        return ref
    raise CertifyError(f"expected a node position, got {data!r}")


def _subtree_ref_from_wire(data: Any) -> SubtreeRef:
    ref = _ref_from_wire(data)
    if isinstance(ref, (int, NodeHole, SubtreeHole)):
        return ref
    raise CertifyError(f"expected a subtree position, got {data!r}")


def _label_ref_from_wire(data: Any) -> LabelRef:
    ref = _ref_from_wire(data)
    if isinstance(ref, (str, LabelHole)):
        return ref
    raise CertifyError(f"expected a label position, got {data!r}")


def _ref_from_wire(data: Any) -> SubtreeRef | LabelRef:
    if isinstance(data, bool):
        raise CertifyError(f"bad template position {data!r}")
    if isinstance(data, int):
        return data
    if isinstance(data, str):
        return data
    if not isinstance(data, Mapping):
        raise CertifyError(f"bad template position {data!r}")
    kind = data.get("hole")
    try:
        if kind == "label":
            return LabelHole(str(data["name"]),
                             frozenset(str(s) for s in data["domain"]))
        if kind == "subtree":
            return SubtreeHole(str(data["name"]),
                               frozenset(str(s) for s in data["labels"]))
        if kind == "node":
            anchor = data.get("anchor")
            return NodeHole(str(data["name"]),
                            None if anchor is None else parse(str(anchor)))
    except (KeyError, TypeError) as exc:
        raise CertifyError(f"bad hole wire form {data!r}: {exc}") from None
    raise CertifyError(f"unknown hole kind {kind!r} in {data!r}")


def _op_to_dict(op: TemplateOp) -> dict[str, Any]:
    if isinstance(op, TemplateAdd):
        return {"op": "add-leaf", "parent": _ref_to_wire(op.parent),
                "label": _ref_to_wire(op.label)}
    if isinstance(op, TemplateMove):
        return {"op": "move", "node": _ref_to_wire(op.node),
                "new_parent": _ref_to_wire(op.new_parent)}
    return {"op": "remove-subtree", "node": _ref_to_wire(op.node)}


def _op_from_dict(data: Mapping[str, Any]) -> TemplateOp:
    tag = data.get("op")
    try:
        if tag == "add-leaf":
            return TemplateAdd(_node_ref_from_wire(data["parent"]),
                               _label_ref_from_wire(data["label"]))
        if tag == "move":
            return TemplateMove(_subtree_ref_from_wire(data["node"]),
                                _node_ref_from_wire(data["new_parent"]))
        if tag == "remove-subtree":
            return TemplateRemove(_subtree_ref_from_wire(data["node"]))
    except KeyError as exc:
        raise CertifyError(
            f"bad template op wire form {data!r}: missing {exc}") from None
    raise CertifyError(f"unknown template op tag {tag!r}")


# ----------------------------------------------------------------------
# Bindings on the wire
# ----------------------------------------------------------------------
def bindings_to_wire(bindings: Bindings) -> dict[str, Binding]:
    """A binding as a plain ``{name: value}`` JSON object."""
    return {str(name): value for name, value in sorted(bindings.items())}


def bindings_from_wire(data: Mapping[str, Any]) -> dict[str, Binding]:
    out: dict[str, Binding] = {}
    for name, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, str)):
            raise CertifyError(f"binding {name!r} carries {value!r}; hole "
                               "values are node ids or labels")
        out[str(name)] = value
    return out


# ----------------------------------------------------------------------
# Seeded instantiation sampler
# ----------------------------------------------------------------------
def sample_bindings(template: UpdateTemplate, tree: DataTree,
                    rng: random.Random, *,
                    attempts: int = 64) -> dict[str, Binding] | None:
    """A guard-passing, structurally-applicable binding on ``tree``.

    Draws hole values uniformly (labels from their domains, nodes from
    candidates passing the per-hole guard), then validates the whole
    binding by applying the instantiated sequence to a scratch copy —
    so a returned binding never trips a mid-template structural error
    (one removed subtree referenced by a later op, a move into its own
    subtree after an earlier relocation).  Returns ``None`` when no
    sample passes within ``attempts`` draws; deterministic for a given
    ``rng`` state.
    """
    candidates = _hole_candidates(template, tree)
    if candidates is None:
        return None
    for _ in range(max(1, attempts)):
        drawn: dict[str, Binding] = {
            name: options[rng.randrange(len(options))]
            for name, options in candidates.items()}
        if template.guard_errors(drawn, tree) is not None:
            continue
        if _applies_cleanly(template.instantiate(drawn), tree):
            return drawn
    return None


def _hole_candidates(template: UpdateTemplate, tree: DataTree
                     ) -> dict[str, list[Binding]] | None:
    """Per-hole candidate values on ``tree`` (``None`` = a hole is dry)."""
    out: dict[str, list[Binding]] = {}
    for hole in template.holes():
        options: list[Binding]
        if isinstance(hole, LabelHole):
            options = sorted(hole.domain)
        elif isinstance(hole, SubtreeHole):
            options = [nid for nid in tree.node_ids()
                       if nid != tree.root
                       and all(tree.label(m) in hole.labels
                               for m in tree.descendants(nid,
                                                         include_self=True))]
        else:
            options = [nid for nid in tree.node_ids()
                       if hole.anchor is None
                       or _spine_matches(hole.anchor, tree.path_labels(nid))]
        if not options:
            return None
        out[hole.name] = options
    return out


def _applies_cleanly(ops: tuple[UpdateOp, ...], tree: DataTree) -> bool:
    scratch = tree.copy()
    try:
        for op in ops:
            if isinstance(op, AddLeaf):
                scratch.add_child(op.parent, op.label)
            elif isinstance(op, Move):
                scratch.move(op.nid, op.new_parent)
            else:
                scratch.remove_subtree(op.nid)
    except TreeError:
        return False
    return True


__all__ = [
    "LabelHole", "NodeHole", "SubtreeHole", "Hole",
    "TemplateAdd", "TemplateMove", "TemplateRemove", "TemplateOp",
    "UpdateTemplate", "Binding", "Bindings",
    "bindings_to_wire", "bindings_from_wire", "sample_bindings",
]

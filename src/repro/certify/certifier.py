"""The certifier: decide once whether a template can ever violate.

``certify(template, constraints)`` quantifies over **every** document and
every guard-passing binding: a ``CERTIFIED`` verdict promises that the
bracketed instantiation ``Begin; ops; Commit`` commits cleanly on any
:class:`~repro.stream.engine.StreamEnforcer` holding ``constraints`` —
which is what licenses the zero-per-op-checking hot path
(:meth:`~repro.stream.engine.StreamEnforcer.apply_certified`).

The decision is a conjunction over ``(template op, constraint)`` pairs,
each discharged by one of two static arguments reusing the PR 6 impact
signatures (:func:`repro.analysis.independence.impact_signature`):

**Kind monotonicity.**  Tree patterns are monotone, so each constraint
type is sensitive to exactly two op kinds (``NO_REMOVE`` to move/remove,
``NO_INSERT`` to add/move).  An op of an insensitive kind can never flip
that constraint's verdict, on any document.

**Label disjointness.**  When the op's *touched-label bound* is known
statically — a concrete label or a :class:`~repro.certify.templates.
LabelHole` domain for adds, a :class:`~repro.certify.templates.
SubtreeHole` label bound for moves/removes — and the constraint's label
alphabet is not ⊤, disjoint sets mean the edit can neither create nor
destroy a match: every node of a match carries an alphabet label, and
the edit only touches labels outside it.  The hole bounds are enforced
by the template guard at apply time, so the static argument transfers to
every instantiation the hot path will ever accept.

Both arguments hold at *every* intermediate state, so each prefix of a
certified instantiation leaves all answer sets exactly unchanged — the
uncertified oracle's per-op decisions are all accepting and its commit
check is vacuous, which is how the Hypothesis suite can pin certified
decisions bit-identical to uncertified replay.

When some pair resists both arguments the template is *not* proven safe,
and the certifier switches roles: a bounded **counterexample engine**
(the refutation-search shape of :mod:`repro.service`) enumerates witness
documents — canonical models of each constraint's range, near-miss
variants, seeded random trees — and guard-passing bindings, replaying
each instantiation through a real uncertified enforcer.  A rejected
commit yields a ``REJECTED`` verdict with a concrete
:class:`TemplateCounterexample` (witness document + bindings +
violations) that *replays*: the search never lies, so a template that
survives the budget without a witness is ``UNKNOWN`` — unsafe to run
certified, but not provably broken.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from itertools import islice, product
from time import perf_counter
from typing import Any
from collections.abc import Iterator

from repro.analysis.independence import (
    KIND_ADD,
    KIND_MOVE,
    KIND_REMOVE,
    impact_signature,
)
from repro.certify.templates import (
    Binding,
    LabelHole,
    SubtreeHole,
    TemplateAdd,
    TemplateMove,
    TemplateOp,
    UpdateTemplate,
    _hole_candidates,
)
from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.constraints.validity import Violation
from repro.obs import MetricsRegistry
from repro.obs import registry as _obs_registry
from repro.stream.engine import StreamEnforcer
from repro.stream.ops import Begin, Commit
from repro.trees.tree import DataTree
from repro.xpath.canonical import canonical_models

#: Default seed for the counterexample search (the paper's PODS date).
DEFAULT_SEED = 20070611

#: A label no constraint alphabet contains (models use it for padding).
_OFFSIDE_LABEL = "zz_offside"


class CertifyVerdict(Enum):
    """The three possible outcomes of :func:`certify`."""

    CERTIFIED = "certified"
    REJECTED = "rejected"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class OpDischarge:
    """Why one ``(op, constraint)`` pair can never violate.

    ``reason`` is ``"kind"`` (the constraint type is insensitive to the
    op kind) or ``"labels"`` (the op's static label bound misses the
    constraint's alphabet).
    """

    op_index: int
    constraint: UpdateConstraint
    reason: str

    def __str__(self) -> str:
        return f"op {self.op_index} vs {self.constraint}: {self.reason}"


@dataclass(frozen=True)
class TemplateCertificate:
    """A positive certificate: every pair discharged, with reasons."""

    template_key: tuple[Any, ...]
    discharges: tuple[OpDischarge, ...]

    def reasons(self) -> dict[str, int]:
        """How many pairs each static argument discharged."""
        out: dict[str, int] = {}
        for d in self.discharges:
            out[d.reason] = out.get(d.reason, 0) + 1
        return out


@dataclass(frozen=True)
class TemplateCounterexample:
    """A concrete violating instantiation that replays.

    ``document`` is the witness the template was instantiated on (the
    *pre*-template state); replaying ``Begin; template.instantiate(
    bindings); Commit`` through an uncertified enforcer on a copy of it
    rejects the commit with ``violations``.
    """

    document: DataTree
    bindings: dict[str, Binding]
    violations: tuple[Violation, ...]

    def __str__(self) -> str:
        shown = ", ".join(f"{k}={v!r}" for k, v in
                          sorted(self.bindings.items()))
        return (f"counterexample on {self.document.size}-node witness "
                f"with [{shown}]: {len(self.violations)} violation(s)")


@dataclass(frozen=True)
class CertifyOutcome:
    """The full result of one :func:`certify` call.

    Exactly one of ``certificate`` / ``counterexample`` is set for
    CERTIFIED / REJECTED; UNKNOWN carries neither.  ``pairs`` counts the
    ``(op, constraint)`` obligations, ``discharged`` how many the static
    arguments closed, ``attempts`` how many concrete instantiations the
    counterexample search replayed.
    """

    verdict: CertifyVerdict
    certificate: TemplateCertificate | None = None
    counterexample: TemplateCounterexample | None = None
    pairs: int = 0
    discharged: int = 0
    attempts: int = 0
    undischarged: tuple[tuple[int, UpdateConstraint], ...] = field(
        default=(), repr=False)

    @property
    def certified(self) -> bool:
        return self.verdict is CertifyVerdict.CERTIFIED

    def wire_stats(self) -> tuple[tuple[str, int], ...]:
        """Int-only ``(name, value)`` pairs for ``Ack.stats``.

        Counterexample *objects* stay server-side (their witness trees
        allocate fresh node ids per call — the :class:`~repro.service.
        protocol.Verdict` precedent); the wire carries the verdict and
        the search/discharge accounting.
        """
        stats = {
            "certify.certified": int(self.certified),
            "certify.rejected": int(
                self.verdict is CertifyVerdict.REJECTED),
            "certify.pairs": self.pairs,
            "certify.discharged": self.discharged,
            "certify.attempts": self.attempts,
        }
        if self.counterexample is not None:
            stats["certify.witness_nodes"] = \
                self.counterexample.document.size
            stats["certify.witness_violations"] = \
                len(self.counterexample.violations)
        return tuple(sorted(stats.items()))


# ----------------------------------------------------------------------
# Static discharge
# ----------------------------------------------------------------------
def _op_kind(op: TemplateOp) -> str:
    if isinstance(op, TemplateAdd):
        return KIND_ADD
    if isinstance(op, TemplateMove):
        return KIND_MOVE
    return KIND_REMOVE


def _op_labels(op: TemplateOp) -> frozenset[str] | None:
    """The op's static touched-label bound (``None`` = unbounded).

    For an add the touched label is the new leaf's: a concrete label or
    the hole's domain.  For a move/remove it is the labels of the moved/
    removed subtree: bounded only when the position is a
    :class:`SubtreeHole` (the guard then *enforces* the bound at apply
    time); a concrete node id or plain :class:`NodeHole` says nothing
    about subtree content on an unknown document, so the bound is ⊤.
    """
    if isinstance(op, TemplateAdd):
        if isinstance(op.label, LabelHole):
            return op.label.domain
        return frozenset((op.label,))
    node = op.node
    if isinstance(node, SubtreeHole):
        return node.labels
    return None


def discharge_pairs(template: UpdateTemplate, constraints: ConstraintSet
                    ) -> tuple[tuple[OpDischarge, ...],
                               tuple[tuple[int, UpdateConstraint], ...]]:
    """Split the obligation pairs into (discharged, undischarged)."""
    signatures = [impact_signature(c) for c in constraints.constraints]
    discharged: list[OpDischarge] = []
    open_pairs: list[tuple[int, UpdateConstraint]] = []
    for at, op in enumerate(template.ops):
        kind = _op_kind(op)
        touched = _op_labels(op)
        for sig in signatures:
            if kind not in sig.kinds:
                discharged.append(OpDischarge(at, sig.constraint, "kind"))
            elif (touched is not None and sig.labels is not None
                  and not (touched & sig.labels)):
                discharged.append(OpDischarge(at, sig.constraint,
                                              "labels"))
            else:
                open_pairs.append((at, sig.constraint))
    return tuple(discharged), tuple(open_pairs)


# ----------------------------------------------------------------------
# Counterexample search
# ----------------------------------------------------------------------
def _search_alphabet(template: UpdateTemplate,
                     constraints: ConstraintSet) -> list[str]:
    """Labels worth putting in witness documents, sorted."""
    labels: set[str] = set(constraints.labels())
    for op in template.ops:
        touched = _op_labels(op)
        if touched is not None:
            labels.update(touched)
    labels.add(_OFFSIDE_LABEL)
    return sorted(labels)


def _witness_documents(template: UpdateTemplate,
                       constraints: ConstraintSet,
                       rng: random.Random, *,
                       model_cap: int,
                       random_documents: int) -> Iterator[DataTree]:
    """Candidate witness documents, most promising first.

    Canonical models of each constraint's range put a live match on the
    table (moves/removes can destroy it → ``NO_REMOVE`` witnesses); the
    output-leaf-pruned variants leave a *near*-match one insertion away
    (→ ``NO_INSERT`` witnesses); an offside root child gives holes a
    place to land that is not part of any match; seeded random trees
    over the combined alphabet cover interactions the shaped candidates
    miss.  Deterministic for a given ``rng`` state.
    """
    alphabet = _search_alphabet(template, constraints)
    wildcards = [lbl for lbl in alphabet if lbl != _OFFSIDE_LABEL][:2] \
        or [_OFFSIDE_LABEL]
    for constraint in constraints.constraints:
        for model in islice(canonical_models(
                constraint.range, model_cap,
                wildcard_labels=wildcards), 4):
            base = model.tree
            yield base.copy()
            offside = base.copy()
            offside.add_child(offside.root, _OFFSIDE_LABEL)
            yield offside
            if (model.output != base.root
                    and not base.children(model.output)):
                pruned = offside.copy()
                pruned.remove_subtree(model.output)
                yield pruned
    for _ in range(random_documents):
        tree = DataTree()
        nodes = [tree.root]
        for _ in range(rng.randrange(3, 9)):
            parent = nodes[rng.randrange(len(nodes))]
            nodes.append(tree.add_child(
                parent, alphabet[rng.randrange(len(alphabet))]))
        yield tree


def _violating_commit(template: UpdateTemplate,
                      bindings: dict[str, Binding],
                      document: DataTree,
                      constraints: ConstraintSet
                      ) -> tuple[Violation, ...] | None:
    """Replay one instantiation uncertified; the violations if rejected."""
    enforcer = StreamEnforcer(constraints, document.copy(),
                              analysis=False)
    enforcer.apply(Begin(template.name))
    for op in template.instantiate(bindings):
        enforcer.apply(op)
    decision = enforcer.apply(Commit())
    if decision.accepted:
        return None
    return decision.violations


def _search_counterexample(template: UpdateTemplate,
                           constraints: ConstraintSet, *,
                           seed: int,
                           model_cap: int,
                           random_documents: int,
                           max_bindings: int,
                           ) -> tuple[TemplateCounterexample | None, int]:
    """Bounded refutation: (witness or None, instantiations replayed)."""
    rng = random.Random(seed)
    attempts = 0
    for document in _witness_documents(template, constraints, rng,
                                       model_cap=model_cap,
                                       random_documents=random_documents):
        candidates = _hole_candidates(template, document)
        if candidates is None:
            continue
        names = sorted(candidates)
        pools = [candidates[name] for name in names]
        for combo in islice(product(*pools), max_bindings):
            bindings = dict(zip(names, combo))
            if template.guard_errors(bindings, document) is not None:
                continue
            attempts += 1
            violations = _violating_commit(template, bindings, document,
                                           constraints)
            if violations is not None:
                return TemplateCounterexample(document, bindings,
                                              violations), attempts
    return None, attempts


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------
def certify(template: UpdateTemplate, constraints: ConstraintSet, *,
            seed: int = DEFAULT_SEED,
            model_cap: int = 2,
            random_documents: int = 4,
            max_bindings: int = 256,
            metrics: MetricsRegistry | None = None) -> CertifyOutcome:
    """Decide whether every instantiation of ``template`` preserves
    ``constraints``; on failure, hunt for a replaying counterexample.

    The static phase is sound and complete-in-its-arguments: all pairs
    discharged ⇒ CERTIFIED (no search runs, ``attempts`` is 0).  The
    search phase is sound but bounded: a witness ⇒ REJECTED with a
    :class:`TemplateCounterexample` that replays to a real rejection;
    budget exhausted ⇒ UNKNOWN (treat as not-certifiable — the hot path
    refuses UNKNOWN templates, it never guesses).

    ``seed``/``model_cap``/``random_documents``/``max_bindings`` bound
    the search deterministically, so re-certification during journal
    recovery reproduces the stored verdict bit-for-bit.
    """
    constraints.require_concrete()
    m = metrics if metrics is not None else _obs_registry()
    started = perf_counter()
    discharged, open_pairs = discharge_pairs(template, constraints)
    pairs = len(discharged) + len(open_pairs)
    if not open_pairs:
        outcome = CertifyOutcome(
            CertifyVerdict.CERTIFIED,
            certificate=TemplateCertificate(template.canonical_key(),
                                            discharged),
            pairs=pairs, discharged=len(discharged))
        m.counter("certify.certified_total").inc()
    else:
        witness, attempts = _search_counterexample(
            template, constraints, seed=seed, model_cap=model_cap,
            random_documents=random_documents, max_bindings=max_bindings)
        if witness is not None:
            outcome = CertifyOutcome(
                CertifyVerdict.REJECTED, counterexample=witness,
                pairs=pairs, discharged=len(discharged),
                attempts=attempts, undischarged=open_pairs)
            m.counter("certify.rejected_total").inc()
        else:
            outcome = CertifyOutcome(
                CertifyVerdict.UNKNOWN, pairs=pairs,
                discharged=len(discharged), attempts=attempts,
                undischarged=open_pairs)
            m.counter("certify.unknown_total").inc()
    m.histogram("certify.certify_seconds").observe(
        perf_counter() - started)
    return outcome


__all__ = [
    "DEFAULT_SEED", "CertifyVerdict", "OpDischarge",
    "TemplateCertificate", "TemplateCounterexample", "CertifyOutcome",
    "discharge_pairs", "certify",
]

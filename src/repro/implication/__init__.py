"""General constraint implication — Section 4 / Table 1 of the paper."""

from repro.implication.cross_type import cross_type_counterexample
from repro.implication.general import implies
from repro.implication.intersection_engine import implies_by_intersection
from repro.implication.linear_claim import implies_linear_one_type
from repro.implication.linear_engine import LinearRecordEngine, implies_linear
from repro.implication.one_type import implies_one_type
from repro.implication.profile_search import profile_swap_refutation
from repro.implication.result import (
    Answer,
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
    unknown,
)
from repro.implication.same_type import implies_child_only
from repro.implication.theorem31 import (
    build_interchange_counterexample,
    build_replacement_counterexample,
    counterexample_same_type,
    implies_single,
)

__all__ = [
    "implies",
    "Answer",
    "ImplicationResult",
    "Counterexample",
    "implied",
    "not_implied",
    "unknown",
    "implies_single",
    "implies_one_type",
    "implies_by_intersection",
    "implies_child_only",
    "implies_linear",
    "implies_linear_one_type",
    "LinearRecordEngine",
    "profile_swap_refutation",
    "cross_type_counterexample",
    "counterexample_same_type",
    "build_replacement_counterexample",
    "build_interchange_counterexample",
]

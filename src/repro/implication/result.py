"""Verdicts and certificates for the implication problems.

Every engine returns an :class:`ImplicationResult`.  A ``NOT_IMPLIED``
verdict should carry a *counterexample certificate*: a pair ``(I, J)`` valid
for the premise constraints and violating the conclusion, plus the witness
node.  Certificates are machine-checkable — :meth:`ImplicationResult.verify`
re-validates them with the independent checker of
:mod:`repro.constraints.validity`, and the test-suite calls it on every
refutation any engine ever produces.

``UNKNOWN`` verdicts are legal only for the hybrid engines covering the
paper's NEXPTIME cell (mixed types, predicates and descendant axis
together); they are never silent — ``reason`` explains which sound tests
were exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.constraints.validity import explain_violations, violation_of
from repro.trees.tree import DataTree


class Answer(Enum):
    IMPLIED = "implied"
    NOT_IMPLIED = "not-implied"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        raise TypeError(
            "an Answer is three-valued; compare explicitly or use "
            "ImplicationResult.is_implied / .is_refuted"
        )


@dataclass(frozen=True)
class Counterexample:
    """A certificate of non-implication: a valid pair violating ``c``."""

    before: DataTree
    after: DataTree
    witness: int | None = None  # id of a node violating the conclusion

    def check(self, premises: ConstraintSet, conclusion: UpdateConstraint) -> list[str]:
        """Return a list of problems (empty = the certificate is sound)."""
        problems = [
            f"premise broken: {violation}"
            for violation in explain_violations(self.before, self.after, premises)
        ]
        if violation_of(self.before, self.after, conclusion) is None:
            problems.append(f"conclusion {conclusion} is not violated")
        return problems


@dataclass(frozen=True)
class ImplicationResult:
    """Outcome of an implication query, with provenance and certificate."""

    answer: Answer
    engine: str
    premises: ConstraintSet
    conclusion: UpdateConstraint
    reason: str = ""
    counterexample: Counterexample | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def is_implied(self) -> bool:
        return self.answer is Answer.IMPLIED

    @property
    def is_refuted(self) -> bool:
        return self.answer is Answer.NOT_IMPLIED

    @property
    def is_unknown(self) -> bool:
        return self.answer is Answer.UNKNOWN

    def verify(self) -> list[str]:
        """Re-check the attached certificate; empty list means consistent."""
        if self.counterexample is None:
            return []
        return self.counterexample.check(self.premises, self.conclusion)

    def __str__(self) -> str:
        tag = {Answer.IMPLIED: "⊨", Answer.NOT_IMPLIED: "⊭", Answer.UNKNOWN: "?"}[self.answer]
        note = f" ({self.reason})" if self.reason else ""
        return f"C {tag} {self.conclusion} [{self.engine}]{note}"


def implied(engine: str, premises: ConstraintSet, conclusion: UpdateConstraint,
            reason: str = "", **details: Any) -> ImplicationResult:
    return ImplicationResult(Answer.IMPLIED, engine, premises, conclusion, reason,
                             None, dict(details))


def not_implied(engine: str, premises: ConstraintSet, conclusion: UpdateConstraint,
                counterexample: Counterexample | None = None, reason: str = "",
                **details: Any) -> ImplicationResult:
    return ImplicationResult(Answer.NOT_IMPLIED, engine, premises, conclusion, reason,
                             counterexample, dict(details))


def unknown(engine: str, premises: ConstraintSet, conclusion: UpdateConstraint,
            reason: str, **details: Any) -> ImplicationResult:
    return ImplicationResult(Answer.UNKNOWN, engine, premises, conclusion, reason,
                             None, dict(details))

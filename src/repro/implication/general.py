"""The general-implication dispatcher (all of Table 1).

``implies(C, c)`` routes a problem to the strongest engine whose
completeness conditions its fragment satisfies:

====================================  =======================================
problem shape                          engine (exactness)
====================================  =======================================
no premise of the conclusion's type    cross-type construction (exact)
single-type premises                   canonical one-type engine (exact,
                                       Theorem 4.7 cell; coNP)
mixed types, no ``//``                 same-type reduction (exact,
                                       Theorems 4.1 + 4.4/4.5; PTIME)
mixed types, no predicates             linear record fixpoint (exact,
                                       Theorem 4.3 cell)
mixed types, ``//`` and ``[]``         hybrid: sound one-type implication
                                       test + sound profile-swap refutation;
                                       may return UNKNOWN (NEXPTIME cell)
====================================  =======================================

With ``require_decision=True`` an UNKNOWN outcome raises
:class:`UnsupportedProblemError` instead — callers who must have an answer
fail loudly rather than silently trusting a heuristic.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.errors import UnsupportedProblemError
from repro.implication.cross_type import cross_type_counterexample
from repro.implication.linear_engine import implies_linear
from repro.implication.one_type import implies_one_type
from repro.implication.profile_search import profile_swap_refutation
from repro.implication.result import (
    ImplicationResult,
    implied,
    not_implied,
    unknown,
)
from repro.implication.same_type import implies_child_only

HYBRID_ENGINE = "hybrid-nexptime-cell"


def implies(premises: ConstraintSet | Iterable[UpdateConstraint],
            conclusion: UpdateConstraint,
            require_decision: bool = False) -> ImplicationResult:
    """Decide ``C ⊨ c`` (Definition 2.4), dispatching by fragment and types."""
    if not isinstance(premises, ConstraintSet):
        premises = ConstraintSet(premises)
    conclusion.require_concrete()
    premises.require_concrete()

    same = premises.of_type(conclusion.type)
    if len(same) == 0:
        certificate = cross_type_counterexample(premises, conclusion)
        return not_implied("cross-type", premises, conclusion, certificate,
                           reason="no premise shares the conclusion's type")

    if premises.is_single_type:
        return implies_one_type(premises, conclusion)

    fragment = premises.fragment(conclusion.range)
    if not fragment.descendant:
        return implies_child_only(premises, conclusion)
    if not fragment.predicates:
        return implies_linear(premises, conclusion)

    # --- the NEXPTIME cell: hybrid, sound-only -------------------------
    one_type = implies_one_type(same, conclusion)
    if one_type.is_implied:
        return implied(HYBRID_ENGINE, premises, conclusion,
                       reason="already implied by the same-type premises alone")
    certificate = profile_swap_refutation(premises, conclusion, subset_limit=2)
    if certificate is not None:
        return not_implied(HYBRID_ENGINE, premises, conclusion, certificate,
                           reason="profile-preserving swap counterexample found")
    if require_decision:
        raise UnsupportedProblemError(
            "mixed types with predicates and descendant axis (the paper's "
            "NEXPTIME cell): sound tests were inconclusive"
        )
    return unknown(HYBRID_ENGINE, premises, conclusion,
                   reason="sound implication test failed and no swap "
                          "counterexample exists; the NEXPTIME cell needs the "
                          "full DTD+regular-keys consistency reduction "
                          "(see repro.keys.encoding)")

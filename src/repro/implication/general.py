"""The general-implication dispatcher (all of Table 1).

``implies(C, c)`` routes a problem to the strongest engine whose
completeness conditions its fragment satisfies:

====================================  =======================================
problem shape                          engine (exactness)
====================================  =======================================
no premise of the conclusion's type    cross-type construction (exact)
single-type premises                   canonical one-type engine (exact,
                                       Theorem 4.7 cell; coNP)
mixed types, no ``//``                 same-type reduction (exact,
                                       Theorems 4.1 + 4.4/4.5; PTIME)
mixed types, no predicates             linear record fixpoint (exact,
                                       Theorem 4.3 cell)
mixed types, ``//`` and ``[]``         hybrid: sound one-type implication
                                       test + sound profile-swap refutation;
                                       may return UNKNOWN (NEXPTIME cell)
====================================  =======================================

With ``require_decision=True`` an UNKNOWN outcome raises
:class:`UnsupportedProblemError` instead — callers who must have an answer
fail loudly rather than silently trusting a heuristic.

The dispatch itself lives in :class:`repro.api.session.Reasoner`; this
free function is a thin route through :mod:`repro.service.dispatch` (a
transient, cache-free session) so that the system has exactly one
dispatch code path.  Callers with a stable ``C`` and many conclusions
should hold a :class:`~repro.api.Reasoner` instead and amortise the
per-``C`` analysis.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.implication.result import ImplicationResult

HYBRID_ENGINE = "hybrid-nexptime-cell"


def implies(premises: ConstraintSet | Iterable[UpdateConstraint],
            conclusion: UpdateConstraint,
            require_decision: bool = False) -> ImplicationResult:
    """Decide ``C ⊨ c`` (Definition 2.4), dispatching by fragment and types."""
    from repro.service.dispatch import one_shot_implies

    return one_shot_implies(premises, conclusion,
                            require_decision=require_decision)

"""Exact mixed-type implication for linear paths (``XP{/,//,*}``).

The paper routes this cell of Table 1 (Theorem 4.3) through consistency of
DTDs with unary regular keys.  We implement an equivalent, self-contained
decision procedure — the **record fixpoint engine** — that works directly on
the word languages of the ranges.

Model.  For linear queries a node's memberships depend only on its
root-to-node label word.  A counterexample pair ``(I, J)`` therefore
projects onto a finite set of *records* ``(u, v)`` — the word of each node
in ``I`` and in ``J`` (``⊥`` when absent) — subject to:

* label agreement: ``u`` and ``v`` end with the same symbol (a node has one
  label);
* constraint locality: ``u ∈ L(p) ⇒ v ∈ L(p)`` for each no-remove premise
  ``p``, and ``v ∈ L(p) ⇒ u ∈ L(p)`` for each no-insert premise;
* prefix support: every proper prefix of ``u`` is the ``u``-word of some
  record (its ancestor in ``I``), and likewise for ``v`` in ``J``.

Conversely, any finite record set closed under these rules assembles into a
valid pair — ancestors can always be materialised as fresh branches because
nothing bounds node multiplicity.  So::

    C ⊭ (q,↑)  iff  some derivable record has  u ∈ L(q)  and  v ∉ L(q) (or ⊥)

and symmetrically for ``↓``.  Derivability is computed as a least fixpoint
over pairs of *product-DFA states* (finite!), with per-round witness words
kept so a refutation can be re-materialised into an actual ``(I, J)`` pair
— the certificate is then re-checked by the ordinary validity checker.

Example 4.1 — where no-insert and no-remove constraints interact and the
same-type property fails — is decided exactly by this engine and serves as
its acceptance test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.compile import engine_alphabet, linear_to_dfa
from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.node import fresh_id
from repro.trees.tree import DataTree
from repro.xpath.properties import is_linear

ENGINE = "linear-record-fixpoint"

Word = tuple[str, ...]


@dataclass(frozen=True)
class _RecordKey:
    """Equivalence class of records: product states + the node's label."""

    state_i: int | None     # product state of u, None = node absent from I
    state_j: int | None     # product state of v, None = node absent from J
    label: str | None       # None only for the root record


@dataclass
class _Record:
    key: _RecordKey
    round: int
    u_word: Word | None
    v_word: Word | None


class _Product:
    """Reachable product of the range DFAs with acceptance vectors."""

    def __init__(self, dfas):
        self.alphabet = dfas[0].alphabet
        start_key = tuple(d.start for d in dfas)
        self.index: dict[tuple[int, ...], int] = {start_key: 0}
        keys = [start_key]
        self.delta: list[dict[str, int]] = []
        queue = deque([start_key])
        while queue:
            key = queue.popleft()
            row: dict[str, int] = {}
            for symbol in self.alphabet:
                nxt = tuple(d.step(s, symbol) for d, s in zip(dfas, key, strict=True))
                if nxt not in self.index:
                    self.index[nxt] = len(keys)
                    keys.append(nxt)
                    queue.append(nxt)
                row[symbol] = self.index[nxt]
            self.delta.append(row)
        self.accepts: list[frozenset[int]] = [
            frozenset(i for i, (d, s) in enumerate(zip(dfas, key, strict=True)) if s in d.accepting)
            for key in keys
        ]
        self.start = 0

    @property
    def n_states(self) -> int:
        return len(self.delta)


class LinearRecordEngine:
    """The fixpoint computation for one implication problem."""

    def __init__(self, premises: ConstraintSet, conclusion: UpdateConstraint):
        for pattern in premises.ranges + (conclusion.range,):
            if not is_linear(pattern):
                raise FragmentError(f"{pattern} has predicates: not in XP{{/,//,*}}")
        conclusion.require_concrete()
        premises.require_concrete()
        self.premises = premises
        self.conclusion = conclusion
        patterns = [conclusion.range] + list(premises.ranges)
        alphabet = engine_alphabet(patterns)
        self.product = _Product([linear_to_dfa(p, alphabet) for p in patterns])
        self.up_idx = [i + 1 for i, c in enumerate(premises)
                       if c.type is ConstraintType.NO_REMOVE]
        self.down_idx = [i + 1 for i, c in enumerate(premises)
                         if c.type is ConstraintType.NO_INSERT]
        self.records: dict[_RecordKey, _Record] = {}
        self.supp_i: dict[tuple[int, str], _Record] = {}
        self.supp_j: dict[tuple[int, str], _Record] = {}
        self._run_fixpoint()

    # ------------------------------------------------------------------
    # Local feasibility
    # ------------------------------------------------------------------
    def _locally_ok(self, state_i: int | None, state_j: int | None) -> bool:
        acc = self.product.accepts
        if state_i is not None and state_j is not None:
            hit_i, hit_j = acc[state_i], acc[state_j]
            return all(k in hit_j for k in self.up_idx if k in hit_i) and all(
                k in hit_i for k in self.down_idx if k in hit_j
            )
        if state_i is not None:  # node deleted: must sit in no no-remove range
            return not any(k in acc[state_i] for k in self.up_idx)
        assert state_j is not None  # fresh node: must sit in no no-insert range
        return not any(k in acc[state_j] for k in self.down_idx)

    # ------------------------------------------------------------------
    # Buildable endpoints under the current supports
    # ------------------------------------------------------------------
    def _endpoints(self, supports: dict[tuple[int, str], _Record]
                   ) -> dict[tuple[int, str], Word]:
        """All (state, last-symbol) pairs reachable through supported prefixes,
        each with a shortest witness word."""
        prod = self.product
        usable: set[int] = {prod.start}
        words: dict[int, Word] = {prod.start: ()}
        queue = deque([prod.start])
        found: dict[tuple[int, str], Word] = {}
        while queue:
            state = queue.popleft()
            base = words[state]
            for symbol, nxt in prod.delta[state].items():
                pair = (nxt, symbol)
                if pair not in found:
                    found[pair] = base + (symbol,)
                # The endpoint may serve as a prefix only if supported.
                if pair in supports and nxt not in usable:
                    usable.add(nxt)
                    words[nxt] = base + (symbol,)
                    queue.append(nxt)
        return found

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _run_fixpoint(self) -> None:
        root = _Record(_RecordKey(self.product.start, self.product.start, None), 0, (), ())
        self.records[root.key] = root
        round_no = 0
        while True:
            round_no += 1
            ends_i = self._endpoints(self.supp_i)
            ends_j = self._endpoints(self.supp_j)
            fresh_records: list[_Record] = []
            # Records present on both sides (label must agree).
            for (si, a), u_word in ends_i.items():
                for (sj, b), v_word in ends_j.items():
                    if a != b:
                        continue
                    key = _RecordKey(si, sj, a)
                    if key in self.records or not self._locally_ok(si, sj):
                        continue
                    fresh_records.append(_Record(key, round_no, u_word, v_word))
            # Deleted nodes (present in I only).
            for (si, a), u_word in ends_i.items():
                key = _RecordKey(si, None, a)
                if key not in self.records and self._locally_ok(si, None):
                    fresh_records.append(_Record(key, round_no, u_word, None))
            # Fresh nodes (present in J only).
            for (sj, b), v_word in ends_j.items():
                key = _RecordKey(None, sj, b)
                if key not in self.records and self._locally_ok(None, sj):
                    fresh_records.append(_Record(key, round_no, None, v_word))
            if not fresh_records:
                break
            for record in fresh_records:
                self.records[record.key] = record
                key = record.key
                if key.state_i is not None and key.label is not None:
                    self.supp_i.setdefault((key.state_i, key.label), record)
                if key.state_j is not None and key.label is not None:
                    self.supp_j.setdefault((key.state_j, key.label), record)

    # ------------------------------------------------------------------
    # Decision + certificate
    # ------------------------------------------------------------------
    def violating_record(self) -> _Record | None:
        acc = self.product.accepts
        want_remove = self.conclusion.type is ConstraintType.NO_REMOVE
        for key, record in self.records.items():
            if key.label is None:
                continue
            if want_remove:
                if key.state_i is not None and 0 in acc[key.state_i] and (
                    key.state_j is None or 0 not in acc[key.state_j]
                ):
                    return record
            else:
                if key.state_j is not None and 0 in acc[key.state_j] and (
                    key.state_i is None or 0 not in acc[key.state_i]
                ):
                    return record
        return None

    # -- materialisation -------------------------------------------------
    def _state_after(self, word: Word) -> list[int]:
        states = [self.product.start]
        for symbol in word:
            states.append(self.product.delta[states[-1]][symbol])
        return states

    def _materialize_i_node(self, tree_i: DataTree, tree_j: DataTree,
                            u_word: Word) -> int:
        """Create the I-chain for ``u_word``; place intermediates in J per
        their supports; return the id of the deepest node (not yet in J)."""
        states = self._state_after(u_word)
        parent = tree_i.root
        for depth, symbol in enumerate(u_word, start=1):
            nid = tree_i.add_child(parent, symbol)
            if depth < len(u_word):
                support = self.supp_i[(states[depth], symbol)]
                if support.v_word is not None:
                    self._attach_j_path(tree_i, tree_j, nid, support.v_word)
            parent = nid
        return parent

    def _attach_j_path(self, tree_i: DataTree, tree_j: DataTree,
                       nid: int, v_word: Word) -> None:
        """Give node ``nid`` the J-position ``v_word``, building the chain."""
        states = self._state_after(v_word)
        parent = tree_j.root
        for depth, symbol in enumerate(v_word[:-1], start=1):
            support = self.supp_j[(states[depth], symbol)]
            if support.u_word is None:
                parent = tree_j.add_child(parent, symbol)
            else:
                mid = self._materialize_i_node(tree_i, tree_j, support.u_word)
                parent = tree_j.add_child(parent, symbol, nid=mid)
        tree_j.add_child(parent, v_word[-1], nid=nid)

    def certificate(self, record: _Record) -> Counterexample:
        tree_i = DataTree()
        tree_j = DataTree()
        if record.u_word is not None:
            nid = self._materialize_i_node(tree_i, tree_j, record.u_word)
        else:
            nid = fresh_id()
        if record.v_word is not None:
            self._attach_j_path(tree_i, tree_j, nid, record.v_word)
        return Counterexample(tree_i, tree_j, witness=nid)

    def result(self) -> ImplicationResult:
        record = self.violating_record()
        if record is None:
            return implied(ENGINE, self.premises, self.conclusion,
                           reason="record fixpoint admits no violating node",
                           records=len(self.records),
                           product_states=self.product.n_states)
        return not_implied(ENGINE, self.premises, self.conclusion,
                           self.certificate(record),
                           reason="derivable record escapes the conclusion range",
                           records=len(self.records),
                           product_states=self.product.n_states)


def implies_linear(premises: ConstraintSet,
                   conclusion: UpdateConstraint) -> ImplicationResult:
    """Exact implication for arbitrary-type constraints over linear paths."""
    return LinearRecordEngine(premises, conclusion).result()

"""Cross-type implication: a one-type premise set never implies the
opposite type.

* No-remove constraints only restrict what must *survive* from ``I``; they
  are indifferent to pure insertions.  Hence for any all-``↑`` set ``C`` and
  any ``(q, ↓)``: grow ``J`` by a fresh canonical ``q``-branch — ``C`` holds
  (nothing was removed) while ``q`` gained a node.
* Symmetrically, all-``↓`` sets never imply a ``(q, ↑)``: shrink ``I`` by a
  fresh ``q``-branch.

These constructions give *exact* answers (and certificates) for the
cross-type corners of Table 1, letting the dispatcher reduce every one-type
question to the same-type engines.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.implication.result import Counterexample
from repro.trees.ops import graft_at_root
from repro.trees.tree import DataTree
from repro.xpath.canonical import smallest_model


def fresh_branch_insertion(base: DataTree, constraint: UpdateConstraint) -> Counterexample:
    """Violate ``(q, ↓)`` against any backdrop: ``J = base ⊕ fresh q-branch``.

    The grafted branch consists of brand-new nodes, so nothing is removed
    anywhere — every no-remove constraint stays satisfied.
    """
    model = smallest_model(constraint.range)
    before = base.copy()
    after = base.copy()
    mapping = graft_at_root(after, model.tree, fresh=False)
    return Counterexample(before, after, witness=mapping[model.output])


def fresh_branch_removal(base: DataTree, constraint: UpdateConstraint) -> Counterexample:
    """Violate ``(q, ↑)``: ``I = base ⊕ fresh q-branch``, ``J = base``.

    Dropping brand-new nodes shrinks every range, which no no-insert
    constraint forbids.
    """
    model = smallest_model(constraint.range)
    before = base.copy()
    after = base.copy()
    mapping = graft_at_root(before, model.tree, fresh=False)
    return Counterexample(before, after, witness=mapping[model.output])


def cross_type_counterexample(premises: ConstraintSet,
                              conclusion: UpdateConstraint) -> Counterexample:
    """Certificate that a premise set with no constraint of ``conclusion``'s
    type cannot imply it.

    Callers must ensure ``premises.of_type(conclusion.type)`` is empty; the
    construction is then valid for the *whole* premise set: the untouched
    side never changes, and the touched side only gains (resp. loses) fresh
    nodes.
    """
    base = DataTree()
    if conclusion.type is ConstraintType.NO_INSERT:
        return fresh_branch_insertion(base, conclusion)
    return fresh_branch_removal(base, conclusion)

"""Sound refutation by profile-preserving swaps (hybrid engine core).

A *profile* of a tree position is the exact set of premise ranges selecting
it.  If some position ``u`` is selected by the conclusion range ``q`` with
premise profile ``V``, and some position ``w`` realises the *same* premise
profile ``V`` while avoiding ``q``, then swapping the two occupants refutes
implication for **arbitrary** mixed premise sets::

    I = T(u: n, w: m)        J = T(u: m, w: n)      (same underlying tree T)

Every node keeps its exact premise profile across the update (``n`` and
``m`` trade places between profile-equal positions; everyone else stays
put), so every no-remove and every no-insert premise holds; ``n`` leaves
``q`` (no-remove conclusion) or enters it (mirror).

The search enumerates candidate ``u``-positions as canonical models of
product patterns of ``q`` with small premise-range subsets (richer subsets
= richer profiles), and asks :func:`repro.xpath.intersection.escape_witness`
for a ``w`` with exactly the same profile.  The construction is *sound* on
the full fragment ``XP{/,[],//,*}`` with mixed types — it powers the
refutation half of the NEXPTIME cell's hybrid engine — but it is not
complete: cascading multi-node counterexamples (Example 4.1 style) are out
of its reach, which is exactly why the dispatcher prefers the exact engines
whenever a fragment restriction applies.
"""

from __future__ import annotations

from itertools import combinations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.implication.result import Counterexample
from repro.trees.ops import fresh_label_for, graft_at_root, swap_ids
from repro.xpath.ast import Axis, Pattern, Step
from repro.xpath.canonical import canonical_models
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.intersection import escape_witness, product_patterns
from repro.xpath.properties import labels_of, max_star_length


def _label_anchor(label: str) -> Pattern:
    """The pattern ``//label`` — pins the last symbol of an escape witness."""
    return Pattern((Step(Axis.DESC, label),))


def _candidate_models(q: Pattern, ranges: list[Pattern], cap: int, fresh: str,
                      subset_limit: int, model_budget: int):
    """Canonical models of q (possibly enriched by premise ranges)."""
    produced = 0
    subsets: list[tuple[Pattern, ...]] = [()]
    for size in range(1, subset_limit + 1):
        subsets.extend(combinations(ranges, size))
    for subset in subsets:
        try:
            prods = product_patterns([q, *subset]) if subset else [q]
        except ValueError:
            continue
        for prod in prods:
            for model in canonical_models(prod, cap, fresh=fresh):
                yield model
                produced += 1
                if produced >= model_budget:
                    return


def profile_swap_refutation(
    premises: ConstraintSet,
    conclusion: UpdateConstraint,
    subset_limit: int = 1,
    model_budget: int = 2000,
) -> Counterexample | None:
    """Search for a profile-preserving swap counterexample (sound, incomplete).

    Returns a validated certificate or ``None``; never a wrong answer.
    """
    q = conclusion.range
    ranges = list(premises.ranges)
    cap = max_star_length(ranges + [q]) + 1
    fresh = fresh_label_for(labels_of(q, *ranges))
    label = q.output_label
    assert label is not None, "engines require concrete conclusions"
    anchor = _label_anchor(label)

    for model in _candidate_models(q, ranges, cap, fresh, subset_limit, model_budget):
        n = model.output
        profile = [c for c in premises if n in evaluate_ids(c.range, model.tree)]
        hit_ranges = [c.range for c in profile]
        avoid = [q] + [c.range for c in premises if c not in profile]
        witness = escape_witness(hit_ranges + [anchor], avoid)
        if witness is None:
            continue
        merged = model.tree.copy()
        mapping = graft_at_root(merged, witness.tree, fresh=False)
        m = mapping[witness.output]
        if merged.label(n) != merged.label(m):
            continue
        swapped = swap_ids(merged, n, m)
        if conclusion.type is ConstraintType.NO_REMOVE:
            certificate = Counterexample(before=merged, after=swapped, witness=n)
        else:
            certificate = Counterexample(before=swapped, after=merged, witness=n)
        # Self-check: the construction is proven sound, but re-validate with
        # the independent checker before handing the certificate out.
        if not certificate.check(premises, conclusion):
            return certificate
    return None

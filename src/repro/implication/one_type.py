"""Exact one-type implication on the full fragment (Theorem 4.7's cell).

For an all-no-remove set ``C`` and conclusion ``c = (q, ↑)`` the engine
decides implication through a *canonical-witness characterisation* derived
from the paper's small-model pruning (proof of Theorem 4.7) and the
Figure 3 glue-at-root technique:

    C ⊭ c   iff   some canonical model ``(I*, n)`` of ``q`` (chain cap =
    star-length of ``C ∪ {q}`` + 1, wildcards instantiated by the fresh
    label) satisfies  ``⋂ Hit(n, I*) ⊄ q``,  where
    ``Hit(n, I*) = { p ∈ C : n ∈ p(I*) }`` (and ``⋂∅ ⊄ q`` always holds).

*Soundness*: from an escape witness ``(W, m)`` — a ground tree whose node
``m`` lies in every range of ``Hit`` but not in ``q`` — we assemble the
counterexample pair::

    I = I*                          (n in q)
    J = (I* with n ↦ fresh n')  ⊕  W-branch carrying the id n at m

Grafting at the root never changes any node's memberships (queries are
downward-only and predicates cannot apply to the root), so every node except
``n`` keeps its ranges exactly; ``n`` keeps all its no-remove ranges via
``W`` and leaves ``q`` — a valid pair violating ``c``.

*Completeness*: a real witness pair prunes (Theorem 4.7: keep the marked
``q``-embedding, relabel the rest to the fresh label, cap chains) to a
canonical model ``I*``; pruning only shrinks ``Hit``, and the witness node's
position in ``J`` still realises ``⋂Hit ∖ q``, so the escape test fires.

The all-no-insert case is the exact mirror image (``I`` and ``J`` swap
roles).  Wildcards are instantiated only by the fresh label: that choice
*minimises* ``Hit``, and shrinking ``Hit`` can only make escape easier, so
no generality is lost while the model count stays single-exponential.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import fresh_label_for, graft_at_root, remap_ids
from repro.trees.tree import DataTree
from repro.xpath.canonical import CanonicalModel, canonical_models
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.intersection import escape_witness
from repro.xpath.properties import labels_of, max_star_length

ENGINE = "canonical-one-type"


def _structural_counterexample(
    model: CanonicalModel,
    witness_tree: DataTree | None,
    witness_output: int | None,
) -> tuple[DataTree, DataTree, int]:
    """Build the (grow-side, shrink-side) pair described in the module doc.

    Returns ``(kept, moved, n)`` where ``kept`` contains ``n`` in ``q`` and
    ``moved`` has ``n`` relocated to the witness position (or dropped when
    no witness tree is needed because ``Hit`` was empty).
    """
    n = model.output
    kept = model.tree
    moved = kept.copy()
    moved.relabel_fresh(n)  # n disappears from its q-position
    if witness_tree is not None:
        assert witness_output is not None
        relocated = remap_ids(witness_tree, {witness_output: n})
        graft_at_root(moved, relocated, fresh=False)
    return kept, moved, n


def decide_one_type(premise_ranges, q, ctype: ConstraintType,
                    cap: int | None = None):
    """Core decision: returns ``None`` (implied) or a structural certificate.

    ``premise_ranges`` are the ranges of an all-``ctype`` premise set and
    ``q`` the conclusion range of the same type.  The returned triple is
    ``(kept, moved, n)`` oriented for the no-remove reading; the caller
    mirrors it for no-insert.
    """
    ranges = list(premise_ranges)
    if cap is None:
        cap = max_star_length(ranges + [q]) + 1
    fresh = fresh_label_for(labels_of(q, *ranges))
    for model in canonical_models(q, cap, fresh=fresh):
        hit = [p for p in ranges if model.output in evaluate_ids(p, model.tree)]
        if not hit:
            return _structural_counterexample(model, None, None)
        witness = escape_witness(hit, [q])
        if witness is not None:
            return _structural_counterexample(model, witness.tree, witness.output)
    return None


def implies_one_type(premises: ConstraintSet, conclusion: UpdateConstraint,
                     engine: str = ENGINE) -> ImplicationResult:
    """Exact implication for a single-type problem on ``XP{/,[],//,*}``."""
    if not premises.is_single_type:
        raise FragmentError("one-type engine requires a single-type premise set")
    conclusion.require_concrete()
    premises.require_concrete()
    if len(premises) and next(iter(premises)).type is not conclusion.type:
        from repro.implication.cross_type import cross_type_counterexample

        certificate = cross_type_counterexample(premises, conclusion)
        return not_implied(engine, premises, conclusion, certificate,
                           reason="premises are all of the opposite type")
    outcome = decide_one_type(premises.ranges, conclusion.range, conclusion.type)
    if outcome is None:
        return implied(engine, premises, conclusion,
                       reason="every canonical witness keeps the conclusion range")
    kept, moved, n = outcome
    if conclusion.type is ConstraintType.NO_REMOVE:
        certificate = Counterexample(before=kept, after=moved, witness=n)
    else:
        # Mirror image: an insertion into q(J) is a removal read backwards.
        certificate = Counterexample(before=moved, after=kept, witness=n)
    return not_implied(engine, premises, conclusion, certificate,
                       reason="canonical witness escapes the conclusion range")

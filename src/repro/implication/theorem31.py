"""Theorem 3.1: single-constraint implication is query equivalence.

For same-type constraints ``c1 = (q1, σ)`` and ``c2 = (q2, σ)``::

    c1 ⊨ c2   iff   q1 ≡ q2

The two directions of the proof are constructive and both constructions are
implemented here:

* ``q2 ⊄ q1`` — take a tree ``T`` with ``n ∈ q2(T) - q1(T)`` and replace
  ``n`` by a fresh same-labelled node: ``q2`` loses ``n`` while ``q1`` never
  contained it;
* ``q1 ⊄ q2`` (Figure 3) — glue a tree ``T`` (with ``n ∈ q2(T)``) and a
  separator ``T'`` (with ``n' ∈ q1(T') - q2(T')``) at the root, then
  *interchange* ``n`` and ``n'``: since grafting at the root never affects
  membership of a node (queries are downward and predicates never apply to
  the root), the swap removes ``n`` from ``q2`` without touching ``q1``.

Both return :class:`Counterexample` certificates; the no-insert case is the
mirror image (swap the roles of before/after).
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.implication.result import (
    Counterexample,
    ImplicationResult,
    implied,
    not_implied,
)
from repro.trees.ops import graft_at_root, replace_with_fresh_copy, swap_ids
from repro.xpath.ast import Pattern
from repro.xpath.canonical import smallest_model
from repro.xpath.containment import contained, equivalent, find_separating_model


def build_replacement_counterexample(q1: Pattern, q2: Pattern) -> Counterexample | None:
    """Counterexample to ``(q1,↑) ⊨ (q2,↑)`` when ``q2 ⊄ q1``.

    ``I`` is a separating model (its output is in ``q2`` but not ``q1``);
    ``J`` replaces that node by a fresh one with the same label.
    """
    model = find_separating_model(q2, q1)
    if model is None:
        return None
    before = model.tree
    after = before.copy()
    replace_with_fresh_copy(after, model.output)
    return Counterexample(before, after, witness=model.output)


def build_interchange_counterexample(q1: Pattern, q2: Pattern) -> Counterexample | None:
    """The Figure 3 counterexample to ``(q1,↑) ⊨ (q2,↑)`` when ``q1 ⊄ q2``.

    Assumes ``q2 ⊆ q1`` (otherwise use the replacement construction, which
    is cheaper).  Returns ``None`` when ``q1 ⊆ q2`` — no counterexample of
    this shape exists.
    """
    separator = find_separating_model(q1, q2)   # n' ∈ q1 - q2
    if separator is None:
        return None
    anchor = smallest_model(q2)                 # n ∈ q2 (and hence ∈ q1 if q2 ⊆ q1)
    n = anchor.output
    before = anchor.tree.copy()
    mapping = graft_at_root(before, separator.tree, fresh=False)
    n_prime = mapping[separator.output]
    if before.label(n) != before.label(n_prime):
        # Outputs of comparable concrete queries always agree on labels;
        # incomparable ones are handled by the replacement construction.
        return None
    after = swap_ids(before, n, n_prime)
    return Counterexample(before, after, witness=n)


def counterexample_same_type(q1: Pattern, q2: Pattern) -> Counterexample | None:
    """A pair valid for ``(q1,↑)`` and violating ``(q2,↑)``, if one exists."""
    direct = build_replacement_counterexample(q1, q2)
    if direct is not None:
        return direct
    return build_interchange_counterexample(q1, q2)


def _mirror(certificate: Counterexample | None) -> Counterexample | None:
    """Swap before/after — the no-insert problem is the time-reversed one."""
    if certificate is None:
        return None
    return Counterexample(certificate.after, certificate.before, certificate.witness)


def implies_single(c1: UpdateConstraint, c2: UpdateConstraint) -> ImplicationResult:
    """Decide ``{c1} ⊨ c2`` (Theorem 3.1), with certificates.

    Same-type pairs reduce to query equivalence.  Opposite-type pairs are
    never implied: a fresh-branch construction yields a counterexample (see
    :mod:`repro.implication.cross_type`).
    """
    premises = ConstraintSet([c1])
    if c1.type is not c2.type:
        from repro.implication.cross_type import cross_type_counterexample

        certificate = cross_type_counterexample(premises, c2)
        return not_implied("theorem-3.1", premises, c2, certificate,
                           reason="opposite update types never imply each other")
    if equivalent(c1.range, c2.range):
        return implied("theorem-3.1", premises, c2, reason="q1 ≡ q2")
    certificate = counterexample_same_type(c1.range, c2.range)
    if c2.type is ConstraintType.NO_INSERT:
        certificate = _mirror(certificate)
    return not_implied("theorem-3.1", premises, c2, certificate,
                       reason="q1 ≢ q2 (Theorem 3.1)",
                       contained_12=contained(c1.range, c2.range),
                       contained_21=contained(c2.range, c1.range))

"""Theorem 4.8's automata claim: one-type implication for linear paths.

The proof of Theorem 4.8 reduces one-type implication over ``XP{/,//,*}`` to
emptiness of products of the range automata and their complements.  In
vector form (over the *exact* acceptance vectors realisable by some word):

for an all-``↑`` premise set and conclusion ``(q, ↑)``::

    C ⊭ c   iff   ∃ realisable (V₁, ℓ) with q ∈ V₁ such that
                  S := V₁ ∖ {q} = ∅                      (delete the node)
               or ∃ realisable (V₂, ℓ) with S ⊆ V₂, q ∉ V₂   (move the node)

where a *realisable* ``(V, ℓ)`` is an exact set of ranges accepting some
non-empty word ending in label ``ℓ`` (the label must be carried along: a
moved node keeps its label).  The all-``↓`` case is the mirror image.

This engine exists for cross-validation: it must agree with the record
fixpoint engine (:mod:`repro.implication.linear_engine`) on every one-type
linear instance, and the test-suite enforces that on random workloads.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.automata.compile import engine_alphabet, linear_to_dfa
from repro.automata.dfa import DFA
from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.result import ImplicationResult, implied, not_implied
from repro.xpath.properties import is_linear

ENGINE = "linear-thm48-claim"

Vector = tuple[frozenset[int], str]


def labelled_vectors(dfas: Sequence[DFA]) -> dict[Vector, tuple[str, ...]]:
    """Exact acceptance vectors of non-empty words, keyed with last symbol.

    Returns a witness word per ``(vector, last-label)`` pair, by BFS over the
    reachable product states.
    """
    alphabet = dfas[0].alphabet
    start = tuple(d.start for d in dfas)
    seen = {start}
    queue: deque[tuple[tuple[int, ...], tuple[str, ...]]] = deque([(start, ())])
    found: dict[Vector, tuple[str, ...]] = {}
    while queue:
        key, word = queue.popleft()
        for symbol in alphabet:
            nxt = tuple(d.step(s, symbol) for d, s in zip(dfas, key, strict=True))
            next_word = word + (symbol,)
            vec = frozenset(i for i, (d, s) in enumerate(zip(dfas, nxt, strict=True)) if s in d.accepting)
            found.setdefault((vec, symbol), next_word)
            if nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, next_word))
    return found


def implies_linear_one_type(premises: ConstraintSet,
                            conclusion: UpdateConstraint) -> ImplicationResult:
    """Decide one-type linear implication by the Theorem 4.8 claim."""
    if not premises.is_single_type:
        raise FragmentError("Theorem 4.8 claim engine requires one update type")
    if len(premises) and next(iter(premises)).type is not conclusion.type:
        from repro.implication.cross_type import cross_type_counterexample

        certificate = cross_type_counterexample(premises, conclusion)
        return not_implied(ENGINE, premises, conclusion, certificate,
                           reason="premises are all of the opposite type")
    patterns = [conclusion.range] + list(premises.ranges)
    for pattern in patterns:
        if not is_linear(pattern):
            raise FragmentError(f"{pattern} has predicates: not in XP{{/,//,*}}")
    conclusion.require_concrete()
    premises.require_concrete()
    alphabet = engine_alphabet(patterns)
    dfas = [linear_to_dfa(p, alphabet) for p in patterns]
    vectors = labelled_vectors(dfas)
    mirror = conclusion.type is ConstraintType.NO_INSERT

    for (v1, label), word1 in vectors.items():
        if 0 not in v1:
            continue
        hits = v1 - {0}
        if not hits:
            return not_implied(
                ENGINE, premises, conclusion,
                reason=f"word {'/'.join(word1)} lies only in the conclusion range",
                word=word1, move_word=None, mirrored=mirror,
            )
        for (v2, label2), word2 in vectors.items():
            if label2 == label and 0 not in v2 and hits <= v2:
                return not_implied(
                    ENGINE, premises, conclusion,
                    reason="node movable between realisable hit vectors",
                    word=word1, move_word=word2, mirrored=mirror,
                )
    return implied(ENGINE, premises, conclusion,
                   reason="no realisable vector pair permits a violation",
                   vectors=len(vectors))

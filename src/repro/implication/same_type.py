"""Theorem 4.1: the same-type property on ``XP{/,[],*}``.

Without the descendant axis, constraints of the opposite type cannot help:
``C ⊨ c`` iff ``C_σ ⊨ c`` where ``σ`` is the type of ``c``.  (The theorem
fails once ``//`` is allowed — Example 4.1 — and even without ``//`` once
relative constraints enter — Example 6.1.)

The engine therefore decides the mixed-type child-only cell *exactly* by
delegating to the one-type machinery on ``C_σ``, in PTIME overall thanks to
Theorem 4.4/4.5.  For refutations it upgrades the one-type counterexample
to one valid for the *whole* premise set, as the proof of Theorem 4.1 does
with its Figure 4/5 constructions; operationally we attempt, in order:

1. the one-type certificate itself (frequently already valid for all of
   ``C`` — we re-check with the independent validity checker);
2. a profile-preserving swap (:mod:`repro.implication.profile_search`),
   which mirrors the proof's ``J0``/least-upper-bound step;
3. otherwise the verdict is still *exact* (Theorem 4.1 guarantees it) and
   is returned with ``certificate=None`` plus an explanatory note.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.intersection_engine import implies_by_intersection
from repro.implication.profile_search import profile_swap_refutation
from repro.implication.result import ImplicationResult, implied, not_implied

ENGINE = "same-type-thm41"


def implies_child_only(premises: ConstraintSet,
                       conclusion: UpdateConstraint) -> ImplicationResult:
    """Exact mixed-type implication on ``XP{/,[],*}`` via Theorem 4.1."""
    fragment = premises.fragment(conclusion.range)
    if fragment.descendant:
        raise FragmentError(
            "the same-type property (Theorem 4.1) holds only without '//'; "
            "Example 4.1 is the counterexample with descendant edges"
        )
    same = premises.of_type(conclusion.type)
    inner = implies_by_intersection(same, conclusion)
    if inner.is_implied:
        return implied(ENGINE, premises, conclusion,
                       reason=f"C_sigma implies c; same-type property applies "
                              f"({inner.reason})",
                       subset=inner.details.get("subset"))
    certificate = inner.counterexample
    if certificate is not None and certificate.check(premises, conclusion):
        certificate = None  # breaks an opposite-type premise; try harder
    if certificate is None:
        certificate = profile_swap_refutation(premises, conclusion)
    return not_implied(
        ENGINE, premises, conclusion, certificate,
        reason="C_sigma does not imply c; by Theorem 4.1 neither does C"
               + ("" if certificate else
                  " (certificate construction of Fig. 4/5 not attempted"
                  " beyond the swap search; the verdict itself is exact)"),
    )

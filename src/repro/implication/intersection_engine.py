"""Theorem 4.4: implication as intersection-equivalence.

On ``XP{/,[],*}`` and ``XP{/,[],//}`` a single-type implication holds *iff*
the conclusion range is equivalent to the intersection of some premise
ranges — and it suffices to intersect every premise range containing the
conclusion (adding more containing ranges only tightens the intersection
towards ``q``)::

    C ⊨ (q, σ)   iff   K := { qi : q ⊆ qi } ≠ ∅   and   ⋂K ⊆ q

On the child-only fragment the intersection is a single pattern computed in
linear time and all containments are homomorphism checks — the PTIME cell
of Table 1 (Theorem 4.5).  With the descendant axis the ``⋂K ⊆ q`` test
enumerates product patterns, matching the coNP-completeness of that cell
(Theorem 4.9 via [13]).

This engine is deliberately an *independent* decision procedure from
:mod:`repro.implication.one_type`: the two are cross-validated against each
other (and against the brute-force oracle) in the test-suite.  Certificates
for refutations are delegated to the canonical engine.
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSet, UpdateConstraint
from repro.errors import FragmentError
from repro.implication.one_type import implies_one_type
from repro.implication.result import ImplicationResult, implied, not_implied
from repro.xpath.containment import contained
from repro.xpath.intersection import intersection_contained

ENGINE = "intersection-equivalence"


def implies_by_intersection(premises: ConstraintSet,
                            conclusion: UpdateConstraint) -> ImplicationResult:
    """Decide one-type implication via Theorem 4.4's criterion."""
    if not premises.is_single_type:
        raise FragmentError("intersection engine requires a single-type premise set")
    fragment = premises.fragment(conclusion.range)
    if fragment.predicates and fragment.descendant and fragment.wildcard:
        raise FragmentError(
            "Theorem 4.4 covers XP{/,[],*} and XP{/,[],//}; "
            f"the problem uses {fragment.name}"
        )
    conclusion.require_concrete()
    premises.require_concrete()
    q = conclusion.range
    same_type = [c for c in premises if c.type is conclusion.type]
    containing = [c.range for c in same_type if contained(q, c.range)]
    if containing and intersection_contained(containing, q):
        return implied(
            ENGINE, premises, conclusion,
            reason=f"q ≡ ⋂ of {len(containing)} premise range(s) (Theorem 4.4)",
            subset=[str(r) for r in containing],
        )
    # Not implied: borrow the canonical engine's certificate machinery.
    certified = implies_one_type(premises, conclusion, engine=ENGINE)
    if certified.is_implied:
        raise AssertionError(
            "intersection and canonical engines disagree - this would "
            "falsify Theorem 4.4; please report with the inputs"
        )
    return not_implied(
        ENGINE, premises, conclusion, certified.counterexample,
        reason="no premise subset intersects to q (Theorem 4.4)",
        containing=[str(r) for r in containing],
    )

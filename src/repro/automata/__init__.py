"""Word automata for the linear XPath fragment ``XP{/,//,*}``."""

from repro.automata.compile import (
    engine_alphabet,
    linear_to_dfa,
    linear_to_nfa,
    word_of_node,
)
from repro.automata.dfa import DFA, intersection_nonempty, product_dfa, reachable_vectors
from repro.automata.nfa import NFA

__all__ = [
    "DFA",
    "NFA",
    "engine_alphabet",
    "linear_to_dfa",
    "linear_to_nfa",
    "word_of_node",
    "product_dfa",
    "intersection_nonempty",
    "reachable_vectors",
]

"""Nondeterministic finite automata and the subset construction.

Linear patterns compile to tiny NFAs (one state per spine step, a self-loop
per descendant edge); determinisation then yields the DFAs the engines
consume.  As the paper notes (footnote 6, citing [Green et al.]), the DFA of
a linear path is exponential only in the maximal number of wildcards between
two consecutive ``//`` edges — the parameter that Theorems 4.3/4.8/5.4
require to be bounded for tractability.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.automata.dfa import DFA


class NFA:
    """An NFA without epsilon transitions over a finite alphabet."""

    __slots__ = ("alphabet", "start", "transitions", "accepting", "n_states")

    def __init__(
        self,
        alphabet: Sequence[str],
        n_states: int,
        start: Iterable[int],
        transitions: dict[tuple[int, str], frozenset[int]],
        accepting: Iterable[int],
    ):
        self.alphabet = tuple(alphabet)
        self.n_states = n_states
        self.start = frozenset(start)
        self.transitions = transitions
        self.accepting = frozenset(accepting)

    def step(self, states: frozenset[int], symbol: str) -> frozenset[int]:
        nxt: set[int] = set()
        for state in states:
            nxt.update(self.transitions.get((state, symbol), frozenset()))
        return frozenset(nxt)

    def accepts(self, word: Iterable[str]) -> bool:
        states = self.start
        for symbol in word:
            states = self.step(states, symbol)
            if not states:
                return False
        return bool(states & self.accepting)

    def determinize(self) -> DFA:
        """Subset construction; the result is complete (has a sink)."""
        start_key = self.start
        index: dict[frozenset[int], int] = {start_key: 0}
        order = [start_key]
        transitions: list[dict[str, int]] = []
        queue: deque[frozenset[int]] = deque([start_key])
        while queue:
            key = queue.popleft()
            row: dict[str, int] = {}
            for symbol in self.alphabet:
                nxt = self.step(key, symbol)
                if nxt not in index:
                    index[nxt] = len(order)
                    order.append(nxt)
                    queue.append(nxt)
                row[symbol] = index[nxt]
            transitions.append(row)
        accepting = [i for i, key in enumerate(order) if key & self.accepting]
        return DFA(self.alphabet, 0, transitions, accepting)

"""Compilation of linear patterns to word automata.

A predicate-free pattern ``q`` in ``XP{/,//,*}`` selects a node iff its
root-to-node label word lies in a regular language ``L(q)``::

    /a   -> consume 'a'
    //a  -> consume anything zero or more times, then 'a'
    /*   -> consume any single symbol

Compilation is over an explicit finite alphabet (problem labels plus the
fresh label ``z``); see :func:`engine_alphabet`.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Iterable, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import FragmentError
from repro.trees.ops import FRESH_LABEL
from repro.xpath.ast import Axis, Pattern
from repro.xpath.properties import is_linear, labels_of


def engine_alphabet(patterns: Iterable[Pattern], extra: Iterable[str] = ()) -> tuple[str, ...]:
    """The normalised finite alphabet: pattern labels + extras + fresh ``z``."""
    labels = labels_of(*patterns) | set(extra) | {FRESH_LABEL}
    return tuple(sorted(labels))


def linear_to_nfa(pattern: Pattern, alphabet: Sequence[str]) -> NFA:
    """NFA of a linear pattern: state ``i`` = "matched the first i steps"."""
    if not is_linear(pattern):
        raise FragmentError(f"{pattern} has predicates: not a linear path")
    table: dict[tuple[int, str], set[int]] = {}

    def add(state: int, symbol: str, target: int) -> None:
        table.setdefault((state, symbol), set()).add(target)

    for i, step in enumerate(pattern.steps):
        if step.axis is Axis.DESC:
            for symbol in alphabet:
                add(i, symbol, i)  # absorb the gap
        symbols = alphabet if step.label is None else (step.label,)
        for symbol in symbols:
            if symbol in alphabet:
                add(i, symbol, i + 1)
    frozen = {key: frozenset(targets) for key, targets in table.items()}
    return NFA(alphabet, len(pattern.steps) + 1, {0}, frozen, {len(pattern.steps)})


@lru_cache(maxsize=4096)
def _linear_to_dfa_cached(pattern: Pattern, alphabet: tuple[str, ...]) -> DFA:
    return linear_to_nfa(pattern, alphabet).determinize()


def linear_to_dfa(pattern: Pattern, alphabet: Sequence[str]) -> DFA:
    """Deterministic automaton of a linear pattern (memoised)."""
    return _linear_to_dfa_cached(pattern, tuple(alphabet))


def word_of_node(tree, nid: int) -> tuple[str, ...]:
    """Root-to-node label word (root excluded): the automata-side view."""
    return tree.path_labels(nid)

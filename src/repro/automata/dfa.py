"""Deterministic finite automata over finite label alphabets.

The linear-fragment procedures of the paper (Theorems 4.3, 4.8 and 5.4)
manipulate the word languages of predicate-free patterns: a node belongs to
the answer of a linear query exactly when its root-to-node label word does.
This module supplies the complete, reachable-state DFA representation those
procedures need, together with complement, product and emptiness with
witness extraction.

Alphabets are always *finite*: the engines normalise to the labels occurring
in the problem instance plus the fresh label ``z`` (renaming unknown labels
to ``z`` preserves membership in every positive pattern — the normalisation
step opening the proof of Theorem 4.2).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence


class DFA:
    """A complete DFA: every state has a transition on every symbol."""

    __slots__ = ("alphabet", "start", "transitions", "accepting")

    def __init__(
        self,
        alphabet: Sequence[str],
        start: int,
        transitions: list[dict[str, int]],
        accepting: Iterable[int],
    ):
        self.alphabet = tuple(alphabet)
        self.start = start
        self.transitions = transitions
        self.accepting = frozenset(accepting)
        for state, row in enumerate(transitions):
            missing = set(self.alphabet) - set(row)
            if missing:
                raise ValueError(f"state {state} lacks transitions on {sorted(missing)}")

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: str) -> int:
        return self.transitions[state][symbol]

    def run(self, word: Iterable[str]) -> int:
        state = self.start
        for symbol in word:
            state = self.transitions[state][symbol]
        return state

    def accepts(self, word: Iterable[str]) -> bool:
        return self.run(word) in self.accepting

    def complement(self) -> "DFA":
        """DFA for the complement language (same alphabet)."""
        flipped = set(range(self.n_states)) - set(self.accepting)
        return DFA(self.alphabet, self.start, self.transitions, flipped)

    def is_empty(self) -> bool:
        return self.shortest_accepted() is None

    def shortest_accepted(self) -> tuple[str, ...] | None:
        """A shortest accepted word, or ``None`` when the language is empty."""
        if self.start in self.accepting:
            return ()
        queue: deque[int] = deque([self.start])
        back: dict[int, tuple[int, str]] = {}
        seen = {self.start}
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.transitions[state][symbol]
                if nxt in seen:
                    continue
                seen.add(nxt)
                back[nxt] = (state, symbol)
                if nxt in self.accepting:
                    word: list[str] = []
                    cur = nxt
                    while cur != self.start:
                        prev, sym = back[cur]
                        word.append(sym)
                        cur = prev
                    word.reverse()
                    return tuple(word)
                queue.append(nxt)
        return None


def product_dfa(dfas: Sequence[DFA]) -> tuple["DFA", list[frozenset[int]]]:
    """Reachable product of DFAs sharing one alphabet.

    Returns the product DFA (accepting iff *all* components accept — callers
    usually ignore that and use the second return value) together with the
    per-state *acceptance vector*: the set of component indices accepting in
    that product state.
    """
    if not dfas:
        raise ValueError("product of zero automata")
    alphabet = dfas[0].alphabet
    for d in dfas:
        if d.alphabet != alphabet:
            raise ValueError("product requires a shared alphabet")
    start_key = tuple(d.start for d in dfas)
    index: dict[tuple[int, ...], int] = {start_key: 0}
    order = [start_key]
    transitions: list[dict[str, int]] = []
    queue = deque([start_key])
    while queue:
        key = queue.popleft()
        row: dict[str, int] = {}
        for symbol in alphabet:
            nxt = tuple(d.step(s, symbol) for d, s in zip(dfas, key, strict=True))
            if nxt not in index:
                index[nxt] = len(order)
                order.append(nxt)
                queue.append(nxt)
            row[symbol] = index[nxt]
        transitions.append(row)
    vectors = [
        frozenset(i for i, (d, s) in enumerate(zip(dfas, key, strict=True)) if s in d.accepting)
        for key in order
    ]
    accepting = [i for i, vec in enumerate(vectors) if len(vec) == len(dfas)]
    return DFA(alphabet, 0, transitions, accepting), vectors


def intersection_nonempty(dfas: Sequence[DFA]) -> tuple[str, ...] | None:
    """A word accepted by every DFA, or ``None``."""
    prod, _vectors = product_dfa(dfas)
    return prod.shortest_accepted()


def reachable_vectors(dfas: Sequence[DFA]) -> dict[frozenset[int], tuple[str, ...]]:
    """All realisable acceptance vectors with a shortest witness word each.

    A vector is the exact set of components accepting some word; this is the
    "realisable hit set" computation at the heart of the Theorem 4.8 claim.
    """
    if not dfas:
        raise ValueError("no automata")
    alphabet = dfas[0].alphabet
    start_key = tuple(d.start for d in dfas)
    seen = {start_key}
    queue: deque[tuple[tuple[int, ...], tuple[str, ...]]] = deque([(start_key, ())])
    found: dict[frozenset[int], tuple[str, ...]] = {}

    def vector_of(key: tuple[int, ...]) -> frozenset[int]:
        return frozenset(i for i, (d, s) in enumerate(zip(dfas, key, strict=True)) if s in d.accepting)

    found[vector_of(start_key)] = ()
    while queue:
        key, word = queue.popleft()
        for symbol in alphabet:
            nxt = tuple(d.step(s, symbol) for d, s in zip(dfas, key, strict=True))
            if nxt in seen:
                continue
            seen.add(nxt)
            next_word = word + (symbol,)
            vec = vector_of(nxt)
            if vec not in found:
                found[vec] = next_word
            queue.append((nxt, next_word))
    return found

"""XML Integrity Constraints substrate (Section 3.3): model, encoding, chase."""

from repro.xic.chase import ChaseResult, chase_implication
from repro.xic.encode import constraint_to_xic, id_discipline
from repro.xic.model import (
    ROOT_VAR,
    EqAtom,
    StepAtom,
    XIC,
    satisfies,
    satisfies_all,
)

__all__ = [
    "XIC",
    "StepAtom",
    "EqAtom",
    "ROOT_VAR",
    "satisfies",
    "satisfies_all",
    "constraint_to_xic",
    "id_discipline",
    "ChaseResult",
    "chase_implication",
]

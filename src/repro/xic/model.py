"""XML Integrity Constraints (Section 3.3, following [Deutsch-Tannen]).

An XIC has the shape::

    ∀ x1..xn  A(x1..xn)  →  ∃ y1..ym  B(x1..xn, y1..ym)

where ``A`` and ``B`` are conjunctions of path atoms ``u p v`` (``p`` a
step: ``/label``, ``//label`` or ``/@id``) and equalities.  Satisfaction is
checked over the two-branch encoding of an update pair (the same
``AttributedTree`` documents the keys substrate uses), by exhaustive
binding enumeration — exponential, but the encodings are evaluated on tiny
documents only; the *reasoning*-side takeaway of Section 3.3 is negative
(the chase diverges, see :mod:`repro.xic.chase`), and this module exists to
state the encoding of Example 3.2 precisely and test its equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from collections.abc import Iterator, Sequence

from repro.keys.regular import AttributedTree

ROOT_VAR = "$root"


@dataclass(frozen=True)
class StepAtom:
    """``u p v``: node ``v`` is reached from ``u`` by one step."""

    source: str
    axis: str          # "child", "desc" or "attr"
    label: str | None  # element label, None for wildcard; ignored for attr
    target: str


@dataclass(frozen=True)
class EqAtom:
    left: str
    right: str


Atom = StepAtom | EqAtom


@dataclass(frozen=True)
class XIC:
    """One integrity constraint; variables are strings, ``$root`` reserved."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    head_vars: tuple[str, ...]  # the existential variables of the head

    def variables(self) -> tuple[str, ...]:
        names: list[str] = []
        for atom in self.body:
            for var in _atom_vars(atom):
                if var not in names and var != ROOT_VAR:
                    names.append(var)
        return tuple(names)

    @property
    def is_bounded(self) -> bool:
        """Bounded XICs forbid ``//`` and attributes under the existential.

        The paper's observation: the XICs encoding update constraints are
        *unbounded* (both culprits appear), so chase termination is not
        guaranteed — Example 3.3 exhibits divergence.
        """
        for atom in self.head:
            if isinstance(atom, StepAtom) and atom.axis in ("desc", "attr"):
                for var in (atom.source, atom.target):
                    if var in self.head_vars:
                        return False
        return True


def _atom_vars(atom: Atom) -> tuple[str, ...]:
    if isinstance(atom, StepAtom):
        return (atom.source, atom.target)
    return (atom.left, atom.right)


class Universe:
    """Evaluation context: nodes and attribute values of a document."""

    def __init__(self, doc: AttributedTree):
        self.doc = doc
        self.nodes = list(doc.tree.node_ids())
        self.values = sorted(set(doc.id_attr.values()))

    def candidates(self) -> list:
        return self.nodes + self.values

    def step_holds(self, atom: StepAtom, src, dst) -> bool:
        tree = self.doc.tree
        if atom.axis == "attr":
            return src in tree._labels and self.doc.id_attr.get(src) == dst
        if src not in tree._labels or dst not in tree._labels:
            return False
        if atom.label is not None and tree.label(dst) != atom.label:
            return False
        if atom.axis == "child":
            return tree.parent(dst) == src
        return tree.is_ancestor(src, dst)


def _bindings(universe: Universe, variables: Sequence[str],
              fixed: dict) -> Iterator[dict]:
    options = universe.candidates()
    for values in product(options, repeat=len(variables)):
        binding = dict(fixed)
        binding.update(zip(variables, values, strict=True))
        yield binding


def _atoms_hold(universe: Universe, atoms: Sequence[Atom], binding: dict) -> bool:
    for atom in atoms:
        if isinstance(atom, EqAtom):
            if binding[atom.left] != binding[atom.right]:
                return False
        else:
            if not universe.step_holds(atom, binding[atom.source],
                                       binding[atom.target]):
                return False
    return True


def satisfies(doc: AttributedTree, constraint: XIC) -> bool:
    """Exhaustive-check satisfaction of one XIC over the document."""
    universe = Universe(doc)
    fixed = {ROOT_VAR: doc.tree.root}
    for binding in _bindings(universe, constraint.variables(), fixed):
        if not _atoms_hold(universe, constraint.body, binding):
            continue
        witnessed = any(
            _atoms_hold(universe, constraint.head, extended)
            for extended in _bindings(universe, constraint.head_vars, binding)
        )
        if not witnessed:
            return False
    return True


def satisfies_all(doc: AttributedTree, constraints: Sequence[XIC]) -> bool:
    return all(satisfies(doc, c) for c in constraints)

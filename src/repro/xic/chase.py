"""The chase on update-constraint encodings — and its divergence.

Section 3.3's point: update constraints translate to *unbounded* XICs, and
the classical chase ([2], as used by [Deutsch-Tannen]) may not terminate on
them.  Example 3.3 exhibits the loop: for ::

    c1 = (/a/b/c, ↑)        c2 = (/a/b[c], ↓)

testing the implication of ``(/a/b/c/d, ↑)`` makes the chase alternate
between the two branches forever, each round inventing a fresh node id.

We implement the chase at the level of update constraints directly (the
two-branch document is represented as a pair of partial trees sharing node
identifiers), which makes each chase step readable:

* a no-remove constraint fires when the I-side selects a node id that the
  J-side provably does not select — a fresh canonical embedding of the
  range is added to the J-side ending at that id;
* a no-insert constraint fires symmetrically.

The chase *seeds* the counterexample the implication test hypothesises: the
conclusion's canonical model in ``I`` with the witness dropped from ``J``.
``ChaseResult.diverged`` reports budget exhaustion with a monotonically
growing fact count — the reproduction of Example 3.3 (and the benchmark
contrasts it with the record-fixpoint engine, which answers instantly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.model import ConstraintSet, ConstraintType, UpdateConstraint
from repro.trees.ops import fresh_label_for, graft_at_root, remap_ids
from repro.trees.tree import DataTree
from repro.xpath.canonical import smallest_model
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import labels_of


@dataclass
class ChaseResult:
    status: str                      # "diverged" | "saturated" | "violated"
    steps: int
    history: list[int] = field(default_factory=list)  # fact counts per step
    before: DataTree | None = None
    after: DataTree | None = None

    @property
    def diverged(self) -> bool:
        return self.status == "diverged"


def chase_implication(premises: ConstraintSet, conclusion: UpdateConstraint,
                      max_steps: int = 60) -> ChaseResult:
    """Run the constraint chase for ``C ⊨ c`` with a step budget.

    The chase refutes implication if it saturates (a counterexample pair
    stands); a genuinely implied conclusion forces either an inconsistency
    (not expressible here — constraints are always satisfiable, so instead
    the chase keeps repairing) or an infinite repair sequence.  Divergence
    within the budget is reported, not guessed at.
    """
    fresh = fresh_label_for(labels_of(conclusion.range, *premises.ranges))
    seed = smallest_model(conclusion.range, fresh=fresh)
    if conclusion.type is ConstraintType.NO_REMOVE:
        # Hypothesis: the witness was removed.  I = canonical model of q,
        # J = empty — the chase must re-derive everything J is forced to
        # contain, inventing fresh labelled nulls as the XIC chase does.
        before = seed.tree.copy()
        after = DataTree()
    else:
        # Hypothesis: the witness was inserted — the mirror seeding.
        before = DataTree()
        after = seed.tree.copy()

    history: list[int] = []
    for step in range(max_steps):
        history.append(before.size + after.size)
        fired = _fire_one(premises, before, after, fresh)
        if fired is None:
            return ChaseResult("saturated", step, history, before, after)
    return ChaseResult("diverged", max_steps, history, before, after)


def _fire_one(premises: ConstraintSet, before: DataTree, after: DataTree,
              fresh: str) -> UpdateConstraint | None:
    """Apply the first violated constraint; return it (or None if none)."""
    for constraint in premises:
        if constraint.type is ConstraintType.NO_REMOVE:
            source, target = before, after
        else:
            source, target = after, before
        missing = evaluate_ids(constraint.range, source) - \
            evaluate_ids(constraint.range, target)
        for nid in sorted(missing):
            _repair(target, constraint, nid, fresh)
            return constraint
    return None


def _repair(target: DataTree, constraint: UpdateConstraint, nid: int,
            fresh: str) -> None:
    """Add a canonical range-embedding ending at ``nid`` to ``target``."""
    model = smallest_model(constraint.range, fresh=fresh)
    branch = remap_ids(model.tree, {model.output: nid})
    graft_at_root(target, branch, fresh=False)

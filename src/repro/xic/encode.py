"""Example 3.2: expressing update constraints as XICs.

An update constraint over the pair ``(I, J)`` becomes an implication
between the two branches of the encoded document: for
``(q, ↑)`` — *if the I-branch matches q at a node with some @id value, the
J-branch matches q at a node with the same value* — plus the id-discipline
constraints (existence, per-node uniqueness, injectivity within a branch).

The generated XICs are *unbounded* (descendant steps and an existential
@id), which is the paper's point: the classical chase need not terminate
on them (Example 3.3 / :mod:`repro.xic.chase`).
"""

from __future__ import annotations

from repro.constraints.model import ConstraintType, UpdateConstraint
from repro.xic.model import ROOT_VAR, EqAtom, StepAtom, XIC
from repro.xpath.ast import Axis, Pattern
from repro.xpath.properties import is_linear
from repro.errors import FragmentError


def _branch_atoms(branch: str, pattern: Pattern, prefix: str
                  ) -> tuple[list[StepAtom], str]:
    """Atoms walking ``pattern`` inside a branch; returns (atoms, last var)."""
    atoms = [StepAtom(ROOT_VAR, "child", branch, f"{prefix}b")]
    current = f"{prefix}b"
    for index, step in enumerate(pattern.steps):
        nxt = f"{prefix}{index}"
        axis = "child" if step.axis is Axis.CHILD else "desc"
        atoms.append(StepAtom(current, axis, step.label, nxt))
        current = nxt
    return atoms, current


def id_discipline(branch: str, label: str) -> list[XIC]:
    """Existence and uniqueness of @id for ``label`` nodes of a branch."""
    exists = XIC(
        body=(StepAtom(ROOT_VAR, "child", branch, "xb"),
              StepAtom("xb", "desc", label, "x")),
        head=(StepAtom("x", "attr", None, "v"),),
        head_vars=("v",),
    )
    unique = XIC(
        body=(StepAtom(ROOT_VAR, "child", branch, "xb"),
              StepAtom("xb", "desc", label, "x"),
              StepAtom("x", "attr", None, "v"),
              StepAtom("x", "attr", None, "w")),
        head=(EqAtom("v", "w"),),
        head_vars=(),
    )
    injective = XIC(
        body=(StepAtom(ROOT_VAR, "child", branch, "xb"),
              StepAtom("xb", "desc", label, "x"),
              StepAtom("xb", "desc", label, "y"),
              StepAtom("x", "attr", None, "v"),
              StepAtom("y", "attr", None, "v")),
        head=(EqAtom("x", "y"),),
        head_vars=(),
    )
    return [exists, unique, injective]


def constraint_to_xic(constraint: UpdateConstraint) -> XIC:
    """The main implication XIC of Example 3.2 (linear ranges)."""
    if not is_linear(constraint.range):
        raise FragmentError(
            "the Example 3.2 encoding is spelled out for linear ranges; "
            "predicate atoms extend it mechanically but are not needed by "
            "the tests"
        )
    if constraint.type is ConstraintType.NO_REMOVE:
        src_branch, dst_branch = "I", "J"
    else:
        src_branch, dst_branch = "J", "I"
    body_atoms, body_out = _branch_atoms(src_branch, constraint.range, "s")
    head_atoms, head_out = _branch_atoms(dst_branch, constraint.range, "t")
    body = tuple(body_atoms) + (StepAtom(body_out, "attr", None, "val"),)
    head = tuple(head_atoms) + (StepAtom(head_out, "attr", None, "val"),)
    head_vars = tuple(
        var for atom in head_atoms for var in (atom.source, atom.target)
        if var.startswith("t")
    )
    # Deduplicate while preserving order.
    seen: list[str] = []
    for var in head_vars:
        if var not in seen:
            seen.append(var)
    return XIC(body=body, head=head, head_vars=tuple(seen))

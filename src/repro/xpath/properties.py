"""Syntactic analysis of patterns: fragments, star length, labels.

The paper's complexity landscape (Tables 1 and 2) is organised along two
axes: which navigational primitives a pattern uses (``[]``, ``//``, ``*``)
and properties such as *star length* — "the maximal length of a chain of
wildcards occurring in the path" ([Miklau-Suciu]), which controls the size
of canonical models and of the DFAs for linear paths.

The :class:`Fragment` value computed here drives engine dispatch: every
decision procedure declares which fragments it covers and validates inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.xpath.ast import Axis, Pattern, Pred, Step


@dataclass(frozen=True)
class Fragment:
    """Feature set of one or more patterns."""

    predicates: bool
    descendant: bool
    wildcard: bool

    def __or__(self, other: "Fragment") -> "Fragment":
        return Fragment(
            self.predicates or other.predicates,
            self.descendant or other.descendant,
            self.wildcard or other.wildcard,
        )

    @property
    def name(self) -> str:
        parts = ["/"]
        if self.predicates:
            parts.append("[]")
        if self.descendant:
            parts.append("//")
        if self.wildcard:
            parts.append("*")
        return "XP{" + ",".join(parts) + "}"

    def within(self, predicates: bool = True, descendant: bool = True,
               wildcard: bool = True) -> bool:
        """Is this fragment inside the fragment allowing the given features?"""
        return (
            (predicates or not self.predicates)
            and (descendant or not self.descendant)
            and (wildcard or not self.wildcard)
        )


def _walk_nodes(pattern: Pattern) -> Iterator[tuple[Axis, str | None, tuple[Pred, ...]]]:
    """Yield (axis, label, children-preds) for every node of the pattern."""

    def walk_pred(pred: Pred) -> Iterator[tuple[Axis, str | None, tuple[Pred, ...]]]:
        yield (pred.axis, pred.label, pred.children)
        for child in pred.children:
            yield from walk_pred(child)

    for step in pattern.steps:
        yield (step.axis, step.label, step.preds)
        for pred in step.preds:
            yield from walk_pred(pred)


def fragment_of(*patterns: Pattern) -> Fragment:
    """Least fragment containing all given patterns."""
    predicates = descendant = wildcard = False
    for pattern in patterns:
        for axis, label, preds in _walk_nodes(pattern):
            if preds:
                predicates = True
            if axis is Axis.DESC:
                descendant = True
            if label is None:
                wildcard = True
        # A step's preds mark the predicates feature even when nested empty.
    return Fragment(predicates, descendant, wildcard)


def labels_of(*patterns: Pattern) -> set[str]:
    """All concrete labels appearing in the patterns."""
    found: set[str] = set()
    for pattern in patterns:
        for _, label, _ in _walk_nodes(pattern):
            if label is not None:
                found.add(label)
    return found


def star_length(*patterns: Pattern) -> int:
    """Maximal length of a chain of wildcards linked by child edges.

    Following [Miklau-Suciu], this bounds how long the fresh-label chains in
    canonical models must be (cap = star length + 1) and how large the DFA of
    a linear path gets.  Chains are measured across spines and predicate
    trees alike.
    """
    best = 0
    for pattern in patterns:
        best = max(best, _star_length_spine(pattern.steps))
        for step in pattern.steps:
            for pred in step.preds:
                best = max(best, _star_length_pred(pred))
    return best


def _star_length_spine(steps: tuple[Step, ...]) -> int:
    best = run = 0
    for step in steps:
        if step.label is None and step.axis is Axis.CHILD:
            run += 1
        elif step.label is None:  # wildcard entered via //: starts a new chain
            run = 1
        else:
            run = 0
        best = max(best, run)
        for pred in step.preds:
            best = max(best, _star_length_pred(pred))
    # The first step of a chain entered via '/' from a concrete node counts 1.
    return best


def _star_length_pred(pred: Pred) -> int:
    """Longest downward all-wildcard child-edge chain within a predicate."""
    best = 0

    def chain(p: Pred) -> int:
        """Longest wildcard chain starting at p going down via child edges."""
        if p.label is not None:
            return 0
        down = 0
        for c in p.children:
            if c.axis is Axis.CHILD:
                down = max(down, chain(c))
        return 1 + down

    def walk(p: Pred) -> None:
        nonlocal best
        if p.label is None:
            best = max(best, chain(p))
        for c in p.children:
            walk(c)

    walk(pred)
    return best


def max_star_length(patterns: Iterable[Pattern]) -> int:
    """Star length over a collection (0 for the empty collection)."""
    return max((star_length(p) for p in patterns), default=0)


def wildcard_gap_bound(*patterns: Pattern) -> int:
    """Maximal number of wildcards between two consecutive ``//`` edges.

    This is the parameter the paper's Theorems 4.3/4.8/5.4 bound by a
    constant: the DFA of a linear path is exponential only in it.
    """
    best = 0
    for pattern in patterns:
        run = 0
        for step in pattern.steps:
            if step.axis is Axis.DESC:
                run = 0
            if step.label is None:
                run += 1
                best = max(best, run)
            # Concrete labels do not reset the count within a // segment:
            # the DFA blow-up is driven by wildcards per segment.
        run = 0
    return best


def is_linear(pattern: Pattern) -> bool:
    """True when the pattern has no predicates (fragment ``XP{/,//,*}``)."""
    return all(not step.preds for step in pattern.steps)


def is_child_only(pattern: Pattern) -> bool:
    """True when the pattern uses no descendant axis (``XP{/,[],*}``)."""
    return not fragment_of(pattern).descendant

"""Intersections of tree-pattern queries.

``XP{/,[],*}`` is closed under intersection (a single merged pattern,
computable in linear time — used by Theorem 4.4's PTIME test).  Fragments
with the descendant axis are *not* closed; instead, the intersection of
``q1 .. qk`` is equivalent to a finite **union of product patterns**: every
way of aligning the k spines into one global spine, merging co-located
steps.  Formally::

    q1 ∩ ... ∩ qk  ≡  ⋃ { P*_a : a a valid spine alignment }

(soundness: every product pattern is contained in every ``qi``;
completeness: a tree where all ``qi`` select a common node ``n`` co-locates
the k spines along the root-to-``n`` path, which induces an alignment whose
product pattern matches).  Alignments are enumerated by a backtracking merge
that respects child-edge adjacency, label compatibility and output
co-location.

On top of product patterns the module offers the three tests used by the
implication engines:

* ``intersection_contained(Q, q)`` — is ``⋂Q ⊆ q``?
* ``intersection_equivalent(Q, q)`` — is ``⋂Q ≡ q``?  (Theorem 4.4's
  criterion)
* ``escape_witness(Q, avoid)`` — a ground tree + node selected by every
  pattern of ``Q`` and by none of ``avoid`` (the counterexample seed of the
  canonical engines); ``None`` when no such tree exists.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.xpath.ast import Axis, Pattern, Pred, Step, normalize_preds
from repro.xpath.canonical import CanonicalModel, canonical_models
from repro.xpath.containment import contained
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import fragment_of, star_length


# ----------------------------------------------------------------------
# Closed-form intersection for the child-only fragment
# ----------------------------------------------------------------------
def intersect_child_only(patterns: Sequence[Pattern]) -> Pattern | None:
    """Exact intersection within ``XP{/,[],*}``; ``None`` means empty.

    Spines must have equal length (child edges fix the output depth); a
    concrete-label conflict at any position empties the intersection.
    Predicates are conjoined position-wise.
    """
    if not patterns:
        raise ValueError("intersection of an empty family is the universal query")
    for p in patterns:
        if fragment_of(p).descendant:
            raise ValueError(f"{p} uses '//': not in the child-only fragment")
    length = patterns[0].spine_length
    if any(p.spine_length != length for p in patterns):
        return None
    steps: list[Step] = []
    for i in range(length):
        label: str | None = None
        preds: tuple[Pred, ...] = ()
        for p in patterns:
            step = p.steps[i]
            if step.label is not None:
                if label is not None and label != step.label:
                    return None
                label = step.label
            preds = preds + step.preds
        steps.append(Step(Axis.CHILD, label, normalize_preds(preds)))
    return Pattern(tuple(steps))


# ----------------------------------------------------------------------
# Product patterns (general fragment)
# ----------------------------------------------------------------------
def product_patterns(patterns: Sequence[Pattern]) -> list[Pattern]:
    """All product patterns of a spine alignment of ``patterns``.

    The returned (possibly empty) list of patterns has union equivalent to
    the intersection of the inputs.  The list length is bounded by the
    number of order-preserving interleavings of the spines — exponential in
    the worst case, matching the coNP lower bounds of the problems built on
    it.
    """
    if not patterns:
        raise ValueError("product of an empty family is the universal query")
    spines = [p.steps for p in patterns]
    results: list[Pattern] = []
    seen: set[Pattern] = set()

    def merge_position(selection: list[int]) -> Step | None:
        """Merge the next step of each selected pattern (None on conflict)."""
        label: str | None = None
        preds: tuple[Pred, ...] = ()
        forced_child = False
        for p_idx in selection:
            step = spines[p_idx][state[p_idx]]
            if step.axis is Axis.CHILD:
                forced_child = True
            if step.label is not None:
                if label is not None and label != step.label:
                    return None
                label = step.label
            preds = preds + step.preds
        axis = Axis.CHILD if forced_child else Axis.DESC
        return Step(axis, label, normalize_preds(preds))

    k = len(spines)
    state = [0] * k                      # next unplaced step per pattern
    just_placed = [True] * k             # was the previous step at position t-1?
    acc: list[Step] = []

    def recurse() -> None:
        if all(state[i] == len(spines[i]) for i in range(k)):
            pattern = Pattern(tuple(acc))
            if pattern not in seen:
                seen.add(pattern)
                results.append(pattern)
            return
        # Mandatory selections: child-axis steps must follow immediately.
        mandatory = []
        optional = []
        for i in range(k):
            if state[i] == len(spines[i]):
                # Exhausted pattern: its output is above a position still to
                # be created — outputs cannot co-locate.  Dead branch.
                return
            axis = spines[i][state[i]].axis
            if axis is Axis.CHILD:
                if not just_placed[i]:
                    return  # the child edge can no longer be satisfied
                mandatory.append(i)
            else:
                optional.append(i)
        for extra_mask in range(1 << len(optional)):
            selection = list(mandatory)
            for bit, i in enumerate(optional):
                if extra_mask >> bit & 1:
                    selection.append(i)
            if not selection:
                continue
            # Output co-location: a step that is its pattern's last may only
            # be placed when every pattern simultaneously places its last.
            closing = [i for i in selection if state[i] + 1 == len(spines[i])]
            if closing:
                if len(selection) != k or len(closing) != k:
                    continue
            step = merge_position(selection)
            if step is None:
                continue
            acc.append(step)
            saved_placed = just_placed.copy()
            for i in range(k):
                advanced = i in selection
                if advanced:
                    state[i] += 1
                just_placed[i] = advanced
            recurse()
            for i in selection:
                state[i] -= 1
            just_placed[:] = saved_placed
            acc.pop()

    recurse()
    return results


# ----------------------------------------------------------------------
# Tests built on product patterns
# ----------------------------------------------------------------------
def intersection_contained(patterns: Sequence[Pattern], q: Pattern) -> bool:
    """Exact test of ``⋂patterns ⊆ q`` (empty intersection is contained)."""
    frag = fragment_of(*patterns)
    if not frag.descendant:
        merged = intersect_child_only(patterns)
        return merged is None or contained(merged, q)
    return all(contained(prod, q) for prod in product_patterns(patterns))


def intersection_equivalent(patterns: Sequence[Pattern], q: Pattern) -> bool:
    """Exact test of ``⋂patterns ≡ q`` — Theorem 4.4's criterion."""
    return all(contained(q, p) for p in patterns) and intersection_contained(patterns, q)


def escape_witness(
    patterns: Sequence[Pattern],
    avoid: Iterable[Pattern],
) -> CanonicalModel | None:
    """A ground model whose output all ``patterns`` select but no ``avoid`` does.

    Canonical-model completeness: chains are capped at
    ``max star-length over avoid + 1`` and wildcards instantiated with the
    fresh label ``z`` — for positive patterns the fresh label minimises
    accidental membership, so if any witness exists a canonical one does.
    """
    from repro.trees.ops import fresh_label_for
    from repro.xpath.properties import labels_of

    avoid = list(avoid)
    cap = max((star_length(a) for a in avoid), default=0) + 1
    fresh = fresh_label_for(labels_of(*patterns, *avoid))
    for prod in product_patterns(patterns):
        for model in canonical_models(prod, cap, fresh=fresh):
            out = model.output
            if all(out not in evaluate_ids(a, model.tree) for a in avoid):
                return model
    return None

"""Recursive-descent parser for the fragment ``XP{/,[],//,*}``.

Accepted syntax, exactly the paper's grammar plus two leniencies used in the
paper's own prose:

* a predicate may omit its leading slash — ``/a/b[c]`` (Example 3.3) is read
  as ``/a/b[/c]``;
* whitespace is ignored everywhere.

The parser produces normalized :class:`Pattern` objects (predicates sorted),
so ``parse(str(p)) == p`` holds for every normalized pattern ``p``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ParseError
from repro.xpath.ast import Axis, Pattern, Pred, Step, normalize

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-+")


class _Scanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def axis(self) -> Axis:
        self.skip_ws()
        if self.text.startswith("//", self.pos):
            self.pos += 2
            return Axis.DESC
        if self.text.startswith("/", self.pos):
            self.pos += 1
            return Axis.CHILD
        raise self.error("expected '/' or '//'")

    def label(self) -> str | None:
        self.skip_ws()
        if self.peek() == "*":
            self.pos += 1
            return None
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a label or '*'")
        return self.text[start:self.pos]

    def predicates(self) -> tuple[Pred, ...]:
        preds: list[Pred] = []
        while self.peek() == "[":
            self.pos += 1
            preds.append(self.pred_path())
            self.skip_ws()
            if self.peek() != "]":
                raise self.error("expected ']'")
            self.pos += 1
        return tuple(preds)

    def pred_path(self) -> Pred:
        """Parse the path inside a predicate into a chain of Pred nodes."""
        # Leniency: missing leading slash means child axis.
        axis = self.axis() if self.peek() == "/" else Axis.CHILD
        label = self.label()
        preds = list(self.predicates())
        # Continuation of the path inside the predicate.
        if self.peek() == "/":
            preds.append(self.pred_path())
        return Pred(axis, label, tuple(preds))

    def pattern(self) -> Pattern:
        steps: list[Step] = []
        while not self.at_end():
            axis = self.axis()
            label = self.label()
            preds = self.predicates()
            steps.append(Step(axis, label, preds))
        if not steps:
            raise self.error("empty pattern")
        return Pattern(tuple(steps))


@lru_cache(maxsize=16384)
def parse(text: str) -> Pattern:
    """Parse an XPath expression of ``XP{/,[],//,*}`` into a normalized
    :class:`Pattern`.

    >>> str(parse('/a//b[/c][//d]/e'))
    '/a//b[/c][//d]/e'
    >>> str(parse('/a/b[c]'))  # lenient predicate slash
    '/a/b[/c]'
    """
    pattern = _Scanner(text).pattern()
    return normalize(pattern)

"""Canonical models of tree patterns (Miklau-Suciu machinery).

A *canonical model* of a pattern ``p`` is a ground data tree obtained by

* instantiating every wildcard with the fresh label ``z`` (or, where an
  engine requires it, with labels drawn from a supplied alphabet), and
* expanding every descendant edge into a child edge preceded by a chain of
  ``j`` fresh ``z``-labelled nodes, for ``j`` ranging over ``0..cap``.

The completeness theorem of [Miklau-Suciu] (used throughout Sections 4-5 of
the paper) states that for containment ``p ⊆ q`` it suffices to check the
canonical models of ``p`` with ``cap = star_length(q) + 1``.  The same
pruning argument powers the paper's small-model properties (Theorems 4.7 and
5.1), so this module is shared by the containment tester, the canonical
implication engine and the instance-based engines.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from functools import lru_cache
from itertools import product

from repro.trees.ops import FRESH_LABEL
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred, normalize


@lru_cache(maxsize=65536)
def canonical_pattern(pattern: Pattern) -> Pattern:
    """The memoised canonical (normal) form of a pattern.

    Canonical forms make structural equality coincide with syntactic
    equality of the normal form (sibling predicates sorted and
    deduplicated), which is what the session-API caches key on: two
    patterns denote the same query whenever their canonical forms are
    equal.  The parser already emits normal forms, so for parsed patterns
    the result is structurally equal to the input; programmatically
    assembled patterns pay one normalisation, amortised by the cache.
    """
    return normalize(pattern)


@lru_cache(maxsize=65536)
def spine_anchor(pattern: Pattern) -> tuple[Axis, str | None]:
    """``(axis, label)`` of the canonical pattern's first spine step.

    Every match of a pattern is contained in the subtree of the node its
    first step maps to — a child (``/``) or descendant (``//``) of the
    root passing the step's label test.  The nodes passing that test are
    therefore the *anchor frontier* of the pattern: the preorder intervals
    below them are the only tree regions where the pattern's answer can
    change (:mod:`repro.analysis` derives its region signatures from this,
    against the live :class:`~repro.trees.index.TreeIndex`).
    """
    first = canonical_pattern(pattern).steps[0]
    return (first.axis, first.label)


class CanonicalModel:
    """A ground instantiation of a pattern.

    Attributes:
        tree: the data tree.
        output: identifier of the node the pattern's output maps to.
        spine: identifiers of the nodes the spine steps map to (in order).
    """

    __slots__ = ("tree", "output", "spine")

    def __init__(self, tree: DataTree, output: int, spine: tuple[int, ...]):
        self.tree = tree
        self.output = output
        self.spine = spine

    def shape_key(self) -> tuple:
        """Isomorphism key distinguishing the output node (deduplication)."""

        def shape(nid: int) -> tuple:
            tag = (self.tree.label(nid), nid == self.output)
            kids = sorted(shape(c) for c in self.tree.children(nid))
            return (tag, tuple(kids))

        return shape(self.tree.root)


def _expansions(count: int, cap: int) -> Iterator[tuple[int, ...]]:
    """All gap-length vectors for ``count`` descendant edges."""
    yield from product(range(cap + 1), repeat=count)


def _desc_edges_pred(pred: Pred) -> int:
    own = 1 if pred.axis is Axis.DESC else 0
    return own + sum(_desc_edges_pred(c) for c in pred.children)


def _wildcards_pred(pred: Pred) -> int:
    own = 1 if pred.label is None else 0
    return own + sum(_wildcards_pred(c) for c in pred.children)


def count_desc_edges(pattern: Pattern) -> int:
    """Number of descendant edges (spine and predicates)."""
    total = 0
    for step in pattern.steps:
        if step.axis is Axis.DESC:
            total += 1
        total += sum(_desc_edges_pred(p) for p in step.preds)
    return total


def count_wildcards(pattern: Pattern) -> int:
    """Number of wildcard-labelled nodes (spine and predicates)."""
    total = 0
    for step in pattern.steps:
        if step.label is None:
            total += 1
        total += sum(_wildcards_pred(p) for p in step.preds)
    return total


class _Instantiator:
    """Builds one ground tree for a fixed choice of gaps and wildcard labels.

    Choices are consumed in a deterministic left-to-right traversal order so
    that the enumeration in :func:`canonical_models` covers the full product
    space exactly once.
    """

    def __init__(self, gaps: Sequence[int], wilds: Sequence[str], fresh: str = FRESH_LABEL):
        self._gaps = list(gaps)
        self._wilds = list(wilds)
        self._fresh = fresh
        self._gap_idx = 0
        self._wild_idx = 0

    def _next_gap(self) -> int:
        gap = self._gaps[self._gap_idx]
        self._gap_idx += 1
        return gap

    def _next_wild(self) -> str:
        label = self._wilds[self._wild_idx]
        self._wild_idx += 1
        return label

    def attach(self, tree: DataTree, parent: int, axis: Axis, label: str | None) -> int:
        anchor = parent
        if axis is Axis.DESC:
            for _ in range(self._next_gap()):
                anchor = tree.add_child(anchor, self._fresh)
        concrete = self._next_wild() if label is None else label
        return tree.add_child(anchor, concrete)

    def attach_pred(self, tree: DataTree, parent: int, pred: Pred) -> None:
        nid = self.attach(tree, parent, pred.axis, pred.label)
        for child in pred.children:
            self.attach_pred(tree, nid, child)

    def build(self, pattern: Pattern) -> CanonicalModel:
        tree = DataTree()
        spine: list[int] = []
        anchor = tree.root
        for step in pattern.steps:
            anchor = self.attach(tree, anchor, step.axis, step.label)
            spine.append(anchor)
            for pred in step.preds:
                self.attach_pred(tree, anchor, pred)
        return CanonicalModel(tree, spine[-1], tuple(spine))


def canonical_models(
    pattern: Pattern,
    cap: int,
    wildcard_labels: Iterable[str] | None = None,
    deduplicate: bool = True,
    fresh: str = FRESH_LABEL,
) -> Iterator[CanonicalModel]:
    """Enumerate the canonical models of ``pattern``.

    ``cap`` bounds the length of the fresh chains replacing descendant
    edges; ``wildcard_labels`` is the set of labels substituted for each
    wildcard (default: just the fresh label).  The number of models is
    ``(cap+1)^#desc * |wildcard_labels|^#wild`` — callers control blow-up via
    their fragment-specific caps.  ``fresh`` must not occur in any pattern
    or tree of the surrounding problem (see ``fresh_label_for``).
    """
    wild_options = [fresh] if wildcard_labels is None else list(wildcard_labels)
    n_desc = count_desc_edges(pattern)
    n_wild = count_wildcards(pattern)
    seen: set[tuple] = set()
    for gaps in _expansions(n_desc, cap):
        for wilds in product(wild_options, repeat=n_wild):
            model = _Instantiator(gaps, wilds, fresh).build(pattern)
            if deduplicate:
                key = model.shape_key()
                if key in seen:
                    continue
                seen.add(key)
            yield model


def smallest_model(pattern: Pattern, fresh: str = FRESH_LABEL) -> CanonicalModel:
    """The minimal canonical model (all gaps 0, wildcards fresh)."""
    n_desc = count_desc_edges(pattern)
    n_wild = count_wildcards(pattern)
    return _Instantiator([0] * n_desc, [fresh] * n_wild, fresh).build(pattern)


def model_count(pattern: Pattern, cap: int, wildcard_options: int = 1) -> int:
    """Size of the canonical-model space (before deduplication)."""
    return (cap + 1) ** count_desc_edges(pattern) * wildcard_options ** count_wildcards(pattern)

"""Shared session plumbing of the snapshot-backed evaluators.

:class:`repro.xpath.indexed.IndexedEvaluator` (node-at-a-time) and
:class:`repro.xpath.bitset.BitsetEvaluator` (set-at-a-time) differ only in
*how* they answer a query against a :class:`~repro.trees.index.TreeIndex`;
everything around that — snapshot coercion and identity, the revision
tracking that keeps memos honest across in-place index edits, the
``apply_*`` passthroughs, and process-wide canonicalisation — is this base
class, so a fix to the session machinery cannot drift between substrates.
"""

from __future__ import annotations

from typing import Self

from repro.caching import LRUMemo
from repro.trees.index import TreeIndex
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.ast import Pattern, Pred, normalize, normalize_preds

CANON_MEMO_SIZE = 8192   # syntactic -> canonical forms (tree-independent)

# Canonical forms are pure functions of the pattern — share them across
# every evaluator in the process instead of re-normalising per snapshot.
_GLOBAL_CANON_PREDS = LRUMemo(CANON_MEMO_SIZE)
_GLOBAL_CANON_PATTERNS = LRUMemo(CANON_MEMO_SIZE)


class SnapshotEvaluator:
    """A pattern-evaluation session pinned to one tree snapshot.

    Subclasses implement :meth:`evaluate_ids` / :meth:`matches_at` (calling
    :meth:`_sync` first) and :meth:`_drop_revision_memos`; every answer
    must be bit-identical to the naive evaluator on the same tree.
    """

    __slots__ = ("_index", "_revision", "_canon", "_canon_patterns")

    def __init__(self, snapshot: TreeIndex | DataTree):
        if isinstance(snapshot, DataTree):
            snapshot = TreeIndex(snapshot)
        self._index = snapshot
        self._revision = snapshot.revision
        self._canon = _GLOBAL_CANON_PREDS
        self._canon_patterns = _GLOBAL_CANON_PATTERNS

    @classmethod
    def for_tree(cls, tree: DataTree) -> Self:
        return cls(TreeIndex(tree))

    @property
    def index(self) -> TreeIndex:
        return self._index

    @property
    def tree(self) -> DataTree:
        return self._index.tree

    def covers(self, tree: DataTree) -> bool:
        """Usable as a fast path for ``tree``?  (Same object, unmutated.)"""
        return self._index.covers(tree)

    # ------------------------------------------------------------------
    # Incremental edits (tree + snapshot move together)
    # ------------------------------------------------------------------
    def apply_move(self, nid: int, new_parent: int) -> None:
        self._index.apply_move(nid, new_parent)

    def apply_add_leaf(self, parent: int, label: str,
                       nid: int | None = None) -> int:
        return self._index.apply_add_leaf(parent, label, nid=nid)

    def apply_remove_subtree(self, nid: int) -> None:
        self._index.apply_remove_subtree(nid)

    def _sync(self) -> None:
        """Drop revision-bound memos after an in-place index edit."""
        rev = self._index.revision
        if rev != self._revision:
            self._revision = rev
            self._drop_revision_memos()

    def _drop_revision_memos(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Canonicalisation (tree-independent, survives revision bumps)
    # ------------------------------------------------------------------
    def _canonical(self, pred: Pred) -> Pred:
        canon = self._canon.get(pred)
        if canon is None:
            canon = normalize_preds((pred,))[0]
            self._canon.put(pred, canon)
        return canon

    def _canonical_pattern(self, pattern: Pattern) -> Pattern:
        canon = self._canon_patterns.get(pattern)
        if canon is None:
            canon = normalize(pattern)
            self._canon_patterns.put(pattern, canon)
        return canon

    # ------------------------------------------------------------------
    # Query surface shared by every substrate
    # ------------------------------------------------------------------
    def evaluate_ids(self, pattern: Pattern,
                     start: int | None = None) -> set[int]:  # pragma: no cover
        raise NotImplementedError

    def evaluate(self, pattern: Pattern, start: int | None = None) -> set[Node]:
        """``q(n, I)`` as ``(id, label)`` pairs, exactly like the naive path."""
        idx = self._index
        return {idx.node(nid) for nid in self.evaluate_ids(pattern, start)}

    def selects(self, pattern: Pattern, nid: int) -> bool:
        """Is node ``nid`` in ``q(I)``?"""
        return nid in self.evaluate_ids(pattern)


__all__ = ["SnapshotEvaluator", "CANON_MEMO_SIZE"]

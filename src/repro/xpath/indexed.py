"""Label-indexed tree-pattern evaluation over a :class:`TreeIndex` snapshot.

Same semantics as :mod:`repro.xpath.evaluator` (the two are cross-checked by
a Hypothesis equivalence suite; :mod:`repro.xpath.bitset` is the third,
set-at-a-time substrate), different evaluation strategy:

* each step's frontier is seeded from the snapshot's **label index** — a
  ``//a`` step bisects the sorted slot numbers of the ``a``-nodes instead
  of walking every subtree under every anchor;
* a ``//`` step first reduces the frontier to its **minimal interval
  cover**, so overlapping subtrees are scanned once;
* predicate satisfaction is memoised per ``(canonical predicate, node)``
  and the memo lives on the :class:`IndexedEvaluator`, i.e. it is shared
  across *all* queries asked against the same snapshot — a bound reasoner
  evaluating many ranges over one instance hits it constantly.

Predicates are canonicalised (:func:`repro.xpath.ast.normalize_preds`)
before keying, so syntactically different but structurally equal predicates
from different queries share memo rows.

All memos are LRU-capped (:class:`repro.caching.LRUMemo`) so a long-lived
binding serving an adversarial stream of distinct queries stays bounded,
and they are keyed to the snapshot's :attr:`~repro.trees.index.TreeIndex.
revision` (see :class:`repro.xpath.snapshot.SnapshotEvaluator`): after an
in-place index edit (``apply_move`` & co.) the memos are dropped lazily on
the next query instead of poisoning answers.
"""

from __future__ import annotations

from repro.caching import LRUMemo
from repro.trees.index import TreeIndex
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred
from repro.xpath.snapshot import SnapshotEvaluator

PRED_MEMO_SIZE = 65536   # (canonical predicate, node) -> bool
QUERY_MEMO_SIZE = 4096   # (canonical pattern, anchor) -> answer ids


class IndexedEvaluator(SnapshotEvaluator):
    """A node-at-a-time evaluation session pinned to one tree snapshot.

    Build one per instance (or let :meth:`for_tree` / the ``context=``
    fast paths do it) and ask any number of queries; every answer is
    bit-identical to the naive evaluator on the same tree.
    """

    __slots__ = ("_pred_memo", "_query_memo")

    def __init__(self, snapshot: TreeIndex | DataTree):
        super().__init__(snapshot)
        self._pred_memo = LRUMemo(PRED_MEMO_SIZE)
        self._query_memo = LRUMemo(QUERY_MEMO_SIZE)

    @property
    def memo_entries(self) -> int:
        """Size of the shared predicate memo (observability hook)."""
        return len(self._pred_memo)

    def _drop_revision_memos(self) -> None:
        self._pred_memo.clear()
        self._query_memo.clear()

    # ------------------------------------------------------------------
    # Candidate enumeration (the label-index seeding)
    # ------------------------------------------------------------------
    def _step_candidates(self, axis: Axis, label: str | None, anchor: int):
        idx = self._index
        if axis is Axis.CHILD:
            kids = idx.children(anchor)
            if label is None:
                return kids
            return [k for k in kids if idx.label(k) == label]
        if label is None:
            return idx.descendants(anchor)
        return idx.descendants_with_label(label, anchor)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _holds(self, pred: Pred, anchor: int) -> bool:
        """Memoised satisfaction of an already-canonical predicate."""
        key = (pred, anchor)
        cached = self._pred_memo.get(key)
        if cached is not None:
            return cached
        idx = self._index
        label = pred.label
        subs = pred.children
        result = False
        if not subs and label is not None:
            # Leaf predicate: pure existence, answered by counting.
            if pred.axis is Axis.DESC:
                result = idx.count_descendants_with_label(label, anchor) > 0
            else:
                for kid in idx.children(anchor):
                    if idx.label(kid) == label:
                        result = True
                        break
        else:
            for cand in self._step_candidates(pred.axis, label, anchor):
                ok = True
                for sub in subs:
                    if not self._holds(sub, cand):
                        ok = False
                        break
                if ok:
                    result = True
                    break
        self._pred_memo.put(key, result)
        return result

    def matches_at(self, pred: Pred, anchor: int) -> bool:
        """Boolean-pattern satisfaction: does ``pred`` hold at ``anchor``?"""
        self._sync()
        return self._holds(self._canonical(pred), anchor)

    # ------------------------------------------------------------------
    # Spine sweep
    # ------------------------------------------------------------------
    def evaluate_ids(self, pattern: Pattern, start: int | None = None) -> set[int]:
        """``q(n, I)`` as bare identifiers (``n`` defaults to the root).

        Answers are memoised per ``(canonical pattern, anchor)`` — the
        snapshot only changes through the revision-bumping ``apply_*``
        edits, so a repeated query (the session workload: premise ranges
        re-evaluated for every conclusion) is a dict hit.
        """
        self._sync()
        anchor = self._index.root if start is None else start
        key = (self._canonical_pattern(pattern), anchor)
        hit = self._query_memo.get(key)
        if hit is None:
            hit = frozenset(self._sweep(key[0], anchor))
            self._query_memo.put(key, hit)
        return set(hit)

    def _sweep(self, pattern: Pattern, start: int) -> set[int]:
        idx = self._index
        holds = self._holds
        frontier: set[int] = {start}
        for step in pattern.steps:
            preds = tuple(self._canonical(p) for p in step.preds)
            label = step.label
            child_axis = step.axis is Axis.CHILD
            next_frontier: set[int] = set()
            if child_axis:
                anchors = frontier
            elif len(frontier) > 1:
                # Overlapping subtrees collapse to their minimal cover: each
                # candidate is produced exactly once.
                anchors = idx.minimal_cover(frontier)
            else:
                anchors = frontier
            for anchor in anchors:
                if child_axis:
                    candidates = idx.children(anchor)
                elif label is None:
                    candidates = idx.descendants(anchor)
                else:
                    candidates = idx.descendants_with_label(label, anchor)
                for cand in candidates:
                    if cand in next_frontier:
                        continue
                    if child_axis and label is not None and idx.label(cand) != label:
                        continue
                    ok = True
                    for p in preds:
                        if not holds(p, cand):
                            ok = False
                            break
                    if ok:
                        next_frontier.add(cand)
            frontier = next_frontier
            if not frontier:
                break
        return frontier


# ----------------------------------------------------------------------
# Module-level mirrors of the naive evaluator's API
# ----------------------------------------------------------------------
def context_for(source: IndexedEvaluator | TreeIndex | DataTree) -> IndexedEvaluator:
    """Coerce any snapshot-ish object into an :class:`IndexedEvaluator`."""
    if isinstance(source, IndexedEvaluator):
        return source
    return IndexedEvaluator(source)


def evaluate(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
             start: int | None = None) -> set[Node]:
    return context_for(context).evaluate(pattern, start)


def evaluate_ids(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
                 start: int | None = None) -> set[int]:
    return context_for(context).evaluate_ids(pattern, start)


def selects(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
            nid: int) -> bool:
    return context_for(context).selects(pattern, nid)


def matches_at(pred: Pred, context: IndexedEvaluator | TreeIndex | DataTree,
               anchor: int) -> bool:
    return context_for(context).matches_at(pred, anchor)

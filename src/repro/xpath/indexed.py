"""Label-indexed tree-pattern evaluation over a :class:`TreeIndex` snapshot.

Same semantics as :mod:`repro.xpath.evaluator` (the two are cross-checked by
a Hypothesis equivalence suite), different substrate:

* each step's frontier is seeded from the snapshot's **label index** — a
  ``//a`` step bisects the sorted preorder numbers of the ``a``-nodes
  instead of walking every subtree under every anchor;
* a ``//`` step first reduces the frontier to its **minimal interval
  cover**, so overlapping subtrees are scanned once;
* predicate satisfaction is memoised per ``(canonical predicate, node)``
  and the memo lives on the :class:`IndexedEvaluator`, i.e. it is shared
  across *all* queries asked against the same snapshot — a bound reasoner
  evaluating many ranges over one instance hits it constantly.

Predicates are canonicalised (:func:`repro.xpath.ast.normalize_preds`)
before keying, so syntactically different but structurally equal predicates
from different queries share memo rows.
"""

from __future__ import annotations

from repro.trees.index import TreeIndex
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred, normalize, normalize_preds


class IndexedEvaluator:
    """A pattern-evaluation session pinned to one tree snapshot.

    Build one per instance (or let :meth:`for_tree` / the ``context=``
    fast paths do it) and ask any number of queries; every answer is
    bit-identical to the naive evaluator on the same tree.
    """

    __slots__ = ("_index", "_pred_memo", "_canon", "_query_memo",
                 "_canon_patterns")

    def __init__(self, snapshot: TreeIndex | DataTree):
        if isinstance(snapshot, DataTree):
            snapshot = TreeIndex(snapshot)
        self._index = snapshot
        self._pred_memo: dict[tuple[Pred, int], bool] = {}
        self._canon: dict[Pred, Pred] = {}
        self._query_memo: dict[tuple[Pattern, int], frozenset[int]] = {}
        self._canon_patterns: dict[Pattern, Pattern] = {}

    @classmethod
    def for_tree(cls, tree: DataTree) -> "IndexedEvaluator":
        return cls(TreeIndex(tree))

    @property
    def index(self) -> TreeIndex:
        return self._index

    @property
    def tree(self) -> DataTree:
        return self._index.tree

    def covers(self, tree: DataTree) -> bool:
        """Usable as a fast path for ``tree``?  (Same object, unmutated.)"""
        return self._index.covers(tree)

    @property
    def memo_entries(self) -> int:
        """Size of the shared predicate memo (observability hook)."""
        return len(self._pred_memo)

    # ------------------------------------------------------------------
    # Canonicalisation
    # ------------------------------------------------------------------
    def _canonical(self, pred: Pred) -> Pred:
        canon = self._canon.get(pred)
        if canon is None:
            canon = normalize_preds((pred,))[0]
            self._canon[pred] = canon
        return canon

    # ------------------------------------------------------------------
    # Candidate enumeration (the label-index seeding)
    # ------------------------------------------------------------------
    def _step_candidates(self, axis: Axis, label: str | None, anchor: int):
        idx = self._index
        if axis is Axis.CHILD:
            kids = idx.children(anchor)
            if label is None:
                return kids
            return [k for k in kids if idx.label(k) == label]
        if label is None:
            return idx.descendants(anchor)
        return idx.descendants_with_label(label, anchor)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _holds(self, pred: Pred, anchor: int) -> bool:
        """Memoised satisfaction of an already-canonical predicate."""
        key = (pred, anchor)
        cached = self._pred_memo.get(key)
        if cached is not None:
            return cached
        idx = self._index
        label = pred.label
        subs = pred.children
        result = False
        if not subs and label is not None:
            # Leaf predicate: pure existence, answered by counting.
            if pred.axis is Axis.DESC:
                result = idx.count_descendants_with_label(label, anchor) > 0
            else:
                for kid in idx.children(anchor):
                    if idx.label(kid) == label:
                        result = True
                        break
        else:
            for cand in self._step_candidates(pred.axis, label, anchor):
                ok = True
                for sub in subs:
                    if not self._holds(sub, cand):
                        ok = False
                        break
                if ok:
                    result = True
                    break
        self._pred_memo[key] = result
        return result

    def matches_at(self, pred: Pred, anchor: int) -> bool:
        """Boolean-pattern satisfaction: does ``pred`` hold at ``anchor``?"""
        return self._holds(self._canonical(pred), anchor)

    # ------------------------------------------------------------------
    # Spine sweep
    # ------------------------------------------------------------------
    def evaluate_ids(self, pattern: Pattern, start: int | None = None) -> set[int]:
        """``q(n, I)`` as bare identifiers (``n`` defaults to the root).

        Answers are memoised per ``(canonical pattern, anchor)`` — the
        snapshot never changes, so a repeated query (the session workload:
        premise ranges re-evaluated for every conclusion) is a dict hit.
        """
        anchor = self._index.root if start is None else start
        canon = self._canon_patterns.get(pattern)
        if canon is None:
            canon = normalize(pattern)
            self._canon_patterns[pattern] = canon
        key = (canon, anchor)
        hit = self._query_memo.get(key)
        if hit is None:
            hit = frozenset(self._sweep(canon, anchor))
            self._query_memo[key] = hit
        return set(hit)

    def _sweep(self, pattern: Pattern, start: int) -> set[int]:
        idx = self._index
        holds = self._holds
        frontier: set[int] = {start}
        for step in pattern.steps:
            preds = tuple(self._canonical(p) for p in step.preds)
            label = step.label
            child_axis = step.axis is Axis.CHILD
            next_frontier: set[int] = set()
            if child_axis:
                anchors = frontier
            elif len(frontier) > 1:
                # Overlapping subtrees collapse to their minimal cover: each
                # candidate is produced exactly once.
                anchors = idx.minimal_cover(frontier)
            else:
                anchors = frontier
            for anchor in anchors:
                if child_axis:
                    candidates = idx.children(anchor)
                elif label is None:
                    candidates = idx.descendants(anchor)
                else:
                    candidates = idx.descendants_with_label(label, anchor)
                for cand in candidates:
                    if cand in next_frontier:
                        continue
                    if child_axis and label is not None and idx.label(cand) != label:
                        continue
                    ok = True
                    for p in preds:
                        if not holds(p, cand):
                            ok = False
                            break
                    if ok:
                        next_frontier.add(cand)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def evaluate(self, pattern: Pattern, start: int | None = None) -> set[Node]:
        """``q(n, I)`` as ``(id, label)`` pairs, exactly like the naive path."""
        idx = self._index
        return {idx.node(nid) for nid in self.evaluate_ids(pattern, start)}

    def selects(self, pattern: Pattern, nid: int) -> bool:
        """Is node ``nid`` in ``q(I)``?"""
        return nid in self.evaluate_ids(pattern)


# ----------------------------------------------------------------------
# Module-level mirrors of the naive evaluator's API
# ----------------------------------------------------------------------
def context_for(source: IndexedEvaluator | TreeIndex | DataTree) -> IndexedEvaluator:
    """Coerce any snapshot-ish object into an :class:`IndexedEvaluator`."""
    if isinstance(source, IndexedEvaluator):
        return source
    return IndexedEvaluator(source)


def evaluate(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
             start: int | None = None) -> set[Node]:
    return context_for(context).evaluate(pattern, start)


def evaluate_ids(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
                 start: int | None = None) -> set[int]:
    return context_for(context).evaluate_ids(pattern, start)


def selects(pattern: Pattern, context: IndexedEvaluator | TreeIndex | DataTree,
            nid: int) -> bool:
    return context_for(context).selects(pattern, nid)


def matches_at(pred: Pred, context: IndexedEvaluator | TreeIndex | DataTree,
               anchor: int) -> bool:
    return context_for(context).matches_at(pred, anchor)

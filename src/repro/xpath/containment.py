"""Containment and equivalence of tree-pattern queries.

Two complete deciders are provided and dispatched by fragment, following the
landscape of [Miklau-Suciu] that the paper builds on (its footnote 2):

* :func:`hom_contained` — existence of a *containment mapping* (pattern
  homomorphism).  Sound for the full fragment; complete when the pattern
  pair avoids the wildcard (``XP{/,[],//}``) or avoids the descendant axis
  (``XP{/,[],*}``).  Polynomial time.
* :func:`canonical_contained` — the canonical-model test: ``p ⊆ q`` iff
  ``q`` selects the output of every canonical model of ``p`` with chain cap
  ``star_length(q) + 1``.  Complete for the full fragment
  ``XP{/,[],//,*}``; exponential in the number of descendant edges of
  ``p`` (the problem is coNP-complete, so this is expected).

:func:`contained` picks the cheapest complete decider; ``equivalent`` checks
both directions.  These primitives back Theorem 3.1 (implication between two
constraints is query equivalence) and every intersection-based engine.
"""

from __future__ import annotations

from functools import lru_cache

from repro.xpath.ast import Axis, Pattern, Pred, Step
from repro.xpath.canonical import canonical_models
from repro.xpath.evaluator import evaluate_ids
from repro.xpath.properties import fragment_of, star_length


# ----------------------------------------------------------------------
# Containment mappings (homomorphisms)
# ----------------------------------------------------------------------
class _HomSearch:
    """Existence of a containment mapping from pattern ``q`` into pattern ``p``.

    A containment mapping sends the (virtual) root to the root, the output
    to the output, preserves concrete labels (a concrete-label node of ``q``
    may not map to a wildcard node of ``p``), maps child edges to child
    edges and descendant edges to strictly-descending paths.  Its existence
    implies ``p ⊆ q``; on the wildcard-free and descendant-free fragments it
    is equivalent to it.

    ``p`` is addressed through *positions*: spine positions ``(i,)`` and
    predicate positions ``(i, path...)``.  The search is a memoised
    conjunctive matching, polynomial in ``|p| * |q|``.
    """

    def __init__(self, p: Pattern, q: Pattern):
        self.p = p
        self.q = q
        self._pred_memo: dict[tuple[int, tuple], bool] = {}

    # --- structure helpers on p ---------------------------------------
    def p_children(self, pos: tuple) -> list[tuple]:
        """Child positions of ``pos`` in p (spine child + predicate roots)."""
        kids: list[tuple] = []
        if len(pos) == 1:
            i = pos[0]
            if i + 1 < len(self.p.steps):
                kids.append((i + 1,))
            for j in range(len(self.p.steps[i].preds)):
                kids.append((i, j))
        else:
            node = self.p_node(pos)
            for j in range(len(node.children)):
                kids.append(pos + (j,))
        return kids

    def p_node(self, pos: tuple) -> Pred | Step:
        if len(pos) == 1:
            return self.p.steps[pos[0]]
        node: Pred = self.p.steps[pos[0]].preds[pos[1]]
        for idx in pos[2:]:
            node = node.children[idx]
        return node

    def p_axis(self, pos: tuple) -> Axis:
        return self.p_node(pos).axis

    def p_label(self, pos: tuple) -> str | None:
        return self.p_node(pos).label

    def p_descendant_positions(self, pos: tuple):
        """All strict descendants of ``pos`` in p (any depth)."""
        stack = self.p_children(pos)
        while stack:
            cur = stack.pop()
            yield cur
            stack.extend(self.p_children(cur))

    # --- matching ------------------------------------------------------
    def label_ok(self, q_label: str | None, pos: tuple) -> bool:
        if q_label is None:
            return True
        return self.p_label(pos) == q_label

    def pred_matches_at(self, pred: Pred, pos: tuple) -> bool:
        """Can predicate ``pred`` of q be mapped below position ``pos``?"""
        key = (id(pred), pos)
        cached = self._pred_memo.get(key)
        if cached is not None:
            return cached
        if pred.axis is Axis.CHILD:
            candidates = [c for c in self.p_children(pos) if self.p_axis(c) is Axis.CHILD]
        else:
            candidates = list(self.p_descendant_positions(pos))
        result = any(
            self.label_ok(pred.label, cand)
            and all(self.pred_matches_at(sub, cand) for sub in pred.children)
            for cand in candidates
        )
        self._pred_memo[key] = result
        return result

    def exists(self) -> bool:
        """Run the spine-level dynamic program."""
        # frontier: set of p spine indices the q-prefix may map its last step to;
        # start state: virtual root (index -1).
        frontier: set[int] = {-1}
        for step in self.q.steps:
            next_frontier: set[int] = set()
            for i in frontier:
                if step.axis is Axis.CHILD:
                    cands = []
                    if i + 1 < len(self.p.steps) and self.p.steps[i + 1].axis is Axis.CHILD:
                        cands.append(i + 1)
                else:
                    cands = list(range(i + 1, len(self.p.steps)))
                for j in cands:
                    if j in next_frontier:
                        continue
                    if self.label_ok(step.label, (j,)) and all(
                        self.pred_matches_at(pred, (j,)) for pred in step.preds
                    ):
                        next_frontier.add(j)
            frontier = next_frontier
            if not frontier:
                return False
        # The q output must land on the p output (last spine step).
        return len(self.p.steps) - 1 in frontier


def hom_contained(p: Pattern, q: Pattern) -> bool:
    """Sound containment test ``p ⊆ q`` via containment mapping q -> p."""
    return _HomSearch(p, q).exists()


# ----------------------------------------------------------------------
# Canonical-model containment
# ----------------------------------------------------------------------
def canonical_contained(p: Pattern, q: Pattern) -> bool:
    """Exact containment ``p ⊆ q`` on the full fragment.

    Checks every canonical model of ``p`` with cap ``star_length(q) + 1``.
    """
    from repro.trees.ops import fresh_label_for
    from repro.xpath.properties import labels_of

    cap = star_length(q) + 1
    fresh = fresh_label_for(labels_of(p, q))
    for model in canonical_models(p, cap, fresh=fresh):
        if model.output not in evaluate_ids(q, model.tree):
            return False
    return True


def _hom_complete(p: Pattern, q: Pattern) -> bool:
    """Is the homomorphism test complete for this pair?

    Complete on ``XP{/,[],//}`` (no wildcard) and on ``XP{/,[],*}`` (no
    descendant axis) — the PTIME islands of [Miklau-Suciu].
    """
    frag = fragment_of(p) | fragment_of(q)
    return not frag.wildcard or not frag.descendant


@lru_cache(maxsize=65536)
def contained(p: Pattern, q: Pattern) -> bool:
    """Exact containment ``p ⊆ q``, dispatching to the cheapest decider."""
    if _hom_complete(p, q):
        return hom_contained(p, q)
    # The homomorphism test remains sound: a hit is a proof of containment.
    if hom_contained(p, q):
        return True
    return canonical_contained(p, q)


def equivalent(p: Pattern, q: Pattern) -> bool:
    """Exact query equivalence ``p ≡ q``."""
    return contained(p, q) and contained(q, p)


def find_separating_model(p: Pattern, q: Pattern):
    """A canonical model of ``p`` whose output escapes ``q`` (or ``None``).

    This is the witness behind non-containment, used by the constructive
    counterexample builders (Theorem 3.1 / Figure 3).
    """
    from repro.trees.ops import fresh_label_for
    from repro.xpath.properties import labels_of

    cap = star_length(q) + 1
    fresh = fresh_label_for(labels_of(p, q))
    for model in canonical_models(p, cap, fresh=fresh):
        if model.output not in evaluate_ids(q, model.tree):
            return model
    return None

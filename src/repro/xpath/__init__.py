"""The XPath fragment ``XP{/,[],//,*}`` of the paper (Section 2)."""

from repro.xpath.ast import Axis, Pattern, Pred, Step, make_path, normalize
from repro.xpath.bitset import BitsetEvaluator
from repro.xpath.canonical import (
    CanonicalModel,
    canonical_models,
    count_desc_edges,
    count_wildcards,
    model_count,
    smallest_model,
)
from repro.xpath.containment import (
    canonical_contained,
    contained,
    equivalent,
    find_separating_model,
    hom_contained,
)
from repro.xpath.evaluator import evaluate, evaluate_ids, matches_at, selects
from repro.xpath.indexed import IndexedEvaluator
from repro.xpath.intersection import (
    escape_witness,
    intersect_child_only,
    intersection_contained,
    intersection_equivalent,
    product_patterns,
)
from repro.xpath.parser import parse
from repro.xpath.properties import (
    Fragment,
    fragment_of,
    is_child_only,
    is_linear,
    labels_of,
    max_star_length,
    star_length,
    wildcard_gap_bound,
)

__all__ = [
    "Axis",
    "Pattern",
    "Pred",
    "Step",
    "make_path",
    "normalize",
    "parse",
    "evaluate",
    "evaluate_ids",
    "selects",
    "matches_at",
    "IndexedEvaluator",
    "BitsetEvaluator",
    "contained",
    "hom_contained",
    "canonical_contained",
    "equivalent",
    "find_separating_model",
    "CanonicalModel",
    "canonical_models",
    "smallest_model",
    "model_count",
    "count_desc_edges",
    "count_wildcards",
    "intersect_child_only",
    "product_patterns",
    "intersection_contained",
    "intersection_equivalent",
    "escape_witness",
    "Fragment",
    "fragment_of",
    "labels_of",
    "star_length",
    "max_star_length",
    "wildcard_gap_bound",
    "is_linear",
    "is_child_only",
]

"""Polynomial-time evaluation of tree-pattern queries on data trees.

Implements the standard semantics (Section 2 of the paper, following
[Gottlob-Koch-Pichler-Segoufin]): ``q(n, I)`` is the set of ``(id, label)``
pairs selected by ``q`` evaluated on the subtree of ``I`` rooted at ``n``;
``q(I)`` abbreviates ``q(root, I)``.

The evaluator is a two-phase dynamic program:

1. predicate satisfaction is memoised per ``(predicate-node, data-node)``;
2. the spine is swept top-down, maintaining the frontier of data nodes the
   prefix of the spine can reach.

Both phases are polynomial in ``|q| * |I|`` — the fragment's classical
evaluation bound.
"""

from __future__ import annotations

from repro.trees.tree import DataTree
from repro.trees.node import Node
from repro.xpath.ast import Axis, Pattern, Pred


class _Evaluation:
    """One evaluation run: carries the tree and the predicate memo table."""

    def __init__(self, tree: DataTree):
        self.tree = tree
        self._memo: dict[tuple[int, int], bool] = {}

    def label_matches(self, pattern_label: str | None, nid: int) -> bool:
        return pattern_label is None or self.tree.label(nid) == pattern_label

    def axis_candidates(self, axis: Axis, anchor: int):
        if axis is Axis.CHILD:
            return self.tree.children(anchor)
        return self.tree.descendants(anchor)

    def pred_holds(self, pred: Pred, anchor: int) -> bool:
        """Does predicate ``pred`` (anchored at data node ``anchor``) hold?"""
        key = (id(pred), anchor)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = any(
            self.label_matches(pred.label, cand)
            and all(self.pred_holds(sub, cand) for sub in pred.children)
            for cand in self.axis_candidates(pred.axis, anchor)
        )
        self._memo[key] = result
        return result

    def evaluate(self, pattern: Pattern, start: int) -> set[Node]:
        frontier: set[int] = {start}
        for step in pattern.steps:
            next_frontier: set[int] = set()
            for anchor in frontier:
                for cand in self.axis_candidates(step.axis, anchor):
                    if cand in next_frontier:
                        continue
                    if self.label_matches(step.label, cand) and all(
                        self.pred_holds(p, cand) for p in step.preds
                    ):
                        next_frontier.add(cand)
            frontier = next_frontier
            if not frontier:
                break
        return {self.tree.node(nid) for nid in frontier}


def evaluate(pattern: Pattern, tree: DataTree, start: int | None = None,
             context=None) -> set[Node]:
    """Compute ``q(n, I)`` — by default ``q(I)`` with ``n`` the root.

    Returns the set of selected nodes as ``(id, label)`` pairs.

    ``context`` optionally supplies an
    :class:`repro.xpath.indexed.IndexedEvaluator` snapshot of ``tree``; when
    it is fresh for this very tree the label-indexed fast path answers
    (bit-identically), sharing its predicate memo with every other query on
    the snapshot.  A stale or foreign context falls back to the naive sweep.
    """
    if context is not None and context.covers(tree):
        return context.evaluate(pattern, start)
    run = _Evaluation(tree)
    return run.evaluate(pattern, tree.root if start is None else start)


def evaluate_ids(pattern: Pattern, tree: DataTree, start: int | None = None,
                 context=None) -> set[int]:
    """Like :func:`evaluate` but returning bare identifiers."""
    if context is not None and context.covers(tree):
        return context.evaluate_ids(pattern, start)
    return {node.nid for node in evaluate(pattern, tree, start)}


def selects(pattern: Pattern, tree: DataTree, nid: int, context=None) -> bool:
    """Is node ``nid`` in ``q(I)``?  (Membership test, same complexity.)"""
    return nid in evaluate_ids(pattern, tree, context=context)


def matches_at(pred: Pred, tree: DataTree, anchor: int, context=None) -> bool:
    """Boolean-pattern satisfaction: does ``pred`` hold at ``anchor``?"""
    if context is not None and context.covers(tree):
        return context.matches_at(pred, anchor)
    return _Evaluation(tree).pred_holds(pred, anchor)

"""Set-at-a-time tree-pattern evaluation: node-sets as bitsets.

Third evaluation substrate, same semantics as :mod:`repro.xpath.evaluator`
(naive) and :mod:`repro.xpath.indexed` (node-at-a-time over a
:class:`~repro.trees.index.TreeIndex`) — the three are cross-checked by a
Hypothesis three-way equivalence suite.  Where the indexed evaluator still
loops "for each candidate, does the predicate hold?", this one evaluates
whole frontiers at once as Python ``int`` masks keyed by the snapshot's
slot numbering:

* a step's *test* is one mask — the label's bitset intersected with one
  **predicate mask per canonical predicate**, each computed once per
  snapshot revision and cached (predicate satisfaction for *every* node in
  a single bottom-up pass, instead of once per (predicate, node) pair);
* a ``//`` step expands the frontier as interval range-masks over its
  minimal cover — one shift-and-subtract per covering subtree, no
  per-descendant work at all;
* a ``/`` step is one whole-set hop over the label's slot list (byte-view
  membership tests) or, for sparse frontiers, a union of cached per-node
  children masks.

The evaluator tracks its snapshot's :attr:`~repro.trees.index.TreeIndex.
revision` (see :class:`repro.xpath.snapshot.SnapshotEvaluator`): after an
in-place index edit (the search journals' moves, the enforcement stream's
operations) cached predicate masks are **delta-patched** from the index's
:class:`~repro.trees.index.EditDelta` log rather than recomputed — under a
single edit only the ancestor chains of the edit points can change their
downward structure, so a stale mask is repaired by remapping relocated
slots (satisfaction travels with a moved subtree) and re-deciding the
predicate at the few dirty nodes.  Per-edit upkeep is proportional to the
edit's footprint, not to the document; when the delta log no longer
reaches back (a long-idle mask), the full bottom-up rebuild kicks in.
All memos are LRU-capped — a long-lived binding serving an adversarial
query stream cannot grow without bound.
"""

from __future__ import annotations

from typing import Iterable, cast

from repro.caching import LRUMemo
# The big-int mask helpers live with the backends now (repro.masks); they
# are re-exported here because this module is their historical home and
# the hot paths below are their heaviest users.
from repro.masks.bigint import _BIT, _BYTE_SLOTS  # noqa: F401
from repro.masks.bigint import byte_view, iter_slots, slots_of
from repro.trees.index import TreeIndex
from repro.trees.node import Node
from repro.trees.tree import DataTree
from repro.xpath.ast import Axis, Pattern, Pred
from repro.xpath.snapshot import SnapshotEvaluator

__all__ = [
    "BitsetEvaluator",
    "PRED_MASK_MEMO_SIZE",
    "QUERY_MEMO_SIZE",
    "byte_view",
    "context_for",
    "evaluate",
    "evaluate_ids",
    "iter_slots",
    "matches_at",
    "region_mask",
    "selects",
    "slots_of",
]

PRED_MASK_MEMO_SIZE = 4096   # canonical predicate -> satisfaction mask
QUERY_MEMO_SIZE = 4096       # (canonical pattern, anchor) -> answer ids

_MISS = object()


def region_mask(index: TreeIndex, anchors: Iterable[int]) -> int:
    """Occupied-slot mask of the subtrees rooted at ``anchors`` (selves
    included) — the bitset form of a preorder-interval region.

    The independence analyzer and the intra-document shard planner both
    describe tree regions as anchor frontiers; this folds a frontier into
    one mask comparable against answer and baseline masks.
    """
    mask = 0
    for nid in index.minimal_cover(anchors):
        mask |= index.subtree_mask(nid, include_self=True)
    return mask & index.all_mask()


class BitsetEvaluator(SnapshotEvaluator):
    """A set-at-a-time evaluation session over one tree snapshot.

    Interface-compatible with :class:`repro.xpath.indexed.IndexedEvaluator`
    (both derive the session plumbing — ``covers``, ``apply_*``, revision
    sync, canonicalisation — from the shared base), so every ``context=``
    fast path accepts either.
    """

    __slots__ = ("_pred_masks", "_query_memo", "_masks_rev")

    def __init__(self, snapshot: TreeIndex | DataTree):
        super().__init__(snapshot)
        self._pred_masks = LRUMemo(PRED_MASK_MEMO_SIZE)
        self._query_memo = LRUMemo(QUERY_MEMO_SIZE)
        # The packed revision side-table: ONE revision stamp for the whole
        # mask memo instead of a (mask, revision) pair per entry.  Every
        # cached mask is current at ``_masks_rev``; a revision bump patches
        # them all in one batch (sharing the deltas and the dirty set), so
        # the hot read path is a bare dict hit — no tuple allocation per
        # store, no unpack-and-compare per lookup.
        self._masks_rev = self._revision

    @property
    def memo_entries(self) -> int:
        """Number of cached predicate masks (observability hook)."""
        return len(self._pred_masks)

    def _drop_revision_memos(self) -> None:
        # Query answers are revision-bound and cheap to rebuild; predicate
        # masks are *kept* — patched in one batch from the edit deltas
        # (or dropped wholesale when the delta log no longer reaches back).
        self._query_memo.clear()
        self._patch_all_masks()

    # ------------------------------------------------------------------
    # Whole-tree predicate masks (delta-maintained across index edits)
    # ------------------------------------------------------------------
    def _pred_mask(self, pred: Pred) -> int:
        """Mask of every node where the (canonical) predicate holds.

        A cold mask is one bottom-up pass: the nodes matching the
        predicate's own test (label mask ∩ child-predicate masks) are
        lifted to their parents (``/``) or their ancestor closure (``//``,
        with marked-ancestor early exit — O(n) amortised across the whole
        mask).  Cached masks are always current at the evaluator's synced
        revision (:meth:`_patch_all_masks` repairs them per revision
        bump), so the hit path is a single dict probe.
        """
        mask = self._pred_masks.get(pred, _MISS)
        if mask is not _MISS:
            return cast(int, mask)
        idx = self._index
        target = idx.label_mask(pred.label)
        for sub in pred.children:
            if not target:
                break
            target &= self._pred_mask(sub)
        if not target:
            result = 0
        elif pred.axis is Axis.CHILD:
            result = idx.parents_mask(target, pred.label)
        else:
            result = idx.ancestors_mask(target, pred.label)
        self._pred_masks.put(pred, result)
        return result

    def _patch_all_masks(self) -> None:
        """Repair every cached satisfaction mask from the index's deltas.

        Two facts make this sound: satisfaction of a downward-looking
        predicate travels verbatim with a relocated subtree (its contents
        are unchanged), and the nodes whose subtree contents *did* change
        are exactly the deltas' dirty chains — upward-closed sets, so a
        nested predicate's flips are always covered by the same chains.
        Relocations are replayed in order (chained moves re-use slots);
        dirty nodes are re-decided once per predicate, against the current
        structure and the already-patched sub-predicate masks (nested
        predicates are patched first, exactly because the re-decision
        consults them).  Past the delta log's horizon the memo is dropped
        wholesale and masks rebuild cold on next use.
        """
        idx = self._index
        rev = idx.revision
        deltas = idx.deltas_since(self._masks_rev)
        self._masks_rev = rev
        if deltas is None:
            self._pred_masks.clear()
            return
        if not deltas or not len(self._pred_masks):
            return
        dirty: dict[int, None] = {}
        for delta in deltas:
            dirty.update(dict.fromkeys(delta.dirty))
            dirty.update(dict.fromkeys(delta.added))
        alive = [n for n in dirty if n in idx]
        memo = self._pred_masks
        patched: set[Pred] = set()

        def patch(pred: Pred) -> None:
            if pred in patched:
                return
            patched.add(pred)
            # Recurse through uncached nodes too: a cold recompute deeper
            # in the tree consults cached sub-masks, which must already be
            # patched by then.
            for sub in pred.children:
                patch(sub)
            mask = memo.peek(pred, _MISS)
            if mask is _MISS:
                return  # uncached predicates rebuild cold on demand
            for delta in deltas:
                mask = delta.patch_mask(mask)
            memo.put(pred, self._redecide(pred, mask, alive))

        for key in memo.keys():
            patch(cast(Pred, key))

    def _redecide(self, pred: Pred, mask: int, alive: list[int]) -> int:
        """Re-decide ``pred`` at the surviving dirty nodes of an edit batch."""
        if not alive:
            return mask
        idx = self._index
        target = idx.label_mask(pred.label)
        for sub in pred.children:
            if not target:
                break
            target &= self._pred_mask(sub)
        child_axis = pred.axis is Axis.CHILD
        for n in alive:
            bit = 1 << idx.pre(n)
            if not target:
                holds = False
            elif child_axis:
                holds = bool(idx.children_mask(n) & target)
            else:
                holds = bool(idx.subtree_mask(n) & target)
            if holds:
                mask |= bit
            else:
                mask &= ~bit
        return mask

    def matches_at(self, pred: Pred, anchor: int) -> bool:
        """Boolean-pattern satisfaction: does ``pred`` hold at ``anchor``?"""
        self._sync()
        return bool((self._pred_mask(self._canonical(pred))
                     >> self._index.pre(anchor)) & 1)

    # ------------------------------------------------------------------
    # Whole-frontier spine sweep
    # ------------------------------------------------------------------
    def _sweep_mask(self, pattern: Pattern, start: int) -> int:
        idx = self._index
        node_at = idx.node_at
        frontier = 1 << idx.pre(start)
        anchors = 1  # popcount of the frontier, tracked cheaply
        for step in pattern.steps:
            test = idx.label_mask(step.label)
            for p in step.preds:
                if not test:
                    break
                test &= self._pred_mask(self._canonical(p))
            if not test:
                return 0
            if step.axis is Axis.CHILD:
                if anchors * 8 < len(idx.label_slots(step.label)):
                    # Sparse frontier: union the per-anchor children masks.
                    cand = 0
                    for s in iter_slots(frontier):
                        cand |= idx.children_mask(node_at(s))
                    frontier = cand & test
                else:
                    # Dense frontier: one whole-set hop over the label's
                    # candidates, byte-view membership tests throughout.
                    frontier = idx.child_step_mask(frontier, test, step.label)
            else:
                # The lowest remaining bit is always a minimal-cover anchor;
                # clearing its whole interval afterwards skips the covered
                # frontier bits in one C-level mask op.
                cand = 0
                rest = frontier
                while rest:
                    s = (rest & -rest).bit_length() - 1
                    lo, hi = idx.interval(node_at(s))
                    if hi > lo:
                        cand |= ((1 << (hi - lo)) - 1) << (lo + 1)
                    rest &= -1 << (hi + 1)
                frontier = cand & test
            if not frontier:
                return 0
            anchors = frontier.bit_count()
        return frontier

    def evaluate_mask(self, pattern: Pattern, start: int | None = None) -> int:
        """``q(n, I)`` as a raw slot mask — no id decoding at all.

        The whole-answer compare primitive of the enforcement stream: two
        answer sets over one snapshot revision are equal iff their masks
        are, so the per-op check never materialises node sets unless a
        diff (a violation witness) actually exists.
        """
        self._sync()
        idx = self._index
        anchor = idx.root if start is None else start
        return self._sweep_mask(self._canonical_pattern(pattern), anchor)

    def evaluate_ids(self, pattern: Pattern, start: int | None = None) -> set[int]:
        """``q(n, I)`` as bare identifiers (``n`` defaults to the root)."""
        self._sync()
        idx = self._index
        anchor = idx.root if start is None else start
        key = (self._canonical_pattern(pattern), anchor)
        hit = self._query_memo.get(key)
        if hit is None:
            node_at = idx.node_at
            hit = frozenset(node_at(s)
                            for s in iter_slots(self._sweep_mask(key[0], anchor)))
            self._query_memo.put(key, hit)
        return set(hit)

    def __repr__(self) -> str:
        return (f"BitsetEvaluator({self._index!r}, "
                f"masks={len(self._pred_masks)})")


# ----------------------------------------------------------------------
# Module-level mirrors of the naive evaluator's API
# ----------------------------------------------------------------------
def context_for(source: BitsetEvaluator | TreeIndex | DataTree) -> BitsetEvaluator:
    """Coerce any snapshot-ish object into a :class:`BitsetEvaluator`."""
    if isinstance(source, BitsetEvaluator):
        return source
    return BitsetEvaluator(source)


def evaluate(pattern: Pattern, context: BitsetEvaluator | TreeIndex | DataTree,
             start: int | None = None) -> set[Node]:
    return context_for(context).evaluate(pattern, start)


def evaluate_ids(pattern: Pattern, context: BitsetEvaluator | TreeIndex | DataTree,
                 start: int | None = None) -> set[int]:
    return context_for(context).evaluate_ids(pattern, start)


def selects(pattern: Pattern, context: BitsetEvaluator | TreeIndex | DataTree,
            nid: int) -> bool:
    return context_for(context).selects(pattern, nid)


def matches_at(pred: Pred, context: BitsetEvaluator | TreeIndex | DataTree,
               anchor: int) -> bool:
    return context_for(context).matches_at(pred, anchor)

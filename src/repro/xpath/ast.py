"""Abstract syntax for the XPath fragment ``XP{/,[],//,*}``.

The paper's grammar (Section 2) is::

    path  ::=  /step | //step | path path
    step  ::=  label pred
    pred  ::=  eps | [path] | pred pred
    label ::=  L | *

We mirror it directly:

* a :class:`Pattern` is a non-empty sequence of :class:`Step` objects — the
  *spine* from the document root to the distinguished output node (the last
  step);
* each step carries the axis of the edge *into* it (``/`` child or ``//``
  descendant), a label (``None`` encodes the wildcard ``*``) and a tuple of
  predicate trees;
* a predicate is a tree of :class:`Pred` nodes, each again carrying an axis,
  a label and child predicates.  The grammar's ``[path]`` becomes a chain of
  ``Pred`` nodes, and multiple predicates on one step become siblings.

All nodes are immutable and hashable; predicates are kept in a canonical
sorted order so that structural equality coincides with syntactic equality
of the normal form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from collections.abc import Iterable, Iterator


class Axis(Enum):
    """Navigation axis of the edge entering a pattern node."""

    CHILD = "/"
    DESC = "//"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


WILDCARD: None = None  # readable alias for the wildcard label

# Recursive structural key of a predicate tree (see Pred.sort_key).
SortKey = tuple[str, str, tuple["SortKey", ...]]


@dataclass(frozen=True)
class Pred:
    """One node of a predicate tree.

    ``label is None`` encodes the wildcard.  ``children`` holds both the
    continuation of the predicate's path and any nested predicates — after
    parsing the two are indistinguishable, which is semantically accurate:
    a predicate is simply a boolean tree pattern anchored at its step.
    """

    axis: Axis
    label: str | None
    children: tuple["Pred", ...] = field(default=())

    def __hash__(self) -> int:
        # Structural hashing is O(subtree) — memo tables key on predicate
        # nodes constantly, so compute it once per object.
        h: int | None = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.axis, self.label, self.children))
            object.__setattr__(self, "_hash", h)
        return h

    def sort_key(self) -> "SortKey":
        """Deterministic structural key used to canonicalise sibling order."""
        return (
            self.axis.value,
            self.label if self.label is not None else "￿*",
            tuple(c.sort_key() for c in self.children),
        )

    @cached_property
    def size(self) -> int:
        """Number of nodes in this predicate tree."""
        return 1 + sum(c.size for c in self.children)

    def __str__(self) -> str:
        label = "*" if self.label is None else self.label
        preds = "".join(f"[{c}]" for c in self.children)
        return f"{self.axis.value}{label}{preds}"


@dataclass(frozen=True)
class Step:
    """One spine node: axis, label (``None`` = wildcard) and predicates."""

    axis: Axis
    label: str | None
    preds: tuple[Pred, ...] = field(default=())

    def __hash__(self) -> int:
        h: int | None = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.axis, self.label, self.preds))
            object.__setattr__(self, "_hash", h)
        return h

    @cached_property
    def size(self) -> int:
        return 1 + sum(p.size for p in self.preds)

    def __str__(self) -> str:
        label = "*" if self.label is None else self.label
        preds = "".join(f"[{p}]" for p in self.preds)
        return f"{self.axis.value}{label}{preds}"


@dataclass(frozen=True)
class Pattern:
    """A unary tree-pattern query: spine of steps, output = last step."""

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a pattern needs at least one step")

    def __hash__(self) -> int:
        h: int | None = self.__dict__.get("_hash")
        if h is None:
            h = hash(self.steps)
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def output(self) -> Step:
        """The distinguished output step."""
        return self.steps[-1]

    @property
    def output_label(self) -> str | None:
        """Label of the output node (``None`` for wildcard)."""
        return self.steps[-1].label

    @property
    def is_concrete(self) -> bool:
        """True when the output node carries a concrete label.

        The paper presents its results for concrete paths; engines that rely
        on this assumption check it through this property.
        """
        return self.steps[-1].label is not None

    @cached_property
    def size(self) -> int:
        """Total number of pattern nodes (spine + predicates)."""
        return sum(s.size for s in self.steps)

    @property
    def spine_length(self) -> int:
        return len(self.steps)

    def as_boolean(self) -> Pred:
        """View this pattern as a boolean predicate tree (output ignored).

        Used when patterns occur inside annotations (Section 4.2) where only
        satisfaction at a node matters.
        """
        current: tuple[Pred, ...] = ()
        for step in reversed(self.steps):
            current = (Pred(step.axis, step.label, step.preds + current),)
        return current[0]

    def with_predicate(self, pred: Pred, at: int = -1) -> "Pattern":
        """Return a copy with ``pred`` added to the step at index ``at``."""
        steps = list(self.steps)
        idx = at if at >= 0 else len(steps) + at
        step = steps[idx]
        steps[idx] = Step(step.axis, step.label, normalize_preds(step.preds + (pred,)))
        return Pattern(tuple(steps))

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps)


def normalize_preds(preds: tuple[Pred, ...]) -> tuple[Pred, ...]:
    """Sort and deduplicate sibling predicates (conjunction is a set)."""
    normalized = tuple(
        Pred(p.axis, p.label, normalize_preds(p.children)) for p in preds
    )
    unique = sorted(set(normalized), key=lambda p: p.sort_key())
    return tuple(unique)


def normalize(pattern: Pattern) -> Pattern:
    """Return the pattern with all predicate lists canonically ordered."""
    steps = tuple(
        Step(s.axis, s.label, normalize_preds(s.preds)) for s in pattern.steps
    )
    return Pattern(steps)


def make_path(*specs: tuple[Axis, str | None] | tuple[Axis, str | None, Iterable[Pred]]
              ) -> Pattern:
    """Programmatic construction helper.

    >>> p = make_path((Axis.CHILD, "a"), (Axis.DESC, "b"))
    >>> str(p)
    '/a//b'
    """
    steps: list[Step] = []
    for spec in specs:
        if len(spec) == 2:
            axis, label = spec
            preds: Iterable[Pred] = ()
        else:
            axis, label, preds = spec
        steps.append(Step(axis, label, normalize_preds(tuple(preds))))
    return Pattern(tuple(steps))


def iter_labels(pattern: Pattern) -> Iterator[str | None]:
    """Label of every pattern node — spine and predicate trees alike."""
    stack: list[Pred] = []
    for step in pattern.steps:
        yield step.label
        stack.extend(step.preds)
    while stack:
        pred = stack.pop()
        yield pred.label
        stack.extend(pred.children)


def label_alphabet(pattern: Pattern) -> frozenset[str] | None:
    """The pattern's label alphabet, or ``None`` for ⊤ (wildcard present).

    Every node of a match embeds some pattern node, so it must carry a
    label from this alphabet — unless the pattern contains a wildcard,
    which matches any label and widens the alphabet to ⊤.  This is the
    label dimension of the impact signatures in :mod:`repro.analysis`: an
    edit that introduces, relocates or deletes only nodes labelled outside
    the alphabet can neither create nor destroy matches.
    """
    labels: set[str] = set()
    for label in iter_labels(pattern):
        if label is None:
            return None
        labels.add(label)
    return frozenset(labels)

"""Static analysis over compiled constraint sets and the stream-op algebra.

``repro.analysis`` sits between the compiled constraint layer and the
enforcement stream: it turns a :class:`~repro.constraints.model.
ConstraintSet` into per-constraint :class:`ImpactSignature` values and a
whole-set :class:`IndependenceIndex`, from which the stream engine's
zero-work fast path and the intra-document shard planner
(:func:`repro.stream.shard.partition_document`) both decide — without
mask work — that an update cannot affect any constraint.
"""

from repro.analysis.independence import (
    KIND_ADD,
    KIND_MOVE,
    KIND_REMOVE,
    ImpactSignature,
    IndependenceAnalyzer,
    IndependenceIndex,
    impact_signature,
)

__all__ = [
    "ImpactSignature", "IndependenceIndex", "IndependenceAnalyzer",
    "impact_signature", "KIND_ADD", "KIND_MOVE", "KIND_REMOVE",
]
